"""F14 — extension: host state-residency breakdown per policy.

Where do host-hours actually go?  The stacked-bar view of the whole
evaluation: fraction of host-time spent active, in each parked state, and
in transit.  The S3 policy should convert most of AlwaysOn's idle hours
into sleep hours while transit time stays negligible — transition
overhead is amortized, which is the quantitative basis for the "agile"
claim.
"""

from benchmarks.conftest import EVAL_HORIZON_S, eval_fleet_spec, run_policy_comparison
from repro.analysis import render_table
from repro.power import PowerState


def residency_fractions(cluster, horizon_s):
    total = len(cluster.hosts) * horizon_s
    fractions = {state: 0.0 for state in PowerState}
    transit = 0.0
    for host in cluster.hosts:
        for state in PowerState:
            fractions[state] += host.machine.residency_s(state)
        transit += host.machine.transit_time_s
    return (
        {state: value / total for state, value in fractions.items()},
        transit / total,
    )


def compute_f14():
    spec = eval_fleet_spec(archetype_weights={"diurnal": 0.85, "flat": 0.15})
    runs = run_policy_comparison(fleet_spec=spec)
    table = {}
    for name, run in runs.items():
        fractions, transit = residency_fractions(run.cluster, EVAL_HORIZON_S)
        table[name] = {
            "active": fractions[PowerState.ACTIVE],
            "sleep": fractions[PowerState.SLEEP],
            "hibernate": fractions[PowerState.HIBERNATE],
            "off": fractions[PowerState.OFF],
            "transit": transit,
        }
    return table


def test_f14_residency(once):
    table = once(compute_f14)
    rows = [
        [name, row["active"], row["sleep"], row["off"], row["transit"]]
        for name, row in table.items()
    ]
    print()
    print(
        render_table(
            ["policy", "active", "sleep", "off", "transit"],
            rows,
            title="F14: host-time by power state (fractions)",
        )
    )

    for name, row in table.items():
        total = sum(row.values())
        assert total == __import__("pytest").approx(1.0, abs=1e-6)
    base = table["AlwaysOn"]
    s3 = table["S3-PM"]
    s5 = table["S5-PM"]
    hybrid = table["Hybrid"]
    # AlwaysOn never leaves ACTIVE.
    assert base["active"] == 1.0
    # S3 parks a large share of host-time in SLEEP...
    assert s3["sleep"] > 0.4
    # ...while transition overhead stays negligible (<1% of host-time) —
    # the amortization that makes agility cheap.
    assert s3["transit"] < 0.01
    # S5 parks in OFF; Hybrid splits between warm sleep and deep off.
    assert s5["off"] > 0.3
    assert s5["sleep"] == 0.0
    assert hybrid["sleep"] > 0.0
    assert hybrid["off"] > 0.0
