"""F8 — scale-out simulation: savings and violations vs. cluster size.

Paper: the management result holds beyond the small testbed — scale-out
simulations show the same savings/overhead envelope as the cluster grows.
"""

from repro.analysis import render_table
from repro.core import always_on, run_scenario, s3_policy
from repro.workload import FleetSpec

SIZES = [10, 25, 50, 100]
HORIZON = 24 * 3600.0


def compute_f8():
    rows = []
    for n_hosts in SIZES:
        spec = FleetSpec(
            n_vms=4 * n_hosts, horizon_s=HORIZON, shared_fraction=0.3
        )
        base = run_scenario(
            always_on(), n_hosts=n_hosts, horizon_s=HORIZON, seed=5, fleet_spec=spec
        )
        pm = run_scenario(
            s3_policy(), n_hosts=n_hosts, horizon_s=HORIZON, seed=5, fleet_spec=spec
        )
        rows.append(
            {
                "hosts": n_hosts,
                "norm_energy": pm.report.energy_kwh / base.report.energy_kwh,
                "violation_frac": pm.report.violation_fraction,
                "migs_per_host_day": pm.report.migrations
                / n_hosts
                / (HORIZON / 86_400.0),
                "mean_active": pm.report.mean_active_hosts,
            }
        )
    return rows


def test_f8_scaleout(once):
    rows = once(compute_f8)
    print()
    print(
        render_table(
            ["hosts", "norm_energy", "undelivered", "migs/host/day", "mean_active"],
            [
                [r["hosts"], r["norm_energy"], r["violation_frac"],
                 r["migs_per_host_day"], r["mean_active"]]
                for r in rows
            ],
            title="F8: S3-PM at scale (normalized to AlwaysOn per size)",
        )
    )

    for r in rows:
        # Savings hold at every scale...
        assert r["norm_energy"] < 0.8
        # ...with small undelivered demand (the scale-fair metric:
        # violation *time* is a union over hosts and trivially grows
        # with cluster size)...
        assert r["violation_frac"] < 0.02
        # ...and per-host migration overhead that does not blow up.
        assert r["migs_per_host_day"] < 40.0
    # Savings do not degrade with scale (bigger pools consolidate at
    # least as well — more packing freedom).
    assert rows[-1]["norm_energy"] <= rows[0]["norm_energy"] + 0.05
