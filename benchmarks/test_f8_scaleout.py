"""F8 — scale-out simulation: savings and violations vs. cluster size.

Paper: the management result holds beyond the small testbed — scale-out
simulations show the same savings/overhead envelope as the cluster grows.
"""

from repro.analysis import render_table
from repro.core import ScenarioSpec, always_on, run_scenarios, s3_policy
from repro.workload import FleetSpec

SIZES = [10, 25, 50, 100]
HORIZON = 24 * 3600.0


def f8_specs():
    """The whole sweep as one flat spec list: (base, pm) per size."""
    specs = []
    for n_hosts in SIZES:
        fleet = FleetSpec(n_vms=4 * n_hosts, horizon_s=HORIZON, shared_fraction=0.3)
        kwargs = dict(n_hosts=n_hosts, horizon_s=HORIZON, seed=5, fleet_spec=fleet)
        specs.append(
            ScenarioSpec(always_on(), kwargs=dict(kwargs),
                         label="base-{}".format(n_hosts))
        )
        specs.append(
            ScenarioSpec(s3_policy(), kwargs=dict(kwargs),
                         label="pm-{}".format(n_hosts))
        )
    return specs


def compute_f8():
    results = run_scenarios(f8_specs())
    rows = []
    for i, n_hosts in enumerate(SIZES):
        base, pm = results[2 * i], results[2 * i + 1]
        rows.append(
            {
                "hosts": n_hosts,
                "norm_energy": pm.report.energy_kwh / base.report.energy_kwh,
                "violation_frac": pm.report.violation_fraction,
                "migs_per_host_day": pm.report.migrations
                / n_hosts
                / (HORIZON / 86_400.0),
                "mean_active": pm.report.mean_active_hosts,
            }
        )
    return rows


def test_f8_smoke():
    """Tiny scale-out point for CI — the full sweep takes minutes."""
    horizon = 6 * 3600.0
    fleet = FleetSpec(n_vms=24, horizon_s=horizon, shared_fraction=0.3)
    kwargs = dict(n_hosts=6, horizon_s=horizon, seed=5, fleet_spec=fleet)
    base, pm = run_scenarios(
        [
            ScenarioSpec(always_on(), kwargs=dict(kwargs), label="base"),
            ScenarioSpec(s3_policy(), kwargs=dict(kwargs), label="pm"),
        ],
        workers=2,
        cache=False,
    )
    assert pm.report.energy_kwh < base.report.energy_kwh
    assert pm.report.violation_fraction < 0.05


def test_f8_scaleout(once):
    rows = once(compute_f8)
    print()
    print(
        render_table(
            ["hosts", "norm_energy", "undelivered", "migs/host/day", "mean_active"],
            [
                [r["hosts"], r["norm_energy"], r["violation_frac"],
                 r["migs_per_host_day"], r["mean_active"]]
                for r in rows
            ],
            title="F8: S3-PM at scale (normalized to AlwaysOn per size)",
        )
    )

    for r in rows:
        # Savings hold at every scale...
        assert r["norm_energy"] < 0.8
        # ...with small undelivered demand (the scale-fair metric:
        # violation *time* is a union over hosts and trivially grows
        # with cluster size)...
        assert r["violation_frac"] < 0.02
        # ...and per-host migration overhead that does not blow up.
        assert r["migs_per_host_day"] < 40.0
    # Savings do not degrade with scale (bigger pools consolidate at
    # least as well — more packing freedom).
    assert rows[-1]["norm_energy"] <= rows[0]["norm_energy"] + 0.05
