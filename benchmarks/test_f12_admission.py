"""F12 — extension: VM provisioning latency on a consolidated cluster.

The adoption argument from the user's side: when capacity is parked, a
new VM that does not fit on the active hosts must wait for a wake.  With
S3-class states that wait is seconds — indistinguishable from normal
provisioning; with boot-class states it is minutes, which is exactly why
operators historically disabled power management.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.prototype import make_prototype_blade_profile
from repro.workload import FleetSpec

LATENCIES_S = [5.0, 12.0, 60.0, 185.0, 600.0]
HORIZON = 48 * 3600.0


def compute_f12():
    spec = FleetSpec(
        n_vms=40,
        horizon_s=HORIZON,
        archetype_weights={"diurnal": 0.7, "flat": 0.3},
    )
    rows = []
    for latency in LATENCIES_S:
        run = run_scenario(
            s3_policy(),
            n_hosts=12,
            horizon_s=HORIZON,
            seed=29,
            fleet_spec=spec,
            profile=make_prototype_blade_profile(resume_latency_s=latency),
            churn_rate_per_h=6.0,
            churn_lifetime_s=4 * 3600.0,
        )
        waits = run.manager.log.admission_waits_s
        queued = len(waits)
        admitted = run.manager.log.admissions
        rows.append(
            {
                "latency_s": latency,
                "admitted": admitted,
                "queued": queued,
                "queued_frac": queued / max(admitted, 1),
                "mean_wait_s": float(np.mean(waits)) if waits else 0.0,
                "p95_wait_s": float(np.percentile(waits, 95)) if waits else 0.0,
                "rejected": run.report.extra.get("churn_rejected", 0.0),
            }
        )
    return rows


def test_f12_admission(once):
    rows = once(compute_f12)
    print()
    print(
        render_table(
            ["wake_latency_s", "admitted", "queued", "queued_frac",
             "mean_wait_s", "p95_wait_s", "rejected"],
            [
                [r["latency_s"], r["admitted"], r["queued"], r["queued_frac"],
                 r["mean_wait_s"], r["p95_wait_s"], r["rejected"]]
                for r in rows
            ],
            title="F12: provisioning latency vs wake latency (churn 6/h)",
        )
    )
    by_latency = {r["latency_s"]: r for r in rows}
    fast, slow = by_latency[5.0], by_latency[600.0]
    # Shape: some admissions do hit parked capacity (else the experiment
    # is vacuous)...
    assert slow["queued"] > 0
    # ...and when they do, the wait tracks the wake latency: boot-class
    # states make provisioning minutes-slow; S3 keeps it near-interactive.
    if fast["queued"]:
        assert fast["mean_wait_s"] < 120.0
    assert slow["mean_wait_s"] > 3 * max(fast["mean_wait_s"], 20.0)
    # Nothing is rejected outright — capacity exists, it is just parked.
    assert slow["rejected"] == 0.0
