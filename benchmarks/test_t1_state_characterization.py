"""T1 — power-state characterization table.

Paper: per-state power draw, entry/exit latency, and transition cost on
the real prototype; our substitute regenerates the table from the
calibrated profiles (see DESIGN.md substitutions).
"""

from repro.power import PowerState
from repro.prototype import (
    LEGACY_BLADE,
    PROTOTYPE_BLADE,
    characterization_table,
    format_characterization_table,
)


def compute_t1():
    return {
        "prototype": characterization_table(PROTOTYPE_BLADE),
        "legacy": characterization_table(LEGACY_BLADE),
    }


def test_t1_state_characterization(once):
    tables = once(compute_t1)
    print()
    print(format_characterization_table(PROTOTYPE_BLADE))
    print()
    print(format_characterization_table(LEGACY_BLADE))

    rows = {r.state: r for r in tables["prototype"]}
    sleep, off = rows[PowerState.SLEEP], rows[PowerState.OFF]

    # Shape: S3 draws a few percent of idle power...
    assert sleep.stable_power_w < 0.1 * PROTOTYPE_BLADE.idle_w
    # ...with a seconds-scale round trip, while S5 needs minutes.
    assert sleep.entry_latency_s + sleep.exit_latency_s < 30.0
    assert off.entry_latency_s + off.exit_latency_s > 120.0
    # Break-even gap is ~an order of magnitude apart.
    assert off.breakeven_idle_s / sleep.breakeven_idle_s > 8.0
    # The legacy platform only has the slow option.
    assert [r.state for r in tables["legacy"]] == [PowerState.OFF]
