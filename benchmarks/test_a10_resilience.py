"""A10 — ablation: resilience curve vs wake-failure rate.

The reliability objection to aggressive parking: if resumes can fail, an
S3-heavy policy risks stranding demand behind dead capacity.  This
benchmark sweeps the injected wake-failure rate over the default
evaluation scenario (with an operator repair model attached) and shows
the ride-through machinery — backoff retry, host blacklisting, watchdog
escalation, MTTR repair — keeps the service-class guarantees intact:
gold violations stay within 2x of the fault-free run at every rate.

Every run is traced and replayed through the invariant checker, so the
curve is certified, not just plotted.
"""

from benchmarks.conftest import EVAL_HORIZON_S, EVAL_SEED

from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.datacenter import FaultModel, RepairModel
from repro.telemetry.validate import validate_trace

FAILURE_RATES = [0.0, 0.05, 0.1, 0.2]
PERMANENT_FRACTION = 0.2
MTTR_S = 4 * 3600.0

#: Absolute floor for the gold-violation bound: 2x of a fault-free zero
#: is zero, which would turn numerical dust into a failure.
GOLD_FLOOR = 1e-3


def compute_a10():
    rows = []
    for rate in FAILURE_RATES:
        fault_model = None
        if rate > 0:
            fault_model = FaultModel(
                wake_failure_rate=rate,
                permanent_fraction=PERMANENT_FRACTION,
                repair=RepairModel(mttr_s=MTTR_S),
            )
        run = run_scenario(
            s3_policy(),
            n_hosts=20,
            n_vms=80,
            horizon_s=EVAL_HORIZON_S,
            seed=EVAL_SEED,
            fault_model=fault_model,
            trace=True,
        )
        check = validate_trace(run.trace, report=run.report)
        extra = run.report.extra
        rows.append(
            {
                "rate": rate,
                "energy_kwh": run.report.energy_kwh,
                "violation": run.report.violation_fraction,
                "gold": extra["violation_gold"],
                "failures": int(extra["wake_failures"]),
                "retries": int(extra["wake_retries"]),
                "blacklists": int(extra["blacklists"]),
                "repaired": int(extra["hosts_repaired"]),
                "oos_end": int(extra["hosts_out_of_service"]),
                "trace_ok": check.ok,
                "trace_violations": check.invariants_violated(),
            }
        )
    return rows


def test_a10_resilience(once):
    rows = once(compute_a10)
    print()
    print(
        render_table(
            ["rate", "energy_kwh", "undelivered", "gold_viol", "failures",
             "retries", "blacklists", "repaired", "oos_end", "trace_ok"],
            [
                [r["rate"], r["energy_kwh"], r["violation"], r["gold"],
                 r["failures"], r["retries"], r["blacklists"], r["repaired"],
                 r["oos_end"], "yes" if r["trace_ok"] else "NO"]
                for r in rows
            ],
            title="A10: resilience vs wake-failure rate (S3-PM, repair MTTR 4h)",
        )
    )
    by_rate = {r["rate"]: r for r in rows}
    # Every run — including the chaotic ones — must replay cleanly through
    # the invariant checker; a certified curve or no curve.
    for r in rows:
        assert r["trace_ok"], "rate {}: invariants fired: {}".format(
            r["rate"], r["trace_violations"]
        )
    # The headline resilience claim: gold service survives a 20 % wake
    # failure rate within 2x of the fault-free violation level.
    base_gold = by_rate[0.0]["gold"]
    assert by_rate[0.2]["gold"] <= max(2.0 * base_gold, GOLD_FLOOR)
    # Ride-through, not avoidance: failures actually happened at the top
    # rate (otherwise the sweep proved nothing).
    assert by_rate[0.2]["failures"] >= by_rate[0.0]["failures"]
    # No host may end the run stranded out of service: the repair model
    # returns permanently failed machines to the pool within the horizon
    # with overwhelming probability at these parameters.
    assert by_rate[0.2]["oos_end"] <= 1
