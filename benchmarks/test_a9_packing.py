"""A9 — extension: packing-heuristic quality.

The number of hosts the consolidation target needs is set by the packer.
Compares first-fit decreasing, best-fit decreasing and 2-D dot-product
packing on fleets with increasingly skewed CPU:memory shapes — the regime
where 1-D heuristics strand capacity in one dimension.
"""

import numpy as np

from repro.analysis import render_table
from repro.datacenter import Cluster, VM
from repro.placement import (
    PackingError,
    best_fit_decreasing,
    dot_product_packing,
    first_fit_decreasing,
)
from repro.prototype import PROTOTYPE_BLADE
from repro.sim import Environment
from repro.workload import FlatTrace

PACKERS = {
    "FFD": first_fit_decreasing,
    "BFD": best_fit_decreasing,
    "dot-product": dot_product_packing,
}

#: Probability that a VM is shape-skewed (CPU-heavy or memory-heavy).
SKEWS = [0.0, 0.5, 1.0]


def build_vms(skew, n=48, seed=7):
    rng = np.random.default_rng(seed)
    vms = []
    for i in range(n):
        if rng.random() < skew:
            if rng.random() < 0.5:
                vcpus, mem = 8, 4.0  # CPU-heavy
            else:
                vcpus, mem = 1, 48.0  # memory-heavy
        else:
            vcpus = int(rng.choice([1, 2, 4]))
            mem = vcpus * 4.0
        vms.append(
            VM("vm-{}".format(i), vcpus=vcpus, mem_gb=mem, trace=FlatTrace(0.5))
        )
    return vms


def hosts_needed(packer, vms):
    env = Environment()
    cluster = Cluster.homogeneous(env, PROTOTYPE_BLADE, 48, cores=16.0, mem_gb=64.0)
    try:
        plan = packer(vms, cluster.hosts, cpu_target=0.85)
    except PackingError:
        return float("inf")
    return len({h.name for h in plan.values()})


def compute_a9():
    rows = []
    for skew in SKEWS:
        vms = build_vms(skew)
        row = {"skew": skew}
        for name, packer in PACKERS.items():
            row[name] = hosts_needed(packer, vms)
        rows.append(row)
    return rows


def test_a9_packing(once):
    rows = once(compute_a9)
    print()
    print(
        render_table(
            ["shape_skew"] + list(PACKERS),
            [[r["skew"]] + [r[name] for name in PACKERS] for r in rows],
            title="A9: hosts needed by packing heuristic (48 VMs)",
        )
    )
    for r in rows:
        # Every heuristic packs the fleet.
        for name in PACKERS:
            assert r[name] < float("inf")
        # The 2-D heuristic never needs more hosts than 1-D FFD.
        assert r["dot-product"] <= r["FFD"]
    # On fully skewed shapes the vector packer wins outright.
    skewed = rows[-1]
    assert skewed["dot-product"] <= min(skewed["FFD"], skewed["BFD"])
