"""A2 — ablation: capacity headroom margin.

Design-choice study: the fraction of extra capacity kept active above the
predicted demand.  Larger margins absorb prediction error but burn idle
power; cheap wake-up is what lets the margin shrink.
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy

MARGINS = [0.0, 0.05, 0.10, 0.20, 0.40]
HORIZON = 48 * 3600.0


def compute_a2():
    spec = eval_fleet_spec(
        horizon_s=HORIZON,
        archetype_weights={"bursty": 0.5, "diurnal": 0.5},
        shared_fraction=0.45,
    )
    rows = []
    for margin in MARGINS:
        cfg = s3_policy().with_overrides(
            name="S3 hr={:.2f}".format(margin), headroom=margin
        )
        run = run_scenario(
            cfg, n_hosts=16, horizon_s=HORIZON, seed=17, fleet_spec=spec
        )
        rows.append(
            {
                "headroom": margin,
                "energy_kwh": run.report.energy_kwh,
                "violation_time": run.report.violation_time_fraction,
                "mean_active": run.report.mean_active_hosts,
            }
        )
    return rows


def test_a2_headroom(once):
    rows = once(compute_a2)
    print()
    print(
        render_table(
            ["headroom", "energy_kwh", "violation_time", "mean_active_hosts"],
            [[r["headroom"], r["energy_kwh"], r["violation_time"], r["mean_active"]]
             for r in rows],
            title="A2: headroom-margin sweep (S3-PM, bursty load)",
        )
    )
    by_margin = {r["headroom"]: r for r in rows}
    # Bigger margins keep more hosts active and cost more energy.
    assert by_margin[0.40]["mean_active"] > by_margin[0.0]["mean_active"]
    assert by_margin[0.40]["energy_kwh"] > by_margin[0.0]["energy_kwh"]
    # Energy grows monotonically with the margin.
    energies = [r["energy_kwh"] for r in rows]
    assert energies == sorted(energies)
    # With fast wake, even zero headroom keeps violations moderate —
    # margin mainly buys energy cost, not correctness (the paper's point:
    # cheap wake-up removes the need for fat margins).
    for r in rows:
        assert r["violation_time"] < 0.08
