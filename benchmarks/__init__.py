"""Experiment benchmarks: one module per table/figure (see DESIGN.md)."""
