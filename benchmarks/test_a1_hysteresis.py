"""A1 — ablation: park hysteresis (``park_delay_rounds``).

Design-choice study: how long must surplus persist before a host is
parked?  Shorter delays save more energy but risk sleep/wake thrash on
noisy demand; low-latency states make short delays cheap.
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy

DELAYS = [0, 1, 2, 4, 8]
HORIZON = 48 * 3600.0


def compute_a1():
    spec = eval_fleet_spec(horizon_s=HORIZON)
    rows = []
    for delay in DELAYS:
        cfg = s3_policy().with_overrides(
            name="S3 delay={}".format(delay), park_delay_rounds=delay
        )
        run = run_scenario(
            cfg, n_hosts=16, horizon_s=HORIZON, seed=31, fleet_spec=spec
        )
        rows.append(
            {
                "delay_rounds": delay,
                "energy_kwh": run.report.energy_kwh,
                "violation_time": run.report.violation_time_fraction,
                "transitions": run.report.park_transitions
                + run.report.wake_transitions,
            }
        )
    return rows


def test_a1_hysteresis(once):
    rows = once(compute_a1)
    print()
    print(
        render_table(
            ["park_delay_rounds", "energy_kwh", "violation_time", "transitions"],
            [[r["delay_rounds"], r["energy_kwh"], r["violation_time"],
              r["transitions"]] for r in rows],
            title="A1: park-hysteresis sweep (S3-PM)",
        )
    )
    by_delay = {r["delay_rounds"]: r for r in rows}
    # More hysteresis -> no more energy saved (monotone-ish trade).
    assert by_delay[8]["energy_kwh"] >= by_delay[0]["energy_kwh"] - 0.5
    # Aggressive parking causes more state transitions.
    assert by_delay[0]["transitions"] >= by_delay[8]["transitions"]
    # Even zero hysteresis keeps violations bounded with fast wake-up —
    # the reason aggressive knobs are viable at all with S3.
    assert by_delay[0]["violation_time"] < 0.06
