"""F13 — extension: per-service-class performance impact.

Enterprise clusters differentiate VMs into service classes; hosts deliver
CPU strict-priority (GOLD → SILVER → BRONZE).  The question for power
management: when parked capacity causes transient shortfalls, *who* pays?
The answer should be "only the classes designed to absorb it" — GOLD
rides through even the S5 policy's slow wakes.
"""

from benchmarks.conftest import eval_fleet_spec, run_policy_comparison
from repro.analysis import render_table
from repro.core import always_on, s3_policy, s5_policy
from repro.datacenter import Priority


def compute_f13():
    spec = eval_fleet_spec(
        archetype_weights={"bursty": 0.6, "diurnal": 0.4},
        shared_fraction=0.55,
    )
    runs = run_policy_comparison(
        configs=[always_on(), s5_policy(), s3_policy()], fleet_spec=spec
    )
    table = {}
    for name, run in runs.items():
        fractions = run.sampler.violation_fraction_by_class()
        table[name] = {
            "gold": fractions[Priority.GOLD],
            "silver": fractions[Priority.SILVER],
            "bronze": fractions[Priority.BRONZE],
            "energy_kwh": run.report.energy_kwh,
        }
    return table


def test_f13_service_classes(once):
    table = once(compute_f13)
    rows = [
        [name, row["energy_kwh"], row["gold"], row["silver"], row["bronze"]]
        for name, row in table.items()
    ]
    print()
    print(
        render_table(
            ["policy", "energy_kwh", "gold_viol", "silver_viol", "bronze_viol"],
            rows,
            title="F13: undelivered-demand fraction per service class",
        )
    )

    base = table["AlwaysOn"]
    s3 = table["S3-PM"]
    s5 = table["S5-PM"]
    # Baseline: nobody starves.
    assert base["gold"] == base["silver"] == base["bronze"] == 0.0
    # Under power management, shortfall lands on the lower classes:
    # strict priority protects GOLD essentially completely.
    for policy in (s3, s5):
        assert policy["gold"] <= 0.001
        assert policy["gold"] <= policy["bronze"] + 1e-12
    # BRONZE carries the bulk of whatever shortfall exists.
    assert s3["bronze"] >= s3["silver"] >= s3["gold"] - 1e-12
    # And the S3 policy keeps even BRONZE's exposure small.
    assert s3["bronze"] < 0.05
