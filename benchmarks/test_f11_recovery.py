"""F11 — extension: burst-recovery episode analysis.

Event-level companion to F9: instead of aggregate violation fractions,
extract each contiguous shortfall episode and report its duration
distribution.  The claim being tested: with S3-class wake latency an
episode lasts roughly one detection interval plus one resume; with
boot-class latency episodes stretch several-fold.
"""

from repro.analysis import recovery_stats, render_table
from repro.core import run_scenario, s3_policy
from repro.prototype import make_prototype_blade_profile
from repro.workload import FleetSpec

LATENCIES_S = [10.0, 60.0, 185.0, 600.0]
HORIZON = 48 * 3600.0


def compute_f11():
    spec = FleetSpec(
        n_vms=48,
        archetype_weights={"bursty": 0.8, "diurnal": 0.2},
        shared_fraction=0.65,
        horizon_s=HORIZON,
    )
    rows = []
    for latency in LATENCIES_S:
        run = run_scenario(
            s3_policy(),
            n_hosts=12,
            horizon_s=HORIZON,
            seed=67,
            fleet_spec=spec,
            profile=make_prototype_blade_profile(resume_latency_s=latency),
        )
        stats = recovery_stats(run.sampler)
        rows.append(
            {
                "latency_s": latency,
                "episodes": stats.episodes,
                "mean_s": stats.mean_duration_s,
                "p95_s": stats.p95_duration_s,
                "max_s": stats.max_duration_s,
                "deficit": stats.total_deficit_core_s,
            }
        )
    return rows


def test_f11_recovery(once):
    rows = once(compute_f11)
    print()
    print(
        render_table(
            ["wake_latency_s", "episodes", "mean_s", "p95_s", "max_s",
             "deficit_core_s"],
            [
                [r["latency_s"], r["episodes"], r["mean_s"], r["p95_s"],
                 r["max_s"], r["deficit"]]
                for r in rows
            ],
            title="F11: shortfall-episode durations vs wake latency",
        )
    )
    by_latency = {r["latency_s"]: r for r in rows}
    fast, slow = by_latency[10.0], by_latency[600.0]
    # Shape: episodes exist under heavy correlated bursts at any latency
    # (recovery is partly migration-limited: VMs must be re-spread after
    # the woken hosts come up, and the migration fabric is throttled)...
    assert fast["episodes"] > 0
    # ...but slow wake-up stretches episodes and deepens the deficit.
    assert slow["mean_s"] >= fast["mean_s"]
    assert slow["p95_s"] >= fast["p95_s"]
    assert slow["deficit"] > 1.25 * fast["deficit"]
    # Even migration-limited, fast-wake recovery completes within minutes,
    # not the tens of minutes a boot-latency analysis would predict.
    assert fast["mean_s"] < 15 * 60.0
