"""F9 — sensitivity to wake (resume) latency: the headline figure.

Paper: sweep the park state's exit latency from seconds to minutes with
the *same* controller.  At seconds-scale latency, aggressive power
management is essentially free (violations at the DRM noise floor);
as latency grows toward a full boot, the controller must either accept
violations or hold back capacity — the crossover that motivates
low-latency server power states.
"""

from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.prototype import make_prototype_blade_profile
from repro.workload import FleetSpec

LATENCIES_S = [2.0, 10.0, 30.0, 60.0, 180.0, 600.0]
HORIZON = 48 * 3600.0


def compute_f9():
    spec = FleetSpec(
        n_vms=64,
        archetype_weights={"bursty": 0.6, "diurnal": 0.4},
        shared_fraction=0.55,
        horizon_s=HORIZON,
    )
    rows = []
    for latency in LATENCIES_S:
        profile = make_prototype_blade_profile(resume_latency_s=latency)
        run = run_scenario(
            s3_policy(),
            n_hosts=16,
            horizon_s=HORIZON,
            seed=21,
            fleet_spec=spec,
            profile=profile,
        )
        rows.append(
            {
                "latency_s": latency,
                "energy_kwh": run.report.energy_kwh,
                "violation_time": run.report.violation_time_fraction,
                "violation_frac": run.report.violation_fraction,
                "reactive_wakes": run.report.extra["reactive_wakes"],
            }
        )
    return rows


def test_f9_latency_sensitivity(once):
    rows = once(compute_f9)
    print()
    print(
        render_table(
            ["wake_latency_s", "energy_kwh", "violation_time", "undelivered",
             "reactive_wakes"],
            [
                [r["latency_s"], r["energy_kwh"], r["violation_time"],
                 r["violation_frac"], r["reactive_wakes"]]
                for r in rows
            ],
            title="F9: aggressive policy vs wake latency",
        )
    )

    by_latency = {r["latency_s"]: r for r in rows}
    # Shape: at seconds-scale wake, undelivered demand is ~1 % — the DRM
    # noise floor of an aggressively consolidated cluster.
    assert by_latency[2.0]["violation_frac"] < 0.015
    assert by_latency[10.0]["violation_frac"] < 0.015
    # At minutes-scale wake the *same* aggressive policy hurts visibly —
    # the crossover the paper identifies.
    assert (
        by_latency[600.0]["violation_frac"]
        > 1.8 * max(by_latency[10.0]["violation_frac"], 1e-4)
    )
    # The controller also works much harder (reactive emergency wakes).
    assert by_latency[600.0]["reactive_wakes"] > 2 * by_latency[10.0]["reactive_wakes"]
    # Violations and energy grow (weakly) monotonically with latency.
    assert by_latency[600.0]["violation_time"] >= by_latency[60.0]["violation_time"]
    assert by_latency[600.0]["energy_kwh"] >= by_latency[10.0]["energy_kwh"]
