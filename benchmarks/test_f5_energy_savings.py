"""F5 — normalized energy across policies × workloads.

Paper: energy of each management policy normalized to the always-on
baseline, across workload classes, with the proportional oracle as the
floor.  Headline shape: S3-PM approaches the oracle; S5-PM saves less;
AlwaysOn is 1.0 by construction.
"""

from benchmarks.conftest import EVAL_HOSTS, eval_fleet_spec, run_policy_comparison
from repro.analysis import perfect_consolidation_kwh, render_table
from repro.power import PowerState
from repro.prototype import PROTOTYPE_BLADE

WORKLOADS = {
    "diurnal": dict(archetype_weights={"diurnal": 0.85, "flat": 0.15}),
    "bursty": dict(
        archetype_weights={"bursty": 0.7, "diurnal": 0.3}, shared_fraction=0.5
    ),
    "mixed": dict(),
    "flat": dict(archetype_weights={"flat": 0.9, "spiky": 0.1}),
}


def compute_f5():
    table = {}
    for wl_name, overrides in WORKLOADS.items():
        spec = eval_fleet_spec(**overrides)
        runs = run_policy_comparison(fleet_spec=spec)
        base_kwh = runs["AlwaysOn"].report.energy_kwh
        demand = runs["AlwaysOn"].sampler.series["demand_cores"]
        oracle = perfect_consolidation_kwh(
            demand,
            PROTOTYPE_BLADE,
            16.0,
            parked_power_w=PROTOTYPE_BLADE.stable_power(PowerState.SLEEP),
            n_hosts=EVAL_HOSTS,
        )
        table[wl_name] = {
            name: run.report.energy_kwh / base_kwh for name, run in runs.items()
        }
        table[wl_name]["Oracle"] = oracle / base_kwh
    return table


def test_f5_energy_savings(once):
    table = once(compute_f5)
    policies = ["AlwaysOn", "S5-PM", "S3-PM", "Hybrid", "Oracle"]
    rows = [
        [wl] + [table[wl][p] for p in policies] for wl in WORKLOADS
    ]
    print()
    print(
        render_table(
            ["workload"] + policies,
            rows,
            title="F5: energy normalized to AlwaysOn",
        )
    )

    for wl in WORKLOADS:
        col = table[wl]
        # AlwaysOn is the unit baseline; every PM policy saves energy.
        assert col["AlwaysOn"] == 1.0
        for policy in ("S5-PM", "S3-PM", "Hybrid"):
            assert col[policy] < 1.0
        # No policy beats the oracle floor (small tolerance: the oracle
        # uses the sampled demand, policies integrate continuously).
        for policy in ("S5-PM", "S3-PM", "Hybrid"):
            assert col[policy] > col["Oracle"] * 0.95
    # Headline: on trough-y (diurnal) load S3 nearly closes the oracle gap.
    diurnal = table["diurnal"]
    assert diurnal["S3-PM"] < 0.75
    gap_to_oracle = diurnal["S3-PM"] - diurnal["Oracle"]
    base_gap = 1.0 - diurnal["Oracle"]
    assert gap_to_oracle / base_gap < 0.35  # closes >65% of the gap
    # And S3 is at least as good as conservative S5 on every workload.
    for wl in WORKLOADS:
        assert table[wl]["S3-PM"] <= table[wl]["S5-PM"] * 1.08
