"""A8 — extension: robustness to transition-latency variance.

Real suspend/resume latencies are distributions, not constants.  This
ablation widens the per-transition jitter band and checks the management
result is insensitive — the controller keys off the latency's *scale*
(seconds vs. minutes), not its exact value.
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.prototype import make_prototype_blade_profile

JITTER_FRACTIONS = [0.0, 0.2, 0.5]
HORIZON = 48 * 3600.0


def compute_a8():
    spec = eval_fleet_spec(horizon_s=HORIZON, shared_fraction=0.4)
    rows = []
    for jitter in JITTER_FRACTIONS:
        profile = make_prototype_blade_profile(latency_jitter=jitter)
        run = run_scenario(
            s3_policy(),
            n_hosts=16,
            horizon_s=HORIZON,
            seed=83,
            fleet_spec=spec,
            profile=profile,
        )
        rows.append(
            {
                "jitter": jitter,
                "energy_kwh": run.report.energy_kwh,
                "violation_time": run.report.violation_time_fraction,
                "violation_frac": run.report.violation_fraction,
            }
        )
    return rows


def test_a8_latency_jitter(once):
    rows = once(compute_a8)
    print()
    print(
        render_table(
            ["jitter_fraction", "energy_kwh", "violation_time", "undelivered"],
            [[r["jitter"], r["energy_kwh"], r["violation_time"],
              r["violation_frac"]] for r in rows],
            title="A8: latency-jitter robustness (S3-PM)",
        )
    )
    baseline = rows[0]
    for r in rows[1:]:
        # Energy within 3% and violations within a small absolute band of
        # the jitter-free run: variance at the seconds scale is harmless.
        assert abs(r["energy_kwh"] - baseline["energy_kwh"]) < 0.03 * baseline[
            "energy_kwh"
        ]
        assert abs(r["violation_frac"] - baseline["violation_frac"]) < 0.01
