"""F-scale — simulation-kernel throughput vs. cluster size.

The paper's consolidation argument only gets interesting at fleet scale
(the ROADMAP targets a 10k-host kernel), so this benchmark measures the
*kernel itself*: one S3-PM scenario at hosts ∈ {16, 100, 500, 2000} with
a 4×-host VM fleet, recording

* ``setup_s``       — wall-clock building the scenario (fleet generation,
  initial placement, wiring), reported separately so kernel throughput is
  not polluted by setup;
* ``sim_wall_s``    — wall-clock inside ``env.run`` only;
* ``events_per_s``  — ``env.events_processed / sim_wall_s``, the headline
  kernel metric;
* ``peak_rss_kb``   — process high-water memory.

Run the full series (writes ``BENCH_scale.json`` at the repo root)::

    PYTHONPATH=src:. python benchmarks/test_f_scale.py

The checked-in ``PRE_PR_KERNEL`` table is the same series measured by
this exact harness at the pre-optimization seed commit (62119b1); the
acceptance bar is ≥5× events/sec at 500 hosts against it.  Note the
optimized kernel processes *fewer* events per run (same-instant timeouts
are coalesced into shared events), which penalizes the events/sec
metric — the speedup is real wall-clock and then some.

``test_f_scale_smoke`` runs the 100-host point under a CI wall-clock
budget and doubles as a determinism guard: the optimized kernel must
reproduce the pre-PR energy/violation numbers bit for bit.
"""

import json
import os
import resource
import sys
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.core import run_scenario, s3_policy
from repro.workload import FleetSpec

F_SCALE_HOSTS = (16, 100, 500, 2000)
F_SCALE_HOURS = 2.0
F_SCALE_SEED = 7
F_SCALE_VMS_PER_HOST = 4

#: Kernel series measured by this harness at the pre-PR seed commit
#: (62119b1) on the 1-core dev container — the fixed reference the ≥5×
#: events/sec bar at 500 hosts is checked against.  ``energy_kwh`` and
#: ``violation_fraction`` double as bit-exactness references: the kernel
#: rewrite must not change a single reported float.
PRE_PR_KERNEL = {
    16: {
        "sim_wall_s": 0.0497,
        "events_processed": 741,
        "events_per_s": 14914.8,
        "peak_rss_kb": 40452,
        "energy_kwh": 3.9898557878258334,
        "violation_fraction": 0.00018755828805914687,
    },
    100: {
        "sim_wall_s": 0.3114,
        "events_processed": 1294,
        "events_per_s": 4155.1,
        "peak_rss_kb": 41064,
        "energy_kwh": 34.20022943489282,
        "violation_fraction": 0.0001081819791852878,
    },
    500: {
        "sim_wall_s": 1.6499,
        "events_processed": 1198,
        "events_per_s": 726.1,
        "peak_rss_kb": 44624,
        "energy_kwh": 193.7839698879919,
        "violation_fraction": 1.3220273923512893e-05,
    },
    2000: {
        "sim_wall_s": 7.2219,
        "events_processed": 1247,
        "events_per_s": 172.7,
        "peak_rss_kb": 60564,
        "energy_kwh": 792.3285347977962,
        "violation_fraction": 2.6832565920205387e-06,
    },
}

#: events/sec multiple the 500-host point must clear vs. ``PRE_PR_KERNEL``.
TARGET_SPEEDUP_500 = 5.0

#: CI wall-clock budget for the 100-host smoke point (generous: the point
#: runs in well under a second on the dev container; shared runners jitter).
SMOKE_SIM_WALL_BUDGET_S = 2.0


def run_point(n_hosts: int) -> dict:
    """Run one F-scale point and return its measurement row."""
    horizon_s = F_SCALE_HOURS * 3600.0
    fleet = FleetSpec(
        n_vms=F_SCALE_VMS_PER_HOST * n_hosts,
        horizon_s=horizon_s,
        shared_fraction=0.3,
    )
    result = run_scenario(
        s3_policy(),
        n_hosts=n_hosts,
        horizon_s=horizon_s,
        seed=F_SCALE_SEED,
        fleet_spec=fleet,
    )
    events = result.env.events_processed
    return {
        "hosts": n_hosts,
        "vms": fleet.n_vms,
        "hours": F_SCALE_HOURS,
        "seed": F_SCALE_SEED,
        "setup_s": round(result.setup_wall_s, 3),
        "sim_wall_s": round(result.sim_wall_s, 4),
        "events_processed": events,
        "events_per_s": round(events / result.sim_wall_s, 1),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "energy_kwh": result.report.energy_kwh,
        "violation_fraction": result.report.violation_fraction,
    }


def test_f_scale_smoke():
    """100-host F-scale point under a wall budget, bit-exact vs. pre-PR."""
    point = run_point(100)
    ref = PRE_PR_KERNEL[100]
    assert point["events_processed"] > 0
    assert point["sim_wall_s"] < SMOKE_SIM_WALL_BUDGET_S
    # The kernel rewrite is an optimization, not a behavior change: every
    # reported number matches the pre-PR kernel exactly.
    assert point["energy_kwh"] == ref["energy_kwh"]
    assert point["violation_fraction"] == ref["violation_fraction"]


def _run_point_subprocess(n_hosts: int) -> dict:
    """Run one point in a fresh interpreter.

    Each point gets its own process so the measurements don't contaminate
    each other: peak RSS is a per-point high-water mark (not the max over
    every earlier, larger heap) and GC pressure from one point's garbage
    never bleeds into the next point's wall-clock.  ``PRE_PR_KERNEL`` was
    measured one-point-per-process the same way.
    """
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--point", str(n_hosts)],
        env=env,
        stdout=subprocess.PIPE,
        check=True,
    )
    return json.loads(proc.stdout.decode())


def main() -> int:
    points = []
    for n_hosts in F_SCALE_HOSTS:
        point = _run_point_subprocess(n_hosts)
        ref = PRE_PR_KERNEL[n_hosts]
        point["pre_pr"] = dict(ref)
        point["speedup_events_per_s"] = round(
            point["events_per_s"] / ref["events_per_s"], 2
        )
        point["speedup_sim_wall"] = round(
            ref["sim_wall_s"] / point["sim_wall_s"], 2
        )
        point["bit_identical_report"] = (
            point["energy_kwh"] == ref["energy_kwh"]
            and point["violation_fraction"] == ref["violation_fraction"]
        )
        points.append(point)
        print(
            "hosts={:>5}  sim={:7.4f}s  setup={:6.3f}s  events={:>5}  "
            "ev/s={:>8}  x{:<5}  rss={} KiB  exact={}".format(
                point["hosts"], point["sim_wall_s"], point["setup_s"],
                point["events_processed"], point["events_per_s"],
                point["speedup_events_per_s"], point["peak_rss_kb"],
                point["bit_identical_report"],
            )
        )

    by_hosts = {p["hosts"]: p for p in points}
    speedup_500 = by_hosts[500]["speedup_events_per_s"]
    all_exact = all(p["bit_identical_report"] for p in points)
    payload = {
        "series": "F-scale",
        "harness": "benchmarks/test_f_scale.py",
        "pre_pr_commit": "62119b1",
        "target_speedup_500": TARGET_SPEEDUP_500,
        "speedup_500": speedup_500,
        "largest_point_completed": 2000 in by_hosts,
        "reports_bit_identical": all_exact,
        "points": points,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    atomic_write_json(out, payload)
    print("wrote {}".format(out))

    ok = speedup_500 >= TARGET_SPEEDUP_500 and all_exact
    print("acceptance: {}".format("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--point":
        print(json.dumps(run_point(int(sys.argv[2]))))
        sys.exit(0)
    sys.exit(main())
