"""Wall-clock benchmark for the parallel scenario execution layer.

Times the standard 4-policy comparison (the workload behind F5/F6/T3)
three ways and records the results in ``BENCH_parallel.json`` at the
repository root:

1. **serial** — plain ``run_scenario`` loop, no cache (the seed code
   path, now running on the optimized hot path);
2. **parallel cold** — ``run_scenarios(workers=4)`` against an empty
   result cache;
3. **parallel warm** — the same call again, fully served from the cache.

It also asserts that parallel and serial runs produce identical reports.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.core import (
    ResultCache,
    ScenarioSpec,
    always_on,
    hybrid_policy,
    run_scenario,
    run_scenarios,
    s3_policy,
    s5_policy,
)
from repro.workload import FleetSpec

#: Serial wall-clock of this exact comparison measured at the seed commit
#: (2bbd8b6, pre-optimization) on the 1-core dev container — the fixed
#: reference the ≥2× acceptance bar is checked against.
SEED_SERIAL_REFERENCE_S = 10.89

WORKERS = 4
EVAL_HOSTS = 16
EVAL_HORIZON_S = 48 * 3600.0
EVAL_SEED = 2013


def eval_specs():
    fleet = FleetSpec(
        n_vms=64, horizon_s=EVAL_HORIZON_S, shared_fraction=0.3
    )
    kwargs = dict(
        n_hosts=EVAL_HOSTS,
        horizon_s=EVAL_HORIZON_S,
        seed=EVAL_SEED,
        fleet_spec=fleet,
    )
    configs = [always_on(), s5_policy(), s3_policy(), hybrid_policy()]
    return configs, [ScenarioSpec(cfg, kwargs=dict(kwargs)) for cfg in configs]


def main() -> int:
    configs, specs = eval_specs()
    kwargs = specs[0].kwargs

    t0 = time.perf_counter()
    serial_reports = [
        run_scenario(cfg, **dict(kwargs)).report for cfg in configs
    ]
    serial_s = time.perf_counter() - t0
    print("serial ({} scenarios):      {:.3f} s".format(len(specs), serial_s))

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold = run_scenarios(eval_specs()[1], workers=WORKERS, cache=cache)
        parallel_cold_s = time.perf_counter() - t0
        print("parallel cold (workers={}): {:.3f} s".format(WORKERS, parallel_cold_s))

        t0 = time.perf_counter()
        warm = run_scenarios(
            eval_specs()[1], workers=WORKERS, cache=ResultCache(tmp)
        )
        parallel_warm_s = time.perf_counter() - t0
        print("parallel warm (cache hit):  {:.3f} s".format(parallel_warm_s))

    identical = all(
        a.report.to_dict() == b.to_dict() for a, b in zip(cold, serial_reports)
    ) and all(
        a.report.to_dict() == b.report.to_dict() for a, b in zip(warm, cold)
    )
    print("parallel == serial reports: {}".format(identical))

    payload = {
        "scenarios": len(specs),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "eval": {
            "n_hosts": EVAL_HOSTS,
            "n_vms": 64,
            "horizon_s": EVAL_HORIZON_S,
            "seed": EVAL_SEED,
        },
        "seed_serial_reference_s": SEED_SERIAL_REFERENCE_S,
        "serial_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_cold_s, 3),
        "parallel_warm_s": round(parallel_warm_s, 3),
        "speedup_parallel_vs_seed": round(
            SEED_SERIAL_REFERENCE_S / parallel_cold_s, 2
        ),
        "speedup_serial_vs_seed": round(SEED_SERIAL_REFERENCE_S / serial_s, 2),
        "warm_cache_under_1s": parallel_warm_s < 1.0,
        "parallel_matches_serial": identical,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    atomic_write_json(out, payload)
    print("wrote {}".format(out))

    ok = (
        identical
        and parallel_warm_s < 1.0
        and SEED_SERIAL_REFERENCE_S / parallel_cold_s >= 2.0
    )
    print("acceptance: {}".format("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
