"""Micro-benchmark guard for the fused sampler tick.

``ClusterSampler.sample_once`` is the per-instant hot path; it replaces
three separate inventory walks (utilization refresh, per-class
shortfall, per-class demand) with one fused pass.  These tests pin two
properties:

1. **Float identity** — every series value the fused walk produces is
   bit-identical to the naive reference implementation it replaced.
2. **Speed** — the fused tick stays comfortably cheaper than the naive
   reference on a mid-size cluster (a regression guard, not a race).
"""

import time

from repro.core.runner import spread_placement
from repro.datacenter import Cluster
from repro.datacenter.vm import Priority
from repro.power.dvfs import DvfsModel
from repro.prototype import PROTOTYPE_BLADE
from repro.sim import Environment
from repro.telemetry.sampler import ClusterSampler
from repro.workload import FleetSpec, build_fleet


def naive_sample(cluster, now):
    """The pre-fusion reference: three separate inventory walks."""
    shortfall = cluster.refresh_utilization(now)
    class_shortfall = {p: 0.0 for p in Priority}
    for host in cluster.hosts:
        if not host.vms:
            continue
        for priority, cores in host.shortfall_by_class(now).items():
            class_shortfall[priority] += cores
    class_demand = {p: 0.0 for p in Priority}
    for vm in cluster.iter_vms():
        class_demand[vm.priority] += vm.demand_cores(now)
    demand = sum(class_demand.values())
    return shortfall, class_shortfall, class_demand, demand


def build_cluster(n_hosts=40, dvfs=False, seed=17):
    env = Environment()
    cluster = Cluster.homogeneous(
        env,
        PROTOTYPE_BLADE,
        n_hosts=n_hosts,
        dvfs=DvfsModel() if dvfs else None,
    )
    spec = FleetSpec(
        n_vms=4 * n_hosts, horizon_s=4 * 3600.0, shared_fraction=0.3
    )
    vms = build_fleet(spec, seed=seed)
    spread_placement(vms, cluster)
    for vm in vms:
        cluster._vms[vm.name] = vm
    return env, cluster


class TestFusedTickIdentity:
    def _assert_identical(self, dvfs):
        env, cluster = build_cluster(n_hosts=24, dvfs=dvfs)
        sampler = ClusterSampler(env, cluster, epoch_s=60.0)
        for tick in range(16):
            now = float(tick) * 60.0
            env._now = now
            # Reference first on a pristine copy of the instant is not
            # possible (refresh mutates machines) — instead compute the
            # reference *after* the fused walk: both are pure functions
            # of (VM demands at ``now``, host state), and the fused walk
            # leaves exactly the state the reference produces.
            sampler.sample_once()
            ref_sf, ref_cls_sf, ref_cls_d, ref_demand = naive_sample(
                cluster, now
            )
            s = sampler.series
            assert s["shortfall_cores"].values[-1] == ref_sf
            assert s["demand_cores"].values[-1] == ref_demand
            assert s["shortfall_gold"].values[-1] == ref_cls_sf[Priority.GOLD]
            assert (
                s["shortfall_silver"].values[-1]
                == ref_cls_sf[Priority.SILVER]
            )
            assert (
                s["shortfall_bronze"].values[-1]
                == ref_cls_sf[Priority.BRONZE]
            )

    def test_fused_tick_matches_naive_reference(self):
        self._assert_identical(dvfs=False)

    def test_fused_tick_matches_naive_reference_with_dvfs(self):
        self._assert_identical(dvfs=True)


class TestFusedTickSpeed:
    def test_fused_tick_not_slower_than_naive(self):
        env, cluster = build_cluster(n_hosts=60)
        sampler = ClusterSampler(env, cluster, epoch_s=60.0)
        ticks = 40

        start = time.perf_counter()
        for tick in range(ticks):
            env._now = float(tick) * 60.0
            sampler.sample_once()
        fused_s = time.perf_counter() - start

        start = time.perf_counter()
        for tick in range(ticks):
            naive_sample(cluster, float(tick) * 60.0)
        naive_s = time.perf_counter() - start

        # The fused walk does strictly less work (one pass, no dict
        # churn); allow head-room for timer noise rather than asserting a
        # ratio that could flake on loaded CI machines.
        assert fused_s < naive_s * 1.5, (fused_s, naive_s)
