"""F2 — break-even idle interval per power state.

Paper: normalized energy of parking in each state as a function of the
idle-gap length; the 1.0 crossing is the break-even interval.  The S3
crossing sits at tens of seconds, S5's at many minutes — the quantitative
heart of the low-latency-states argument.
"""

from repro.analysis import render_table
from repro.prototype import PROTOTYPE_BLADE, breakeven_curve

GAPS_S = [10, 20, 30, 60, 120, 300, 600, 1200, 3600, 2 * 3600, 4 * 3600]


def compute_f2():
    return breakeven_curve(PROTOTYPE_BLADE, GAPS_S)


def test_f2_breakeven(once):
    curves = once(compute_f2)
    header = ["gap_s"] + sorted(curves)
    rows = []
    for i, gap in enumerate(GAPS_S):
        rows.append([gap] + [curves[name][i][1] for name in sorted(curves)])
    print()
    print(
        render_table(
            header, rows, title="F2: normalized energy vs idle gap (1.0 = stay idle)"
        )
    )

    def crossing(name):
        for gap, ratio in curves[name]:
            if ratio < 1.0:
                return gap
        return float("inf")

    sleep_x, off_x = crossing("sleep"), crossing("off")
    # Shape: S3 pays off within 30 s; S5 needs several minutes.
    assert sleep_x <= 30
    assert off_x >= 300
    # Deep states win eventually: at 4 h every strategy is below 1.
    for name in curves:
        assert curves[name][-1][1] < 1.0
    # OFF's huge round-trip energy keeps it above SLEEP for hours; only
    # on very long gaps does its lower floor power finally win.
    two_hours = GAPS_S.index(2 * 3600)
    assert curves["off"][two_hours][1] > curves["sleep"][two_hours][1]
    assert curves["off"][-1][1] < curves["sleep"][-1][1]
