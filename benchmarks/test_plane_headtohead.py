"""Plane head-to-head — centralized vs. decentralized management plane.

The tentpole question for the plane split: does decomposing the monolith
into local detectors + a request channel + a global arbiter cost
anything, and what does it buy when the management network itself
degrades?  Three modes at 100 and 1000 hosts, all under the same chaos
suite (wake-failure burst, permanent failures with MTTR repair, lossy
migrations, stale telemetry, churn):

* ``centralized``   — the monolithic decision loop (baseline);
* ``neat``          — decentralized plane, healthy channel: must be
  *bit-identical* to centralized (the decomposition is free);
* ``neat-degraded`` — decentralized plane behind a 120 s / 20 %-loss
  request channel: the global arbiter plans on stale partial reports,
  degraded rounds restrict parking to fresh underload evidence, and the
  run must still certify.

Recorded per point: energy, violation fractions, wake/park/rejection
counters, detector-channel traffic, safe-mode entries, and
``decision_loop_latency_s`` — mean wall-clock per consolidation round
(``sim_wall_s`` / planner rounds), the decision-loop cost proxy the
overhead experiments track.  100-host points are traced and replayed
through the invariant checker; 1000-host points run untraced for wall
budget.

Run the full series (writes ``BENCH_plane.json`` at the repo root)::

    PYTHONPATH=src:. python benchmarks/test_plane_headtohead.py

``test_plane_headtohead_smoke`` runs the 100-host points under a CI
wall budget and guards the headline claims: healthy-neat bit-exactness
and certified degraded operation.
"""

import json
import os
import resource
import sys
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.core import run_scenario, s3_policy
from repro.datacenter import (
    FaultModel,
    MigrationFaultModel,
    RepairModel,
    burst_window,
)
from repro.telemetry import StalenessModel
from repro.telemetry.validate import validate_trace
from repro.workload import FleetSpec

PLANE_HOSTS = (100, 1000)
PLANE_MODES = ("centralized", "neat", "neat-degraded")
PLANE_HOURS = 2.0
PLANE_SEED = 2013
PLANE_VMS_PER_HOST = 4

#: The degraded request channel: reports arrive two watchdog ticks late
#: and one in five is lost outright.
DEGRADED_DELAY_S = 120.0
DEGRADED_DROPOUT = 0.2

#: CI wall budget for one traced 100-host chaos point.
SMOKE_SIM_WALL_BUDGET_S = 10.0


def chaos_fault_model(horizon_s: float) -> FaultModel:
    """The chaos suite: everything degraded at once, mid-run burst."""
    return FaultModel(
        wake_failure_rate=0.1,
        permanent_fraction=0.1,
        repair=RepairModel(mttr_s=3600.0),
        chaos=burst_window(0.25 * horizon_s, 0.5 * horizon_s, 0.5),
        migration=MigrationFaultModel(failure_rate=0.1),
    )


def plane_policy(mode: str):
    config = s3_policy()
    if mode == "neat":
        return config.with_overrides(plane="neat")
    if mode == "neat-degraded":
        return config.with_overrides(
            plane="neat",
            neat_request_delay_s=DEGRADED_DELAY_S,
            neat_request_dropout=DEGRADED_DROPOUT,
        )
    return config


def run_point(n_hosts: int, mode: str) -> dict:
    horizon_s = PLANE_HOURS * 3600.0
    traced = n_hosts <= 100
    result = run_scenario(
        plane_policy(mode),
        n_hosts=n_hosts,
        horizon_s=horizon_s,
        seed=PLANE_SEED,
        fleet_spec=FleetSpec(
            n_vms=PLANE_VMS_PER_HOST * n_hosts,
            horizon_s=horizon_s,
            shared_fraction=0.3,
        ),
        churn_rate_per_h=2.0,
        fault_model=chaos_fault_model(horizon_s),
        telemetry_model=StalenessModel(delay_s=60.0, dropout_rate=0.1),
        trace=traced,
    )
    certified = None
    if traced:
        check = validate_trace(result.trace, report=result.report)
        certified = bool(check.ok)
    extra = result.report.extra
    rounds = horizon_s / plane_policy(mode).period_s
    return {
        "hosts": n_hosts,
        "mode": mode,
        "vms": PLANE_VMS_PER_HOST * n_hosts,
        "hours": PLANE_HOURS,
        "seed": PLANE_SEED,
        "sim_wall_s": round(result.sim_wall_s, 4),
        "decision_loop_latency_s": round(result.sim_wall_s / rounds, 6),
        "energy_kwh": result.report.energy_kwh,
        "violation_fraction": result.report.violation_fraction,
        "violation_gold": extra["violation_gold"],
        "wakes_requested": int(extra["wakes_requested"]),
        "wake_failures": int(extra["wake_failures"]),
        "wake_rejections": int(extra["wake_rejections"]),
        "reactive_wakes": int(extra["reactive_wakes"]),
        "parks_completed": int(extra["parks_completed"]),
        "safe_mode_enters": int(extra["safe_mode_enters"]),
        "detector_reports": int(extra["detector_reports"]),
        "detector_reports_dropped": int(extra["detector_reports_dropped"]),
        "certified": certified,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def test_plane_headtohead_smoke():
    """100-host chaos points: healthy-neat bit-exact, degraded certified."""
    base = run_point(100, "centralized")
    neat = run_point(100, "neat")
    degraded = run_point(100, "neat-degraded")
    assert base["sim_wall_s"] < SMOKE_SIM_WALL_BUDGET_S
    # The decomposition is free: a healthy channel reproduces the
    # centralized run bit for bit, chaos and all.
    assert neat["energy_kwh"] == base["energy_kwh"]
    assert neat["violation_fraction"] == base["violation_fraction"]
    assert neat["detector_reports"] > 0
    # Degraded operation actually degraded — and still certified.
    assert degraded["detector_reports_dropped"] > 0
    for point in (base, neat, degraded):
        assert point["certified"] is True, point["mode"]


def _run_point_subprocess(n_hosts: int, mode: str) -> dict:
    """One point per fresh interpreter, as in ``test_f_scale``."""
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--point", "{}:{}".format(n_hosts, mode),
        ],
        env=env,
        stdout=subprocess.PIPE,
        check=True,
    )
    return json.loads(proc.stdout.decode())


def main() -> int:
    points = []
    for n_hosts in PLANE_HOSTS:
        for mode in PLANE_MODES:
            point = _run_point_subprocess(n_hosts, mode)
            points.append(point)
            print(
                "hosts={:>5}  {:<14}  sim={:7.3f}s  loop={:8.6f}s  "
                "E={:10.4f} kWh  viol={:.3e}  rej={:>3}  drop={:>5}  "
                "cert={}".format(
                    point["hosts"], point["mode"], point["sim_wall_s"],
                    point["decision_loop_latency_s"], point["energy_kwh"],
                    point["violation_fraction"], point["wake_rejections"],
                    point["detector_reports_dropped"], point["certified"],
                )
            )

    by_key = {(p["hosts"], p["mode"]): p for p in points}
    neat_exact = all(
        by_key[(h, "neat")]["energy_kwh"]
        == by_key[(h, "centralized")]["energy_kwh"]
        and by_key[(h, "neat")]["violation_fraction"]
        == by_key[(h, "centralized")]["violation_fraction"]
        for h in PLANE_HOSTS
    )
    degraded_degraded = all(
        by_key[(h, "neat-degraded")]["detector_reports_dropped"] > 0
        for h in PLANE_HOSTS
    )
    traced_certified = all(
        p["certified"] for p in points if p["certified"] is not None
    )
    payload = {
        "series": "plane-headtohead",
        "harness": "benchmarks/test_plane_headtohead.py",
        "chaos": {
            "wake_failure_rate": 0.1,
            "permanent_fraction": 0.1,
            "mttr_s": 3600.0,
            "burst_rate": 0.5,
            "migration_failure_rate": 0.1,
            "telemetry_delay_s": 60.0,
            "telemetry_dropout": 0.1,
            "churn_rate_per_h": 2.0,
        },
        "degraded_channel": {
            "delay_s": DEGRADED_DELAY_S,
            "dropout": DEGRADED_DROPOUT,
        },
        "neat_bit_identical": neat_exact,
        "degraded_runs_degraded": degraded_degraded,
        "traced_runs_certified": traced_certified,
        "points": points,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_plane.json"
    atomic_write_json(out, payload)
    print("wrote {}".format(out))

    ok = neat_exact and degraded_degraded and traced_certified
    print("acceptance: {}".format("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--point":
        hosts, mode = sys.argv[2].split(":")
        print(json.dumps(run_point(int(hosts), mode)))
        sys.exit(0)
    sys.exit(main())
