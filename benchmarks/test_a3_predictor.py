"""A3 — ablation: demand predictor.

Design-choice study: reactive vs. EWMA vs. peak-window prediction.  The
paper's agility claim implies the controller barely needs foresight when
wake latency is seconds — the reactive controller should land close to
the smarter ones on energy *and* violations.
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy, s5_policy

PREDICTORS = ["reactive", "ewma", "peak", "history"]
HORIZON = 48 * 3600.0


def compute_a3():
    spec = eval_fleet_spec(horizon_s=HORIZON, shared_fraction=0.4)
    rows = []
    for park, base_cfg in (("S3", s3_policy), ("S5", s5_policy)):
        for predictor in PREDICTORS:
            cfg = base_cfg().with_overrides(
                name="{}/{}".format(park, predictor), predictor=predictor
            )
            run = run_scenario(
                cfg, n_hosts=16, horizon_s=HORIZON, seed=57, fleet_spec=spec
            )
            rows.append(
                {
                    "park": park,
                    "predictor": predictor,
                    "energy_kwh": run.report.energy_kwh,
                    "violation_time": run.report.violation_time_fraction,
                }
            )
    return rows


def test_a3_predictor(once):
    rows = once(compute_a3)
    print()
    print(
        render_table(
            ["policy", "predictor", "energy_kwh", "violation_time"],
            [[r["park"], r["predictor"], r["energy_kwh"], r["violation_time"]]
             for r in rows],
            title="A3: predictor sweep",
        )
    )
    s3 = {r["predictor"]: r for r in rows if r["park"] == "S3"}
    # With fast wake-up, the reactive controller's violations stay close
    # to the predictive ones — foresight is barely needed.
    smartest = min(s3[p]["violation_time"] for p in ("ewma", "peak"))
    assert s3["reactive"]["violation_time"] <= smartest + 0.03
    # Peak-tracking holds more capacity: energy no lower than EWMA's.
    assert s3["peak"]["energy_kwh"] >= s3["ewma"]["energy_kwh"] - 1.0
