"""F10 — cluster energy-proportionality curve.

Paper: normalized cluster power vs. offered load, per policy, against the
ideal proportional line.  Shape: AlwaysOn is a flat expensive line; S3-PM
hugs the diagonal ("close to energy-proportional power efficiency").
"""

from benchmarks.conftest import EVAL_HOSTS, eval_fleet_spec, run_policy_comparison
from repro.analysis import proportionality_curve, proportionality_gap, render_table
from repro.prototype import PROTOTYPE_BLADE


def compute_f10():
    spec = eval_fleet_spec(archetype_weights={"diurnal": 0.85, "flat": 0.15})
    runs = run_policy_comparison(fleet_spec=spec)
    total_cores = EVAL_HOSTS * 16.0
    peak_w = EVAL_HOSTS * PROTOTYPE_BLADE.peak_w
    curves = {
        name: proportionality_curve(run.sampler, total_cores, peak_w)
        for name, run in runs.items()
    }
    gaps = {
        name: proportionality_gap(run.sampler, total_cores, peak_w)
        for name, run in runs.items()
    }
    return curves, gaps


def test_f10_proportionality(once):
    curves, gaps = once(compute_f10)
    print()
    for name, curve in curves.items():
        print(
            render_table(
                ["load_frac", "norm_power"],
                [[l, p] for l, p in curve],
                title="F10 [{}] (ideal: norm_power == load_frac)".format(name),
            )
        )
    print()
    print(
        render_table(
            ["policy", "proportionality_gap"],
            [[name, gap] for name, gap in sorted(gaps.items())],
            title="F10 summary: mean |norm_power - load| (0 = ideal)",
        )
    )

    # Shape: power management moves the cluster dramatically toward the
    # proportional line.
    assert gaps["S3-PM"] < 0.5 * gaps["AlwaysOn"]
    assert gaps["Hybrid"] < 0.5 * gaps["AlwaysOn"]
    # The managed curve lies below the always-on curve at low load.
    low_always = curves["AlwaysOn"][0][1]
    low_s3 = curves["S3-PM"][0][1]
    assert low_s3 < low_always
    # Ideally close: S3's average distance from the diagonal is small.
    assert gaps["S3-PM"] < 0.17
