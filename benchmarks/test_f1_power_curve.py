"""F1 — server power vs. utilization (the energy-proportionality motivation).

Paper: the measured load line of the prototype server, showing that idle
consumes roughly half of peak — the reason host-level parking matters.
"""

from repro.analysis import render_series, render_table
from repro.prototype import PROTOTYPE_BLADE


def compute_f1(points=21):
    model = PROTOTYPE_BLADE.active_model
    return [
        (i / (points - 1), model.power_at(i / (points - 1))) for i in range(points)
    ]


def test_f1_power_curve(once):
    curve = once(compute_f1)
    print()
    print(
        render_table(
            ["utilization", "power_w", "ideal_proportional_w"],
            [[u, w, u * PROTOTYPE_BLADE.peak_w] for u, w in curve],
            title="F1: server power vs utilization",
        )
    )
    print(render_series(curve, name="P(u)"))

    idle = curve[0][1]
    peak = curve[-1][1]
    # Shape: idle is a large fraction of peak — far from proportional.
    assert 0.4 <= idle / peak <= 0.6
    # Monotone non-decreasing load line.
    watts = [w for _, w in curve]
    assert all(b >= a - 1e-9 for a, b in zip(watts, watts[1:]))
    # Concave: at 50% load, more than 50% of the dynamic range is burned.
    mid = next(w for u, w in curve if abs(u - 0.5) < 1e-9)
    assert (mid - idle) / (peak - idle) > 0.5
