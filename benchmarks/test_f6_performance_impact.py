"""F6 — performance impact per policy.

Paper: the performance cost of power management — demand that could not
be served (capacity violations) while hosts were parked or waking —
compared with the zero-violation always-on baseline.

Two comparisons matter:

* *policy-fair*: S3-PM vs. S5-PM, each with the knobs its latency can
  afford — S3 must win on energy while staying in the same violation
  ballpark;
* *latency-isolating*: S3-PM vs. S5-aggr (identical aggressive knobs,
  only the park state differs) — here the slow state must hurt more,
  which is the pure hardware effect.
"""

from benchmarks.conftest import eval_fleet_spec, run_policy_comparison
from repro.analysis import render_table
from repro.core import always_on, hybrid_policy, s3_policy, s5_policy
from repro.core.policies import s5_aggressive_policy


def compute_f6():
    # The stress case: correlated bursts, where wake latency is exposed.
    spec = eval_fleet_spec(
        archetype_weights={"bursty": 0.6, "diurnal": 0.4}, shared_fraction=0.55
    )
    configs = [
        always_on(),
        s5_policy(),
        s5_aggressive_policy(),
        s3_policy(),
        hybrid_policy(),
    ]
    return run_policy_comparison(configs=configs, fleet_spec=spec)


def test_f6_performance_impact(once):
    runs = once(compute_f6)
    rows = []
    for name in ("AlwaysOn", "S5-PM", "S5-aggr", "S3-PM", "Hybrid"):
        r = runs[name].report
        rows.append(
            [
                name,
                r.energy_kwh,
                r.violation_fraction,
                r.violation_time_fraction,
                r.extra.get("reactive_wakes", 0.0),
            ]
        )
    print()
    print(
        render_table(
            ["policy", "energy_kwh", "undelivered_frac", "violation_time_frac",
             "reactive_wakes"],
            rows,
            title="F6: performance impact under correlated bursts",
        )
    )

    base = runs["AlwaysOn"].report
    s3 = runs["S3-PM"].report
    s5 = runs["S5-PM"].report
    s5a = runs["S5-aggr"].report
    # Baseline serves everything.
    assert base.violation_fraction == 0.0
    # S3 undelivered demand is small in absolute terms...
    assert s3.violation_fraction < 0.02
    # ...while saving substantially more than always-on.
    assert s3.energy_kwh < 0.8 * base.energy_kwh
    # Policy-fair: S3 saves at least as much energy as conservative S5
    # without blowing past its violation level.
    assert s3.energy_kwh <= s5.energy_kwh * 1.02
    assert s3.violation_fraction <= 2.0 * s5.violation_fraction + 0.005
    # Latency-isolating: same aggressive knobs, slow state hurts more.
    assert s3.violation_fraction <= s5a.violation_fraction + 1e-9
