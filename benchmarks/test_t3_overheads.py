"""T3/F7 — management-overhead parity with base DRM.

Paper's central adoption argument: power management built on low-latency
states adds overheads *comparable to* the distributed resource management
activity that virtualized clusters already accept (load-balancing
migrations, provisioning churn).
"""

from benchmarks.conftest import EVAL_HORIZON_S, eval_fleet_spec, run_policy_comparison
from repro.analysis import render_table
from repro.core import always_on, s3_policy, s5_policy


def compute_t3():
    spec = eval_fleet_spec()
    return run_policy_comparison(
        configs=[always_on(), s5_policy(), s3_policy()],
        fleet_spec=spec,
        churn_rate_per_h=4.0,
        churn_lifetime_s=8 * 3600.0,
    )


def test_t3_overheads(once):
    runs = once(compute_t3)
    hours = EVAL_HORIZON_S / 3600.0
    rows = []
    for name in ("AlwaysOn", "S5-PM", "S3-PM"):
        r = runs[name].report
        rows.append(
            [
                name,
                r.migrations_per_hour,
                (r.park_transitions + r.wake_transitions) / hours,
                r.transitions_per_host_per_day,
                r.migration_downtime_s,
                r.extra.get("balancer_moves", 0.0),
                r.extra.get("churn_rejected", 0.0),
            ]
        )
    print()
    print(
        render_table(
            [
                "policy",
                "migs/h",
                "transitions/h",
                "trans/host/day",
                "downtime_s",
                "balancer_moves",
                "churn_rejects",
            ],
            rows,
            title="T3: management overheads (DRM churn active)",
        )
    )

    base = runs["AlwaysOn"].report
    s3 = runs["S3-PM"].report
    # Shape: overheads are the same order of magnitude as base DRM —
    # a handful of migrations per hour, not hundreds.
    assert s3.migrations_per_hour < 20.0
    assert s3.migrations_per_hour <= 15 * max(base.migrations_per_hour, 0.5)
    # Transition churn stays modest: a few park/wake cycles per host-day.
    assert s3.transitions_per_host_per_day < 20.0
    # Migration downtime (service blips) totals seconds over two days.
    assert s3.migration_downtime_s < 60.0
