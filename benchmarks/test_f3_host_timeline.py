"""F3 — single-host suspend/resume power timeline (prototype experiment).

Paper: oscilloscope-style power trace of one server through a
busy → idle(park) → busy window, per power state, demonstrating both the
energy saved and the wake-latency exposure.
"""

from repro.analysis import render_series, render_table
from repro.power import PowerState
from repro.prototype import PROTOTYPE_BLADE, replay_idle_window

STATES = [PowerState.SLEEP, PowerState.HIBERNATE, PowerState.OFF]


def compute_f3():
    return {
        state.value: replay_idle_window(
            PROTOTYPE_BLADE,
            state,
            busy_before_s=300.0,
            idle_gap_s=900.0,
            busy_after_s=300.0,
        )
        for state in STATES
    }


def test_f3_host_timeline(once):
    results = once(compute_f3)
    print()
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r["energy_j"] / 1000.0,
                r["energy_j_always_on"] / 1000.0,
                1.0 - r["energy_j"] / r["energy_j_always_on"],
                r["late_s"],
            ]
        )
        print(render_series(r["trace"], name="power(t) parking in {}".format(name)))
    print()
    print(
        render_table(
            ["state", "energy_kJ", "always_on_kJ", "savings", "late_s"],
            rows,
            title="F3: single-host idle-window replay (900 s gap)",
        )
    )

    sleep = results["sleep"]
    off = results["off"]
    # Shape: every state saves energy on a 15-minute gap...
    for r in results.values():
        assert r["energy_j"] < r["energy_j_always_on"]
    # ...but only the low-latency state wakes strictly on time here and
    # saves the most because its transitions are nearly free.
    assert sleep["late_s"] == 0.0
    assert sleep["energy_j"] < off["energy_j"]
    # The trace shows a real dip: minimum power well below idle.
    min_w = min(w for _, w in sleep["trace"])
    assert min_w < 0.2 * PROTOTYPE_BLADE.idle_w
