"""A11 — ablation: service quality under a degraded management plane.

The robustness objection to consolidation: the control plane itself
fails.  Live migrations abort mid-copy, and the telemetry pipeline the
manager plans against delivers stale, lossy snapshots.  This benchmark
runs the default evaluation scenario with escalating plane degradation
and shows the fault-domain machinery — per-flight rollback, bounded
retries with backoff and re-planning, and the safe-mode governor that
freezes consolidation when the plane is untrustworthy — keeps the
service-class guarantees intact: gold violations under a 10 % migration
failure rate plus 60 s telemetry staleness stay within 2x of the
fault-free baseline.

Every run is traced and replayed through the invariant checker (which
now certifies rollback, retry-chain monotonicity, and the safe-mode
freeze), so the claim is certified, not just plotted.
"""

from benchmarks.conftest import EVAL_HORIZON_S, EVAL_SEED

from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.datacenter import FaultModel, MigrationFaultModel
from repro.telemetry import StalenessModel
from repro.telemetry.validate import validate_trace

#: (label, migration failure rate, telemetry staleness model)
DEGRADATIONS = [
    ("fault-free", 0.0, None),
    ("migr-5%", 0.05, None),
    ("stale-60s", 0.0, StalenessModel(delay_s=60.0, dropout_rate=0.1)),
    ("migr-10%+stale", 0.10, StalenessModel(delay_s=60.0, dropout_rate=0.1)),
]

#: Absolute floor for the gold-violation bound: 2x of a fault-free zero
#: is zero, which would turn numerical dust into a failure.
GOLD_FLOOR = 1e-3


def compute_a11():
    rows = []
    for label, rate, staleness in DEGRADATIONS:
        fault_model = None
        if rate > 0:
            fault_model = FaultModel(
                migration=MigrationFaultModel(failure_rate=rate)
            )
        run = run_scenario(
            s3_policy(),
            n_hosts=20,
            n_vms=80,
            horizon_s=EVAL_HORIZON_S,
            seed=EVAL_SEED,
            fault_model=fault_model,
            telemetry_model=staleness,
            trace=True,
        )
        check = validate_trace(run.trace, report=run.report)
        extra = run.report.extra
        rows.append(
            {
                "label": label,
                "energy_kwh": run.report.energy_kwh,
                "violation": run.report.violation_fraction,
                "gold": extra["violation_gold"],
                "failed": int(extra["migrations_failed"]),
                "retries": int(extra["migration_retries"]),
                "safe_enters": int(extra["safe_mode_enters"]),
                "dropped": int(extra["telemetry_dropped"]),
                "trace_ok": check.ok,
                "trace_violations": check.invariants_violated(),
            }
        )
    return rows


def test_a11_degraded_plane(once):
    rows = once(compute_a11)
    print()
    print(
        render_table(
            ["scenario", "energy_kwh", "undelivered", "gold_viol", "failed",
             "retries", "safe_enters", "dropped", "trace_ok"],
            [
                [r["label"], r["energy_kwh"], r["violation"], r["gold"],
                 r["failed"], r["retries"], r["safe_enters"], r["dropped"],
                 "yes" if r["trace_ok"] else "NO"]
                for r in rows
            ],
            title="A11: degraded management plane (S3-PM)",
        )
    )
    by_label = {r["label"]: r for r in rows}
    # Every run — including the degraded ones — must replay cleanly
    # through the invariant checker; a certified table or no table.
    for r in rows:
        assert r["trace_ok"], "{}: invariants fired: {}".format(
            r["label"], r["trace_violations"]
        )
    # The headline claim: gold service survives 10 % migration failures
    # plus a stale, lossy telemetry pipeline within 2x of fault-free.
    base_gold = by_label["fault-free"]["gold"]
    worst = by_label["migr-10%+stale"]
    assert worst["gold"] <= max(2.0 * base_gold, GOLD_FLOOR)
    # Ride-through, not avoidance: the degraded runs actually degraded.
    assert worst["failed"] > 0
    assert worst["dropped"] > 0
    assert by_label["fault-free"]["failed"] == 0
    assert by_label["fault-free"]["safe_enters"] == 0
