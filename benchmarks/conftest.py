"""Shared helpers for the experiment benchmarks.

Every module regenerates one table/figure from DESIGN.md's experiment
index.  The pattern is uniform: compute once under ``benchmark.pedantic``
(rounds=1 — these are simulations, not microbenchmarks), print the
rows/series the paper reports, and assert the qualitative *shape* that the
reproduction must preserve.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.core import (
    ScenarioSpec,
    always_on,
    hybrid_policy,
    run_scenarios,
    s3_policy,
    s5_policy,
)
from repro.workload import FleetSpec

#: Standard evaluation scenario shared by the policy-comparison benches.
EVAL_HOSTS = 16
EVAL_VMS = 64
EVAL_HORIZON_S = 48 * 3600.0
EVAL_SEED = 2013


def eval_fleet_spec(**overrides):
    """The enterprise mix used across the headline experiments."""
    defaults = dict(
        n_vms=EVAL_VMS,
        horizon_s=EVAL_HORIZON_S,
        shared_fraction=0.3,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def run_policy_comparison(configs=None, fleet_spec=None, workers=None,
                          cache=True, **scenario_kwargs):
    """Run the given policies on the shared scenario; returns name→artifacts.

    Executes through :func:`repro.core.run_scenarios`: the policies fan
    out over a process pool (``REPRO_WORKERS`` controls the width) and
    repeated scenarios — e.g. the ``AlwaysOn`` baseline shared by several
    benchmark modules — are served from the disk result cache instead of
    re-simulated (set ``REPRO_NO_CACHE=1`` to force fresh runs).
    """
    configs = configs or [always_on(), s5_policy(), s3_policy(), hybrid_policy()]
    kwargs = dict(
        n_hosts=EVAL_HOSTS,
        horizon_s=EVAL_HORIZON_S,
        seed=EVAL_SEED,
        fleet_spec=fleet_spec or eval_fleet_spec(),
    )
    kwargs.update(scenario_kwargs)
    specs = [ScenarioSpec(cfg, kwargs=dict(kwargs)) for cfg in configs]
    artifacts = run_scenarios(specs, workers=workers, cache=cache)
    return {spec.name: art for spec, art in zip(specs, artifacts)}


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under timing (simulation-scale bench)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
