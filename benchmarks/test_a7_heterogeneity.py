"""A7 — extension: mixed-generation clusters and park-candidate ordering.

Real fleets mix server generations with very different idle draw.  When
the consolidation controller chooses *which* host to park, preferring the
least efficient machine (within an equally-cheap-to-evacuate load bucket)
compounds the savings.
"""

from repro.analysis import render_table
from repro.core import PowerAwareManager, s3_policy
from repro.core.runner import spread_placement
from repro.datacenter import Cluster
from repro.migration import MigrationEngine
from repro.prototype import make_prototype_blade_profile
from repro.sim import Environment
from repro.telemetry import ClusterSampler, build_report
from repro.workload import FleetSpec, build_fleet

HORIZON = 48 * 3600.0

OLD_GEN = make_prototype_blade_profile(idle_w=230.0, peak_w=400.0)
NEW_GEN = make_prototype_blade_profile(idle_w=120.0, peak_w=300.0)


def run_mixed(preference):
    env = Environment()
    cluster = Cluster.heterogeneous(
        env,
        [
            {"count": 8, "profile": OLD_GEN, "cores": 16.0, "mem_gb": 128.0},
            {"count": 8, "profile": NEW_GEN, "cores": 16.0, "mem_gb": 128.0},
        ],
    )
    spec = FleetSpec(
        n_vms=64,
        horizon_s=HORIZON,
        archetype_weights={"diurnal": 0.8, "flat": 0.2},
    )
    fleet = build_fleet(spec, seed=19)
    spread_placement(fleet, cluster)
    engine = MigrationEngine(env)
    cfg = s3_policy().with_overrides(
        name="S3/{}".format(preference), park_preference=preference
    )
    manager = PowerAwareManager(env, cluster, engine, cfg)
    sampler = ClusterSampler(env, cluster)
    sampler.start()
    manager.start()
    env.run(until=HORIZON)
    report = build_report(cfg.name, cluster, sampler, engine, HORIZON)
    old_parked_time = sum(
        sum(h.machine.residency_s(s) for s in h.profile.park_states())
        for h in cluster.hosts
        if h.name.startswith("gen0")
    )
    new_parked_time = sum(
        sum(h.machine.residency_s(s) for s in h.profile.park_states())
        for h in cluster.hosts
        if h.name.startswith("gen1")
    )
    return report, old_parked_time, new_parked_time


def compute_a7():
    return {pref: run_mixed(pref) for pref in ("load", "efficiency")}


def test_a7_heterogeneity(once):
    results = once(compute_a7)
    rows = []
    for pref, (report, old_t, new_t) in results.items():
        rows.append(
            [
                pref,
                report.energy_kwh,
                report.violation_fraction,
                old_t / 3600.0,
                new_t / 3600.0,
            ]
        )
    print()
    print(
        render_table(
            ["park_preference", "energy_kwh", "undelivered",
             "oldgen_parked_h", "newgen_parked_h"],
            rows,
            title="A7: park-candidate ordering on a mixed-generation cluster",
        )
    )

    load_report, load_old, load_new = results["load"]
    eff_report, eff_old, eff_new = results["efficiency"]
    # Efficiency ordering parks the old generation for more host-hours...
    assert eff_old > load_old
    # ...and saves energy overall, at no violation cost.
    assert eff_report.energy_kwh < load_report.energy_kwh
    assert eff_report.violation_fraction <= load_report.violation_fraction + 0.005
