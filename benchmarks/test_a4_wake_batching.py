"""A4 — ablation: wake-ahead batching (``wake_boost_hosts``).

Design-choice study: when a shortfall is detected, how many extra hosts
should be woken beyond the computed need?  Boost trades energy for a
deeper buffer against consecutive bursts.
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy

BOOSTS = [0, 1, 2, 4]
HORIZON = 48 * 3600.0


def compute_a4():
    spec = eval_fleet_spec(
        horizon_s=HORIZON,
        archetype_weights={"bursty": 0.7, "diurnal": 0.3},
        shared_fraction=0.55,
    )
    rows = []
    for boost in BOOSTS:
        # Reactive prediction isolates the batching mechanism: every wake
        # is shortfall-driven, so the boost knob is what decides how many
        # hosts come up per event.
        cfg = s3_policy().with_overrides(
            name="S3 boost={}".format(boost),
            wake_boost_hosts=boost,
            predictor="reactive",
        )
        run = run_scenario(
            cfg, n_hosts=16, horizon_s=HORIZON, seed=77, fleet_spec=spec
        )
        rows.append(
            {
                "boost": boost,
                "energy_kwh": run.report.energy_kwh,
                "violation_time": run.report.violation_time_fraction,
                "wakes": run.report.wake_transitions,
            }
        )
    return rows


def test_a4_wake_batching(once):
    rows = once(compute_a4)
    print()
    print(
        render_table(
            ["wake_boost_hosts", "energy_kwh", "violation_time", "wakes"],
            [[r["boost"], r["energy_kwh"], r["violation_time"], r["wakes"]]
             for r in rows],
            title="A4: wake-batching sweep (S3-PM, correlated bursts)",
        )
    )
    by_boost = {r["boost"]: r for r in rows}
    # Boost produces strictly more wake activity and costs energy.
    assert by_boost[4]["wakes"] > by_boost[0]["wakes"]
    assert by_boost[4]["energy_kwh"] >= by_boost[0]["energy_kwh"]
    # All variants keep violations small — with fast wake-up the batching
    # knob barely matters, which is itself the interesting result.
    for r in rows:
        assert r["violation_time"] < 0.12
