"""F4 — end-to-end testbed timeline.

Paper: a small real cluster under diurnal load; demand, active-host count
and total power over time, showing hosts parked in the trough and woken
for the next peak.
"""

from repro.analysis import render_series
from repro.core import run_scenario, s3_policy
from repro.workload import FleetSpec

HORIZON = 48 * 3600.0


def compute_f4():
    spec = FleetSpec(
        n_vms=20,
        archetype_weights={"diurnal": 0.9, "flat": 0.1},
        horizon_s=HORIZON,
    )
    return run_scenario(
        s3_policy(), n_hosts=5, horizon_s=HORIZON, seed=99, fleet_spec=spec
    )


def test_f4_testbed_timeline(once):
    result = once(compute_f4)
    s = result.sampler.series
    print()
    for name in ("demand_cores", "active_hosts", "power_w"):
        print(render_series(s[name].points(), name=name))

    active = s["active_hosts"]
    power = s["power_w"]
    demand = s["demand_cores"]

    # Shape: the controller actually breathes with the load.
    assert active.min() < active.max()
    assert active.min() <= 3
    assert active.max() >= 4
    # Power tracks the host count: the trough power is far below peak.
    assert power.min() < 0.5 * power.max()
    # Demand is always coverable and violations negligible on diurnal load.
    assert result.report.violation_fraction < 0.02
    # Demand trough/peak drove this (diurnal): sanity on the workload.
    assert demand.max() > 2 * max(demand.min(), 0.5)
