"""A5 — ablation: DVFS vs. host parking vs. both.

The paper's positioning argument: DVFS only scales the *dynamic* share of
server power, and 2013-era servers idle at ~half of peak — so no
frequency governor can approach proportionality.  Host-level parking with
low-latency states attacks the idle power itself; DVFS remains a useful
complement on the hosts that stay active.
"""

from benchmarks.conftest import eval_fleet_spec, run_policy_comparison
from repro.analysis import render_table
from repro.core import always_on, s3_policy
from repro.core.policies import dvfs_only, s3_dvfs_policy


def compute_a5():
    spec = eval_fleet_spec(archetype_weights={"diurnal": 0.8, "flat": 0.2})
    configs = [always_on(), dvfs_only(), s3_policy(), s3_dvfs_policy()]
    return run_policy_comparison(configs=configs, fleet_spec=spec)


def test_a5_dvfs(once):
    runs = once(compute_a5)
    base = runs["AlwaysOn"].report.energy_kwh
    rows = []
    for name in ("AlwaysOn", "DVFS-only", "S3-PM", "S3+DVFS"):
        r = runs[name].report
        rows.append(
            [name, r.energy_kwh, r.energy_kwh / base, r.violation_fraction]
        )
    print()
    print(
        render_table(
            ["policy", "energy_kwh", "normalized", "undelivered"],
            rows,
            title="A5: DVFS vs parking vs both",
        )
    )

    norm = {name: runs[name].report.energy_kwh / base for name in runs}
    # DVFS alone saves something real...
    assert norm["DVFS-only"] < 0.95
    # ...but parking saves several times more.
    dvfs_savings = 1.0 - norm["DVFS-only"]
    parking_savings = 1.0 - norm["S3-PM"]
    assert parking_savings > 2.0 * dvfs_savings
    # The two compose: parking + DVFS is the best configuration.
    assert norm["S3+DVFS"] < norm["S3-PM"]
    assert norm["S3+DVFS"] < norm["DVFS-only"]
    # DVFS costs nothing in delivered performance in this model.
    assert runs["DVFS-only"].report.violation_fraction == 0.0
