"""T4 — workload characterization table.

Quantifies the demand signals every experiment runs on, so the reader can
connect workload structure to outcome: peak-to-mean (the consolidation
opportunity), trough fraction (parkable time), burstiness and cross-VM
correlation (the wake-latency stressors).
"""

from benchmarks.conftest import eval_fleet_spec
from repro.analysis import render_table
from repro.workload import (
    aggregate_demand_series,
    build_fleet,
    fleet_correlation,
    series_stats,
)

HORIZON = 2 * 86_400.0

WORKLOADS = {
    "diurnal": dict(archetype_weights={"diurnal": 0.85, "flat": 0.15}),
    "bursty-corr": dict(
        archetype_weights={"bursty": 0.7, "diurnal": 0.3}, shared_fraction=0.5
    ),
    "mixed": dict(),
    # shared_fraction 0 here: the uncorrelated control group.
    "flat": dict(
        archetype_weights={"flat": 0.9, "spiky": 0.1}, shared_fraction=0.0
    ),
}


def compute_t4():
    rows = []
    for name, overrides in WORKLOADS.items():
        spec = eval_fleet_spec(horizon_s=HORIZON, **overrides)
        fleet = build_fleet(spec, seed=2013)
        aggregate = aggregate_demand_series(fleet, horizon_s=HORIZON)
        stats = series_stats(aggregate)
        rho = fleet_correlation(fleet, horizon_s=HORIZON, pairs=120)
        rows.append(
            {
                "workload": name,
                "mean_cores": stats.mean,
                "peak_cores": stats.peak,
                "peak_to_mean": stats.peak_to_mean,
                "trough_frac": stats.trough_fraction,
                "burstiness": stats.burstiness,
                "autocorr": stats.autocorrelation,
                "vm_correlation": rho,
            }
        )
    return rows


def test_t4_workloads(once):
    rows = once(compute_t4)
    print()
    print(
        render_table(
            ["workload", "mean", "peak", "peak/mean", "trough_frac",
             "burstiness", "autocorr", "vm_corr"],
            [
                [r["workload"], r["mean_cores"], r["peak_cores"],
                 r["peak_to_mean"], r["trough_frac"], r["burstiness"],
                 r["autocorr"], r["vm_correlation"]]
                for r in rows
            ],
            title="T4: aggregate-demand characterization (64 VMs, 48 h)",
        )
    )
    by_name = {r["workload"]: r for r in rows}
    # Diurnal load has the big consolidation opportunity...
    assert by_name["diurnal"]["peak_to_mean"] > 1.5
    # ...and is highly predictable.
    assert by_name["diurnal"]["autocorr"] > 0.5
    # Correlated bursts swing harder per step than the diurnal mix.
    assert (
        by_name["bursty-corr"]["burstiness"] > by_name["diurnal"]["burstiness"]
    )
    # The shared signal shows up as cross-VM correlation.
    assert by_name["bursty-corr"]["vm_correlation"] > by_name["flat"]["vm_correlation"]
    # Flat load has little to harvest.
    assert by_name["flat"]["peak_to_mean"] < by_name["diurnal"]["peak_to_mean"]
