"""A6 — extension: cluster power capping (peak shaving).

Power-managed clusters get a second benefit for free: because the manager
already controls which hosts are powered, a branch-circuit power budget
can be enforced by deferring wakes that would exceed it.  This bench
sweeps the cap and shows the peak-power / performance trade.
"""

from benchmarks.conftest import EVAL_HOSTS, eval_fleet_spec
from repro.analysis import render_table
from repro.core import run_scenario, s3_policy
from repro.prototype import PROTOTYPE_BLADE

HORIZON = 48 * 3600.0
#: Cap levels as fractions of cluster nameplate power (None = uncapped).
CAP_FRACTIONS = [None, 0.8, 0.6, 0.45]


#: The run starts from a fully-active spread cluster, so the first hours
#: are a consolidation transient; the cap experiment measures the managed
#: steady state after this warm-up.
WARMUP_S = 4 * 3600.0


def steady_state_peak_w(run) -> float:
    series = run.sampler.series["power_w"]
    return max(
        value
        for t, value in zip(series.times, series.values)
        if t >= WARMUP_S
    )


def compute_a6():
    nameplate = EVAL_HOSTS * PROTOTYPE_BLADE.peak_w
    spec = eval_fleet_spec(horizon_s=HORIZON)
    rows = []
    for fraction in CAP_FRACTIONS:
        cap = nameplate * fraction if fraction else None
        cfg = s3_policy().with_overrides(
            name="S3 cap={}".format(fraction or "off"), power_cap_w=cap
        )
        run = run_scenario(
            cfg, n_hosts=EVAL_HOSTS, horizon_s=HORIZON, seed=41, fleet_spec=spec
        )
        rows.append(
            {
                "cap_fraction": fraction if fraction else 1.0,
                "cap_w": cap,
                "peak_power_w": steady_state_peak_w(run),
                "energy_kwh": run.report.energy_kwh,
                "violation_frac": run.report.violation_fraction,
                "cap_deferrals": run.report.extra["cap_deferrals"],
            }
        )
    return rows


def test_a6_power_cap(once):
    rows = once(compute_a6)
    print()
    print(
        render_table(
            ["cap_frac", "cap_w", "peak_w", "energy_kwh", "undelivered",
             "deferred_wakes"],
            [
                [r["cap_fraction"], r["cap_w"] or "-", r["peak_power_w"],
                 r["energy_kwh"], r["violation_frac"], r["cap_deferrals"]]
                for r in rows
            ],
            title="A6: power-cap sweep (S3-PM, steady-state peaks)",
        )
    )
    uncapped = rows[0]
    tightest = rows[-1]
    # Tightening the cap lowers the steady-state peak power...
    peaks = [r["peak_power_w"] for r in rows]
    assert peaks == sorted(peaks, reverse=True)
    assert tightest["peak_power_w"] < uncapped["peak_power_w"]
    # ...and the binding cap is actually respected in steady state (with
    # a one-host margin for in-flight transitions at the check instant).
    assert tightest["peak_power_w"] <= tightest["cap_w"] + PROTOTYPE_BLADE.peak_w
    # The uncapped run never defers a wake (wake deferral is one of the
    # cap's two mechanisms; the other — capacity clamping in the
    # consolidation loop — often satisfies the budget on its own).
    assert uncapped["cap_deferrals"] == 0
    # The performance cost of capping stays bounded.
    assert tightest["violation_frac"] < 0.2
