"""T2 — simulated cluster and host configuration table.

Paper: the testbed/simulation configuration summary.  Regenerated from
the defaults every other bench uses, so the table always matches what
actually ran.
"""

from benchmarks.conftest import EVAL_HORIZON_S, EVAL_HOSTS, EVAL_VMS, eval_fleet_spec
from repro.analysis import render_table
from repro.core import ManagerConfig
from repro.migration import PreCopyModel
from repro.prototype import PROTOTYPE_BLADE


def compute_t2():
    spec = eval_fleet_spec()
    cfg = ManagerConfig()
    model = PreCopyModel()
    return [
        ["hosts", EVAL_HOSTS],
        ["host cores", 16],
        ["host memory (GB)", 128],
        ["host idle / peak (W)", "{:.0f} / {:.0f}".format(
            PROTOTYPE_BLADE.idle_w, PROTOTYPE_BLADE.peak_w)],
        ["VMs", EVAL_VMS],
        ["VM vCPU choices", "1/2/4/8"],
        ["memory per vCPU (GB)", spec.mem_gb_per_vcpu],
        ["workload mix", "diurnal/bursty/flat/spiky"],
        ["shared demand fraction", spec.shared_fraction],
        ["horizon (h)", EVAL_HORIZON_S / 3600.0],
        ["telemetry epoch (s)", 60],
        ["manager period (s)", cfg.period_s],
        ["watchdog period (s)", cfg.watchdog_period_s],
        ["migration bandwidth (GB/s)", model.bandwidth_gbps],
        ["migration CPU tax (cores)", model.cpu_tax_cores],
    ]


def test_t2_cluster_config(once):
    rows = once(compute_t2)
    print()
    print(render_table(["parameter", "value"], rows, title="T2: configuration"))
    assert len(rows) >= 12
    assert all(len(r) == 2 for r in rows)
