"""Cluster-level energy-proportionality metrics (F10)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.telemetry.sampler import ClusterSampler


def proportionality_curve(
    sampler: ClusterSampler,
    total_cores: float,
    peak_cluster_w: float,
    bins: int = 10,
) -> List[Tuple[float, float]]:
    """Binned (load fraction, normalized power) curve from a finished run.

    Pairs each demand sample with the simultaneous power sample, buckets
    by cluster load fraction, and returns the mean normalized power per
    bucket.  A perfectly proportional cluster lies on y = x; AlwaysOn is a
    horizontal line near its idle fraction.
    """
    if total_cores <= 0 or peak_cluster_w <= 0:
        raise ValueError("total_cores and peak_cluster_w must be positive")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    demand = sampler.series["demand_cores"].values
    power = sampler.series["power_w"].values
    if len(demand) != len(power) or len(demand) == 0:
        raise ValueError("sampler series empty or misaligned")
    load = np.clip(demand / total_cores, 0.0, 1.0)
    norm_power = power / peak_cluster_w
    edges = np.linspace(0.0, 1.0, bins + 1)
    curve = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (load >= lo) & (load < hi if hi < 1.0 else load <= hi)
        if not mask.any():
            continue
        curve.append((float((lo + hi) / 2.0), float(norm_power[mask].mean())))
    return curve


def proportionality_gap(
    sampler: ClusterSampler,
    total_cores: float,
    peak_cluster_w: float,
) -> float:
    """Mean |normalized power − load fraction| over the run (0 = ideal).

    The scalar version of F10: how far the managed cluster sits from the
    energy-proportional line, on average.
    """
    if total_cores <= 0 or peak_cluster_w <= 0:
        raise ValueError("total_cores and peak_cluster_w must be positive")
    demand = sampler.series["demand_cores"].values
    power = sampler.series["power_w"].values
    if len(demand) == 0:
        raise ValueError("empty sampler series")
    load = np.clip(demand / total_cores, 0.0, 1.0)
    norm_power = power / peak_cluster_w
    return float(np.mean(np.abs(norm_power - load)))
