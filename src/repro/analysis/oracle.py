"""Analytic lower bounds ("oracle" policies) computed from demand series.

Neither bound is achievable by a real controller — they ignore wake
latency, transition energy, migration cost and prediction error — but
they anchor the F5/F10 comparisons the way the paper's "energy
proportional" reference line does.
"""

from __future__ import annotations

import math

from repro.power.profiles import ServerPowerProfile
from repro.telemetry.timeseries import TimeSeries


def ideal_proportional_kwh(
    demand: TimeSeries,
    profile: ServerPowerProfile,
    host_cores: float,
) -> float:
    """Energy of a perfectly proportional cluster.

    Power at any instant is ``peak_w × (demand / host_cores)`` — i.e. the
    cluster behaves like one giant machine whose draw scales linearly
    from zero with delivered work.
    """
    if host_cores <= 0:
        raise ValueError("host_cores must be positive")
    if len(demand) < 2:
        raise ValueError("demand series too short to integrate")
    joules = 0.0
    points = demand.points()
    for (t0, d0), (t1, _) in zip(points, points[1:]):
        power = profile.peak_w * (d0 / host_cores)
        joules += power * (t1 - t0)
    return joules / 3.6e6


def perfect_consolidation_kwh(
    demand: TimeSeries,
    profile: ServerPowerProfile,
    host_cores: float,
    cpu_target: float = 0.85,
    parked_power_w: float = 0.0,
    n_hosts: int = 0,
) -> float:
    """Energy of an omniscient consolidator with free, instant parking.

    At every instant exactly ``ceil(demand / (host_cores × cpu_target))``
    hosts are active, sharing load evenly; the rest draw
    ``parked_power_w`` (pass the profile's sleep power for a realistic
    floor, 0 for the absolute bound).  ``n_hosts`` is required when
    ``parked_power_w`` > 0.
    """
    if host_cores <= 0:
        raise ValueError("host_cores must be positive")
    if not 0.0 < cpu_target <= 1.0:
        raise ValueError("cpu_target must be in (0, 1]")
    if parked_power_w > 0 and n_hosts <= 0:
        raise ValueError("n_hosts required when parked_power_w > 0")
    if len(demand) < 2:
        raise ValueError("demand series too short to integrate")
    joules = 0.0
    points = demand.points()
    for (t0, d0), (t1, _) in zip(points, points[1:]):
        active = max(1, int(math.ceil(d0 / (host_cores * cpu_target)))) if d0 > 0 else 0
        if active:
            per_host_util = min(d0 / (active * host_cores), 1.0)
            power = active * profile.active_model.power_at(per_host_util)
        else:
            power = 0.0
        if parked_power_w > 0:
            power += (n_hosts - active) * parked_power_w
        joules += power * (t1 - t0)
    return joules / 3.6e6
