"""Analysis: oracle bounds, proportionality metrics, report formatting."""

from repro.analysis.oracle import (
    ideal_proportional_kwh,
    perfect_consolidation_kwh,
)
from repro.analysis.proportionality import (
    proportionality_curve,
    proportionality_gap,
)
from repro.analysis.cost import (
    CostSummary,
    FacilityModel,
    cost_summary,
    savings_summary,
)
from repro.analysis.format import render_series, render_table
from repro.analysis.latency import (
    RecoveryStats,
    ShortfallEpisode,
    extract_episodes,
    recovery_stats,
)

__all__ = [
    "CostSummary",
    "FacilityModel",
    "RecoveryStats",
    "ShortfallEpisode",
    "cost_summary",
    "extract_episodes",
    "ideal_proportional_kwh",
    "recovery_stats",
    "savings_summary",
    "perfect_consolidation_kwh",
    "proportionality_curve",
    "proportionality_gap",
    "render_series",
    "render_table",
]
