"""Burst-recovery analysis: how fast does the cluster absorb demand steps?

Complements the aggregate violation metrics with an *event-level* view:
each episode of undelivered demand is extracted from the shortfall series
and characterized by duration and magnitude.  With seconds-scale wake
latency, recovery episodes should last about one detection interval plus
one resume; with boot-scale latency they stretch to minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.telemetry.sampler import ClusterSampler
from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True)
class ShortfallEpisode:
    """One contiguous run of undelivered demand."""

    start_s: float
    duration_s: float
    peak_cores: float
    deficit_core_s: float


def extract_episodes(
    shortfall: TimeSeries,
    threshold_cores: float = 1e-9,
) -> List[ShortfallEpisode]:
    """Split a sampled shortfall series into contiguous episodes.

    Samples are sample-and-hold; consecutive samples above ``threshold``
    belong to the same episode.  An episode's duration spans from its
    first above-threshold sample to the next below-threshold sample.
    """
    times = shortfall.times
    values = shortfall.values
    if len(times) == 0:
        return []
    episodes: List[ShortfallEpisode] = []
    start = None
    peak = 0.0
    deficit = 0.0
    for i, (t, v) in enumerate(zip(times, values)):
        width = (times[i + 1] - t) if i + 1 < len(times) else 0.0
        if v > threshold_cores:
            if start is None:
                start = t
                peak = 0.0
                deficit = 0.0
            peak = max(peak, float(v))
            deficit += float(v) * width
        elif start is not None:
            episodes.append(
                ShortfallEpisode(
                    start_s=float(start),
                    duration_s=float(t - start),
                    peak_cores=peak,
                    deficit_core_s=deficit,
                )
            )
            start = None
    if start is not None:
        episodes.append(
            ShortfallEpisode(
                start_s=float(start),
                duration_s=float(times[-1] - start),
                peak_cores=peak,
                deficit_core_s=deficit,
            )
        )
    return episodes


@dataclass(frozen=True)
class RecoveryStats:
    """Distribution summary of shortfall episodes for one run."""

    episodes: int
    mean_duration_s: float
    p95_duration_s: float
    max_duration_s: float
    total_deficit_core_s: float

    @staticmethod
    def empty() -> "RecoveryStats":
        return RecoveryStats(0, 0.0, 0.0, 0.0, 0.0)


def recovery_stats(
    sampler: ClusterSampler,
    threshold_cores: float = 1e-9,
) -> RecoveryStats:
    """Episode statistics from a finished run's sampler."""
    episodes = extract_episodes(sampler.series["shortfall_cores"], threshold_cores)
    if not episodes:
        return RecoveryStats.empty()
    durations = np.array([e.duration_s for e in episodes])
    return RecoveryStats(
        episodes=len(episodes),
        mean_duration_s=float(durations.mean()),
        p95_duration_s=float(np.percentile(durations, 95)),
        max_duration_s=float(durations.max()),
        total_deficit_core_s=float(sum(e.deficit_core_s for e in episodes)),
    )
