"""Plain-text rendering of tables and series for the bench harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    if not headers:
        raise ValueError("need at least one header")
    formatted_rows = [
        ["{:.4g}".format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    points: Sequence[Tuple[float, float]],
    name: str = "",
    width: int = 72,
) -> str:
    """One-line unicode sparkline of (x, y) points, plus min/max labels."""
    if not points:
        raise ValueError("need at least one point")
    ys = [y for _, y in points]
    lo, hi = min(ys), max(ys)
    if len(points) > width:
        stride = len(points) / width
        ys = [ys[int(i * stride)] for i in range(width)]
    span = hi - lo
    if span <= 0:
        bar = _BLOCKS[1] * len(ys)
    else:
        bar = "".join(
            _BLOCKS[1 + int((y - lo) / span * (len(_BLOCKS) - 2))] for y in ys
        )
    label = "{} [{:.4g} .. {:.4g}]".format(name, lo, hi) if name else ""
    return "{} {}".format(bar, label).rstrip()
