"""Facility-level cost conversion: IT energy → bill, capacity, carbon.

The paper motivates power management with datacenter economics; this
module turns a run's IT-side kWh into the numbers an operator budgets:
electricity cost (including facility overhead via PUE), provisioned-power
savings, and emissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import SimReport


@dataclass(frozen=True)
class FacilityModel:
    """Datacenter-level conversion factors.

    Attributes:
        pue: power-usage effectiveness (total facility power ÷ IT power);
            ~1.8 for 2013-era enterprise rooms, ~1.1 for modern hyperscale.
        usd_per_kwh: blended electricity price.
        kg_co2_per_kwh: grid carbon intensity.
    """

    pue: float = 1.8
    usd_per_kwh: float = 0.10
    kg_co2_per_kwh: float = 0.45

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("pue must be >= 1.0")
        if self.usd_per_kwh < 0 or self.kg_co2_per_kwh < 0:
            raise ValueError("prices/intensities must be non-negative")


@dataclass(frozen=True)
class CostSummary:
    """Facility-level view of one run."""

    it_kwh: float
    facility_kwh: float
    usd: float
    kg_co2: float
    mean_facility_kw: float

    def annualized_usd(self, horizon_s: float) -> float:
        """Extrapolate this run's cost to a full year."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self.usd * (365.0 * 86_400.0 / horizon_s)


def cost_summary(report: SimReport, facility: FacilityModel = FacilityModel()) -> CostSummary:
    """Convert a :class:`~repro.telemetry.SimReport` to facility costs."""
    facility_kwh = report.energy_kwh * facility.pue
    hours = report.horizon_s / 3600.0
    return CostSummary(
        it_kwh=report.energy_kwh,
        facility_kwh=facility_kwh,
        usd=facility_kwh * facility.usd_per_kwh,
        kg_co2=facility_kwh * facility.kg_co2_per_kwh,
        mean_facility_kw=facility_kwh / hours if hours > 0 else 0.0,
    )


def savings_summary(
    baseline: SimReport,
    managed: SimReport,
    facility: FacilityModel = FacilityModel(),
) -> dict:
    """Side-by-side facility economics of two runs (same horizon).

    Returns a dict with the absolute and annualized savings an operator
    would quote.
    """
    if abs(baseline.horizon_s - managed.horizon_s) > 1e-6:
        raise ValueError("runs must cover the same horizon")
    base = cost_summary(baseline, facility)
    new = cost_summary(managed, facility)
    saved = base.usd - new.usd
    return {
        "baseline_usd": base.usd,
        "managed_usd": new.usd,
        "saved_usd": saved,
        "saved_fraction": saved / base.usd if base.usd > 0 else 0.0,
        "saved_usd_per_year": saved * (365.0 * 86_400.0 / baseline.horizon_s),
        "saved_kg_co2": base.kg_co2 - new.kg_co2,
    }
