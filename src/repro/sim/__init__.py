"""Discrete-event simulation kernel.

A small, dependency-free, simpy-style kernel: generator-based processes
scheduled on a deterministic event heap.  The rest of the reproduction —
power-state machines, migrations, management controllers — is written as
processes on top of this package.

Typical usage::

    from repro.sim import Environment

    def clock(env, period):
        while True:
            yield env.timeout(period)
            print("tick at", env.now)

    env = Environment()
    env.process(clock(env, 10.0))
    env.run(until=100.0)
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    SharedTimeout,
    Timeout,
)
from repro.sim.process import Process, ProcessCrashed, ResumeSpec
from repro.sim.environment import Environment, StopSimulation
from repro.sim.resources import Container, PriorityResource, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "PriorityResource",
    "Process",
    "ProcessCrashed",
    "Request",
    "Resource",
    "ResumeSpec",
    "SharedTimeout",
    "StopSimulation",
    "Store",
    "Timeout",
]
