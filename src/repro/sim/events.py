"""Event primitives for the simulation kernel.

Events follow a three-stage life cycle:

1. *untriggered* — freshly created, not yet scheduled;
2. *triggered* — given a value (or an exception) and placed on the
   environment's event heap;
3. *processed* — popped off the heap; its callbacks have run.

``Event.succeed`` and ``Event.fail`` move an event from stage 1 to stage 2.
The environment's ``step`` moves it from 2 to 3.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

#: Sentinel stored in ``Event._value`` while the event is untriggered.
_PENDING = object()

#: Default scheduling priority.  Lower sorts earlier at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class EventAlreadyTriggered(RuntimeError):
    """Raised when succeed/fail is called on an already-triggered event."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    arbitrary context supplied by the interrupter.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return "Interrupt({!r})".format(self.cause)


class Event:
    """A one-shot occurrence in simulated time.

    Processes wait on events by ``yield``-ing them; arbitrary callbacks may
    also be attached via :attr:`callbacks` before the event is processed.
    """

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set when a failure was handed to a waiting process (or otherwise
        #: consumed), so the environment does not re-raise it at step time.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and sits on (or left) the heap."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered("{!r} already triggered".format(self))
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event re-raises ``exception`` inside every process waiting
        on it.  If nothing waits, the environment raises it at step time
        (unless :attr:`defused` is set).
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise EventAlreadyTriggered("{!r} already triggered".format(self))
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if self.triggered:
            raise EventAlreadyTriggered("{!r} already triggered".format(self))
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``at`` (used by :meth:`Environment.timeout_at`) schedules the event at
    that exact absolute instant instead of ``now + delay``, avoiding the
    float round-trip that would shift a checkpoint-restored wait by one
    ulp; ``delay`` is then only informational.
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        delay: float,
        value: Any = None,
        at: Optional[float] = None,
    ) -> None:
        if at is None and delay < 0:
            raise ValueError("negative delay {!r}".format(delay))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        if at is None:
            env.schedule(self, delay=delay)
        else:
            env.schedule_at(self, at)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return "<Timeout delay={} at {:#x}>".format(self._delay, id(self))


class SharedTimeout(Event):
    """A coalescable timeout: one heap entry shared by every waiter.

    Obtained via :meth:`Environment.shared_timeout`.  All processes whose
    delays land on the same simulated instant share a single scheduled
    event, so N periodic loops ticking together cost one heap push/pop
    instead of N.  Waiters resume in the order they asked for the instant —
    exactly the order N separate timeouts would have popped in, since both
    follow creation order at equal (time, priority).

    Shared timeouts carry no value (every waiter receives ``None``).
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        delay: float,
        at: Optional[float] = None,
    ) -> None:
        if at is None and delay < 0:
            raise ValueError("negative delay {!r}".format(delay))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = None
        if at is None:
            env.schedule(self, delay=delay)
        else:
            env.schedule_at(self, at)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return "<SharedTimeout delay={} waiters={} at {:#x}>".format(
            self._delay,
            len(self.callbacks) if self.callbacks is not None else 0,
            id(self),
        )


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:  # noqa: F821
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=PRIORITY_URGENT)


class Condition(Event):
    """Waits for a combination of events (``&`` / ``|`` composition).

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events

    def _collect_values(self) -> dict:
        # Only events that actually fired (processed) contribute a value;
        # Timeout events carry their value from construction, so a bare
        # `triggered` check would leak pending timeouts into the result.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # Propagate the first failure.
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    def __repr__(self) -> str:
        return "<Condition {} of {} events at {:#x}>".format(
            self._evaluate.__name__, len(self._events), id(self)
        )


class AllOf(Condition):
    """Condition that fires once *all* constituent events fire."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* constituent event fires."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.any_events, events)
