"""Generator-based simulation processes."""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Generator, Optional, Tuple

from repro.sim.events import Event, Initialize, Interrupt, PRIORITY_URGENT, _PENDING


class ProcessCrashed(RuntimeError):
    """Wraps an exception that escaped a process with no waiter to absorb it."""


class ResumeSpec:
    """How to re-create a long-lived process after checkpoint restore.

    Generators cannot be pickled, so a checkpoint never captures a
    process's frame.  Instead, every *resumable* process declares — at
    spawn time — the picklable recipe for rebuilding an equivalent
    generator positioned at its wait point: call
    ``getattr(owner, method)(*args, resume_at=<original fire instant>)``.
    The factory's first yield must wait until ``resume_at`` (via
    ``Environment.timeout_at`` / ``shared_timeout_at``) and then continue
    the loop body exactly where the original would have.

    ``bind``, when set, names an attribute on ``owner`` that should point
    at the (re)created process object (e.g. the sampler's ``_process``).

    Live processes *without* a spec veto checkpoints — transient activity
    (migrations, power transitions, evacuations) simply delays the
    snapshot until it drains, rather than being silently dropped.
    """

    __slots__ = ("owner", "method", "args", "bind")

    def __init__(
        self,
        owner: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        bind: Optional[str] = None,
    ) -> None:
        self.owner = owner
        self.method = method
        self.args = tuple(args)
        self.bind = bind

    def make_generator(self, resume_at: float) -> Generator:
        """Build the continuation generator waiting until ``resume_at``."""
        return getattr(self.owner, self.method)(*self.args, resume_at=resume_at)

    def __repr__(self) -> str:
        return "<ResumeSpec {}.{}>".format(type(self.owner).__name__, self.method)


class Process(Event):
    """A running simulation activity.

    A process wraps a generator that yields :class:`~repro.sim.Event`
    instances.  Each yielded event suspends the process until the event
    fires; its value is sent back into the generator (failures are thrown).
    The process itself is an event that triggers when the generator returns,
    so processes can wait for each other::

        def parent(env):
            child_proc = env.process(child(env))
            result = yield child_proc
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:  # noqa: F821
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                "Process requires a generator, got {!r}".format(generator)
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        #: Optional :class:`ResumeSpec` marking this process checkpoint-
        #: resumable (set via ``Environment.process(..., ckpt=...)``).
        self.ckpt: Optional[ResumeSpec] = None
        env._live.add(self)
        Initialize(env, self)

    @property
    def name(self) -> str:
        if self._generator is None:  # checkpoint-restored husk
            return "<restored>"
        return self._generator.__name__

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is about to be resumed is safe — the interrupt is delivered
        first (urgent priority).
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt finished process {!r}".format(self))
        if self._generator is getattr(self.env, "_active_generator", None):
            raise RuntimeError("a process cannot interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.env._active_process = self
        self.env._active_generator = self._generator

        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target may fire later and must not resume us again).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        # Crash capture, not swallowing: the exception becomes this
        # process-event's failure value and is re-raised in every waiter
        # (or by Environment.step if nobody absorbs it).
        except BaseException as exc:  # reprolint: disable=RL006
            self._finish_fail(exc)
            return
        finally:
            self.env._active_process = None
            self.env._active_generator = None

        self._wait_on(next_event)

    def _wait_on(self, event: Any) -> None:
        if not isinstance(event, Event):
            exc = TypeError(
                "process {!r} yielded a non-event: {!r}".format(self.name, event)
            )
            # Deliver the error to the offending process on the next step.
            error_event = Event(self.env)
            error_event._ok = False
            error_event._value = exc
            error_event.defused = True
            error_event.callbacks.append(self._resume)
            self.env.schedule(error_event, priority=PRIORITY_URGENT)
            return
        if event.env is not self.env:
            raise ValueError("yielded event belongs to a different environment")
        if event.processed:
            # Already done: resume immediately on the next step.
            proxy = Event(self.env)
            proxy._ok = event._ok
            proxy._value = event._value
            if not event._ok:
                proxy.defused = True
            proxy.callbacks.append(self._resume)
            self.env.schedule(proxy, priority=PRIORITY_URGENT)
        else:
            event.callbacks.append(self._resume)
        self._target = event

    def _finish_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.env._live.discard(self)
        self.env.schedule(self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._value = exc
        self.env._live.discard(self)
        self.env.schedule(self)

    def __getstate__(self) -> dict:
        """Pickle a process *husk*: everything but the generator frame.

        Finished processes referenced from run state (e.g. the sampler's
        ``_process`` handle) round-trip through checkpoints this way; live
        resumable processes are not pickled at all — restore re-creates
        them from their :class:`ResumeSpec`.
        """
        state = self.__dict__.copy()
        state["_generator"] = None
        state["_target"] = None
        return state

    def __repr__(self) -> str:
        return "<Process {} {} at {:#x}>".format(
            self.name,
            "alive" if self.is_alive else "finished",
            id(self),
        )
