"""The simulation environment: clock, event heap, run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    SharedTimeout,
    Timeout,
)
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Owns simulated time and executes events in timestamp order.

    Ties are broken by scheduling priority, then by insertion order, which
    makes runs fully deterministic for a fixed program and seed.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._active_generator = None
        #: Number of events popped and executed by :meth:`step` so far
        #: (the benchmark layer's "events" — scheduled events that never
        #: fire before the horizon are not counted).
        self.events_processed = 0
        #: Pending coalesced timeouts keyed by absolute fire time (see
        #: :meth:`shared_timeout`); entries are purged as they fire.
        self._shared_timeouts: dict = {}
        #: Every process whose generator has not finished.  The checkpoint
        #: layer walks this to prove quiescence: a live process the event
        #: heap cannot account for vetoes the snapshot instead of being
        #: silently dropped.
        self._live: set = set()

    @property
    def now(self) -> float:
        """Current simulated time (seconds, by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event that fires at the *absolute* instant ``when``.

        ``timeout(when - now)`` is not the same thing: the addition
        ``now + (when - now)`` is not exact in IEEE-754, so a relative
        re-arm can land one ulp off the original instant and flip event
        order.  Checkpoint resume re-arms every pending wait through this
        method so the restored heap fires at byte-identical timestamps.
        """
        return Timeout(self, when - self._now, value, at=when)

    def shared_timeout(self, delay: float) -> Event:
        """A timeout that coalesces with others firing at the same instant.

        Periodic loops (sampler ticks, watchdogs, backoff timers) that
        wake at the same simulated time share one scheduled event instead
        of pushing one heap entry each — at fleet scale this cuts heap
        churn on every tick.  Waiters resume in request order, which
        matches the pop order of the separate timeouts they replace.
        Shared timeouts always carry ``None``; use :meth:`timeout` when a
        value (or a unique event identity) is needed.
        """
        when = self._now + delay
        event = self._shared_timeouts.get(when)
        if event is not None and not event.processed:
            return event
        event = SharedTimeout(self, delay)
        self._shared_timeouts[when] = event
        event.callbacks.append(self._purge_shared)
        return event

    def shared_timeout_at(self, when: float) -> Event:
        """Absolute-instant variant of :meth:`shared_timeout`.

        Coalesces through the same registry, so waiters re-armed from a
        checkpoint share one heap entry exactly as the original run did
        (and in the same callback order, because restore re-creates them
        in the original request order).
        """
        event = self._shared_timeouts.get(when)
        if event is not None and not event.processed:
            return event
        event = SharedTimeout(self, when - self._now, at=when)
        self._shared_timeouts[when] = event
        event.callbacks.append(self._purge_shared)
        return event

    def _purge_shared(self, event: Event) -> None:
        """Drop a fired shared timeout from the coalescing registry."""
        self._shared_timeouts.pop(self._now, None)

    def process(self, generator: Generator, ckpt: Any = None) -> Process:
        """Start a new process from ``generator``.

        ``ckpt`` optionally attaches a :class:`~repro.sim.process.ResumeSpec`
        declaring how to re-create this process's generator when the run is
        restored from a checkpoint; processes without one veto snapshots
        while alive (transient activity simply delays the checkpoint).
        """
        proc = Process(self, generator)
        if ckpt is not None:
            proc.ckpt = ckpt
            if ckpt.bind is not None:
                setattr(ckpt.owner, ckpt.bind, proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling & execution
    # ------------------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a (triggered) event onto the heap ``delay`` from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay={})".format(delay))
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_at(
        self,
        event: Event,
        when: float,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a (triggered) event onto the heap at the exact instant
        ``when`` — no ``now + delay`` float round-trip (see
        :meth:`timeout_at`)."""
        if when < self._now:
            raise ValueError(
                "cannot schedule into the past (when={}, now={})".format(
                    when, self._now
                )
            )
        self._eid += 1
        heapq.heappush(self._queue, (when, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        if when < self._now:
            raise AssertionError("event heap yielded a past timestamp")
        self._now = when
        self.events_processed += 1

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # A failure nobody consumed: surface it to the driver.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Execute events until ``until``.

        ``until`` may be:

        * ``None`` — run until the heap drains;
        * a number — run until that simulated time (clock lands exactly
          there even if no event is scheduled at it);
        * an :class:`Event` — run until it fires, returning its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(
                    "until={} is in the past (now={})".format(at, self._now)
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            # Exact-instant scheduling: a resumed run re-creates this stop
            # event from a nonzero ``now``, where ``now + (at - now)`` can
            # land one ulp past ``at`` and let a horizon-instant event slip
            # in before the stop — breaking byte-identical resume.
            self.schedule_at(stop_event, at, priority=-1)
            stop_event.callbacks.append(self._stop_callback)

        try:
            while self._queue:
                self.step()
        except StopSimulation:
            if isinstance(until, Event):
                if not until.ok:
                    raise until.value
                return until.value
            return None
        except EmptySchedule:
            pass

        if isinstance(until, Event):
            raise RuntimeError(
                "simulation ran out of events before {!r} fired".format(until)
            )
        if stop_event is not None and not stop_event.processed:
            # Numeric `until` beyond the last event: advance the clock.
            self._now = max(self._now, float(until))
        return None

    def _stop_callback(self, event: Event) -> None:
        raise StopSimulation()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the clock and counters, never the event heap.

        Pending events wrap live generators (unpicklable in CPython); the
        checkpoint layer captures them separately as resume records and
        re-arms fresh events at restore (see :mod:`repro.core.checkpoint`).
        The returned dict is a copy — pickling a running environment does
        not disturb it.
        """
        state = self.__dict__.copy()
        state["_queue"] = []
        state["_shared_timeouts"] = {}
        state["_active_process"] = None
        state["_active_generator"] = None
        state["_live"] = set()
        return state

    def __repr__(self) -> str:
        return "<Environment now={} queued={}>".format(self._now, len(self._queue))
