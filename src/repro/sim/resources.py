"""Shared-resource primitives: semaphore-style resources, containers, stores.

Used by the datacenter model e.g. to cap concurrent live migrations per host
and to model shared migration-network bandwidth.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

from repro.sim.events import Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` slots; :meth:`request` returns an event that fires when a
    slot is granted; :meth:`release` frees a slot and wakes the next waiter.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(capacity))
        self.env = env
        self._capacity = capacity
        self._users: List[Request] = []
        self._queue: List[Tuple[int, int, Request]] = []
        self._tie = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of granted (in-use) slots."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Free the slot held by ``request`` (idempotent for unknown reqs)."""
        try:
            self._users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        self._grant_next()

    def _enqueue(self, request: Request) -> None:
        self._tie += 1
        heapq.heappush(self._queue, (request.priority, self._tie, request))
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            _, _, nxt = heapq.heappop(self._queue)
            if nxt.triggered:
                continue
            self._users.append(nxt)
            nxt.succeed(self)

    def __repr__(self) -> str:
        return "<{} {}/{} used, {} queued>".format(
            type(self).__name__, self.count, self._capacity, self.queued
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-first."""

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)


class Container:
    """A continuous-level reservoir (e.g. bandwidth-seconds, joules).

    ``put`` and ``get`` return events that fire once the amount can be
    honoured.  Gets are served FIFO to avoid starvation.
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._getters: List[Tuple[float, Event]] = []
        self._putters: List[Tuple[float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self._capacity:
            raise ValueError("get() amount exceeds container capacity")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed()
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of arbitrary items with blocking get."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[Tuple[Any, Event]] = []

    @property
    def items(self) -> List[Any]:
        return list(self._items)

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self._items) < self._capacity:
                item, event = self._putters.pop(0)
                self._items.append(item)
                event.succeed()
                progressed = True
            if self._getters and self._items:
                event = self._getters.pop(0)
                event.succeed(self._items.pop(0))
                progressed = True
