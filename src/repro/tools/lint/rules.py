"""The reprolint rule set: domain invariants of this reproduction.

Every rule protects a property the simulation's headline numbers depend
on — bit-determinism under a seed (RL001/RL002), dimensional sanity of
the watt/joule/second/GB arithmetic (RL003/RL004), artifacts that
survive the process-pool and disk-cache boundaries introduced in
PR 1 (RL008), the traced power-transition discipline the
decision-trace validator replays (RL009), and the O(changed-hosts)
decision hot paths the fleet-scale kernel relies on (RL011) and the
allocation hygiene of every ``# reprolint: hot``-registered function
(RL015) — plus three general correctness rules that have bitten
simulation codebases before (RL005/RL006/RL007).  The *project-wide*
rules (RL012–RL014: RNG stream provenance, trace/validator coverage,
memo-invalidation completeness) live in
:mod:`repro.tools.lint.project_rules` and run in pass 2 over the
assembled :class:`~repro.tools.lint.project.ProjectContext`.

Adding a rule: subclass :class:`~repro.tools.lint.engine.Rule`, set
``rule_id``/``title``/``rationale``, implement ``check`` (usually ~30
lines of AST walking over ``module.tree``), and append the class to
:data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.tools.lint.engine import Finding, ModuleContext, Rule
from repro.tools.lint.units import UnitInferencer, describe

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> canonical dotted path, for every import in the module.

    ``import numpy as np``            -> ``np: numpy``
    ``from numpy import random``      -> ``random: numpy.random``
    ``from time import time as now``  -> ``now: time.time``
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = "{}.{}".format(node.module, alias.name)
    return aliases


def resolve_dotted(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain, or None.

    ``np.random.shuffle`` resolves to ``numpy.random.shuffle`` given
    ``import numpy as np``.  Chains whose base is not an imported alias
    (e.g. ``self.rng.random``) resolve to None — they are method calls on
    objects, not module-level access.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _expr_roots(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expression trees directly owned by one statement.

    Nested statements (bodies of ``if``/``for``/``with``/``def`` …) are
    *not* included — scope walking handles those explicitly.
    """
    for _field, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, ast.expr):
                yield item


def iter_scoped_exprs(
    body: Sequence[ast.stmt],
) -> Iterator[Tuple[ast.expr, UnitInferencer]]:
    """Yield every expression node with the unit table live at that point.

    Each function/class body opens a fresh :class:`UnitInferencer`;
    straight-line assignments update it in statement order, so
    ``total = a_w + b_w; total + c_j`` resolves ``total`` to watts.
    """

    def walk_body(
        stmts: Sequence[ast.stmt], inferencer: UnitInferencer
    ) -> Iterator[Tuple[ast.expr, UnitInferencer]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from walk_body(stmt.body, UnitInferencer())
                continue
            for root in _expr_roots(stmt):
                for node in ast.walk(root):
                    if isinstance(node, ast.expr):
                        yield node, inferencer
            inferencer.learn_assign(stmt)
            for _field, value in ast.iter_fields(stmt):
                if not isinstance(value, list) or not value:
                    continue
                if isinstance(value[0], ast.stmt):
                    yield from walk_body(value, inferencer)
                elif isinstance(value[0], ast.ExceptHandler):
                    for handler in value:
                        yield from walk_body(handler.body, inferencer)

    yield from walk_body(body, UnitInferencer())


# ----------------------------------------------------------------------
# RL001 — unseeded / global-state RNG
# ----------------------------------------------------------------------

#: numpy.random attributes that construct *seeded* generators.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class UnseededRandomRule(Rule):
    rule_id = "RL001"
    title = "no unseeded or global-state RNG"
    rationale = (
        "all randomness must flow from numpy default_rng(seed) so serial, "
        "parallel and cached runs are bit-identical"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                attr = dotted.split(".", 2)[2]
                if attr.split(".")[0] not in _NP_RANDOM_ALLOWED:
                    yield module.finding(
                        self.rule_id,
                        node,
                        "call to the global numpy RNG `{}`; use a seeded "
                        "`np.random.default_rng(seed)` generator instead".format(
                            dotted
                        ),
                    )
            elif dotted == "random.Random":
                if not node.args:
                    yield module.finding(
                        self.rule_id,
                        node,
                        "`random.Random()` with no seed is OS-entropy seeded; "
                        "pass an explicit seed",
                    )
            elif dotted == "random.SystemRandom" or dotted.startswith(
                "random.SystemRandom."
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    "`random.SystemRandom` draws from os.urandom and can "
                    "never be made deterministic",
                )
            elif dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if attr[:1].islower():
                    yield module.finding(
                        self.rule_id,
                        node,
                        "call to the global stdlib RNG `{}`; thread a seeded "
                        "`np.random.default_rng(seed)` generator through "
                        "instead".format(dotted),
                    )


# ----------------------------------------------------------------------
# RL002 — wall-clock / environment nondeterminism in simulation packages
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "host-clock read",
    "time.monotonic_ns": "host-clock read",
    "time.perf_counter": "host-clock read",
    "time.perf_counter_ns": "host-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS-entropy id",
}


class WallClockRule(Rule):
    rule_id = "RL002"
    title = "no wall-clock or environment nondeterminism in simulation code"
    rationale = (
        "simulated time comes from the event loop; host clocks, OS entropy "
        "and unordered set iteration make runs diverge across processes"
    )
    scoped_packages: Tuple[str, ...] = (
        "sim",
        "core",
        "datacenter",
        "power",
        "placement",
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, imports)
                if dotted in _WALL_CLOCK_CALLS:
                    yield module.finding(
                        self.rule_id,
                        node,
                        "`{}` is a {}; simulation code must derive all values "
                        "from simulated time and seeded RNGs".format(
                            dotted, _WALL_CLOCK_CALLS[dotted]
                        ),
                    )
                elif dotted is not None and dotted.startswith("secrets."):
                    yield module.finding(
                        self.rule_id,
                        node,
                        "`{}` draws OS entropy; simulation code must be "
                        "deterministic under a seed".format(dotted),
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_unordered(node.iter):
                    yield module.finding(
                        self.rule_id,
                        node.iter,
                        "iterating a set here makes ordering "
                        "interpreter-dependent and can reorder placement or "
                        "sampling decisions; wrap it in `sorted(...)`",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if self._is_unordered(gen.iter):
                        yield module.finding(
                            self.rule_id,
                            gen.iter,
                            "comprehension iterates a set; ordering is "
                            "interpreter-dependent — wrap it in `sorted(...)`",
                        )

    @staticmethod
    def _is_unordered(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False


# ----------------------------------------------------------------------
# RL003 — units discipline (no unconverted mixing of unit suffixes)
# ----------------------------------------------------------------------


class UnitMixRule(Rule):
    rule_id = "RL003"
    title = "no arithmetic mixing conflicting unit suffixes"
    rationale = (
        "adding watts to joules (or seconds to hours) is always a bug; "
        "convert explicitly so the energy accounting stays dimensionally sane"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, inferencer in iter_scoped_exprs(module.tree.body):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = inferencer.infer(node.left)
                right = inferencer.infer(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield module.finding(
                        self.rule_id,
                        node,
                        "`{}` mixes {} and {} without an explicit "
                        "conversion".format(op, describe(left), describe(right)),
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for i, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                        continue
                    left = inferencer.infer(operands[i])
                    right = inferencer.infer(operands[i + 1])
                    if left is not None and right is not None and left != right:
                        yield module.finding(
                            self.rule_id,
                            node,
                            "comparison mixes {} and {} without an explicit "
                            "conversion".format(describe(left), describe(right)),
                        )


# ----------------------------------------------------------------------
# RL004 — float equality on unit-suffixed quantities
# ----------------------------------------------------------------------


class UnitEqualityRule(Rule):
    rule_id = "RL004"
    title = "no ==/!= on unit-suffixed (float) quantities"
    rationale = (
        "watt/joule/second values are floats accumulated over thousands of "
        "epochs; exact equality silently stops matching — compare with a "
        "tolerance or an ordering"
    )
    #: Tests legitimately assert bit-exact values (that is what the
    #: determinism suite *is*), so only library code is policed.
    skip_test_files = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, inferencer in iter_scoped_exprs(module.tree.body):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._is_none(left) or self._is_none(right):
                    continue
                left_unit = inferencer.infer(left)
                right_unit = inferencer.infer(right)
                unit = left_unit if left_unit is not None else right_unit
                if unit is None:
                    continue
                yield module.finding(
                    self.rule_id,
                    node,
                    "exact float {} on a {} quantity; use a tolerance "
                    "(abs(a - b) < eps) or an ordering comparison".format(
                        "==" if isinstance(op, ast.Eq) else "!=", describe(unit)
                    ),
                )

    @staticmethod
    def _is_none(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and node.value is None


# ----------------------------------------------------------------------
# RL005 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


class MutableDefaultRule(Rule):
    rule_id = "RL005"
    title = "no mutable default arguments"
    rationale = (
        "a mutable default is shared across every call; state leaks between "
        "scenarios and between cache entries"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CONSTRUCTORS
                ):
                    yield module.finding(
                        self.rule_id,
                        default,
                        "mutable default argument; use None and create the "
                        "container inside the function",
                    )


# ----------------------------------------------------------------------
# RL006 — bare / overbroad except
# ----------------------------------------------------------------------


class OverbroadExceptRule(Rule):
    rule_id = "RL006"
    title = "no bare or overbroad except clauses"
    rationale = (
        "`except:` and `except Exception:` swallow the determinism and "
        "accounting errors the other rules exist to surface; catch the "
        "specific exception or re-raise"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if node.type is not None and broad is None:
                continue
            if self._reraises(node):
                continue
            label = "bare `except:`" if node.type is None else (
                "`except {}:`".format(broad)
            )
            yield module.finding(
                self.rule_id,
                node,
                "{} without re-raising; catch the specific exception "
                "instead".format(label),
            )

    @staticmethod
    def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        names = [node] if not isinstance(node, ast.Tuple) else list(node.elts)
        for item in names:
            if isinstance(item, ast.Name) and item.id in ("Exception", "BaseException"):
                return item.id
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Raise):
                return True
        return False


# ----------------------------------------------------------------------
# RL007 — assert as runtime validation in library code
# ----------------------------------------------------------------------


class RuntimeAssertRule(Rule):
    rule_id = "RL007"
    title = "no `assert` for runtime validation in library code"
    rationale = (
        "`python -O` strips asserts, so a guard written as `assert` "
        "silently vanishes in optimized deployments; raise a real exception"
    )
    skip_test_files = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield module.finding(
                    self.rule_id,
                    node,
                    "`assert` is stripped under `python -O`; raise an "
                    "explicit exception (ValueError/RuntimeError) instead",
                )


# ----------------------------------------------------------------------
# RL008 — result dataclasses must have statically picklable fields
# ----------------------------------------------------------------------

#: Annotation identifiers that denote values pickle cannot serialize.
_UNPICKLABLE_TYPES = frozenset(
    {
        "Callable",
        "Generator",
        "Iterator",
        "AsyncGenerator",
        "AsyncIterator",
        "Coroutine",
        "IO",
        "TextIO",
        "BinaryIO",
        "TextIOWrapper",
        "BufferedReader",
        "BufferedWriter",
        "FileIO",
        "socket",
        "Thread",
        "Lock",
        "RLock",
        "Condition",
        "GeneratorType",
        "FunctionType",
        "LambdaType",
        "ModuleType",
        "FrameType",
        "TracebackType",
    }
)

#: Dataclasses named like results cross the process-pool / disk-cache
#: boundary (see repro.core.parallel) and must pickle.
_RESULT_NAME_SUFFIXES = ("Artifacts", "Snapshot", "Result", "Spec", "Report", "Record")


class UnpicklableFieldRule(Rule):
    rule_id = "RL008"
    title = "result dataclass fields must be statically picklable"
    rationale = (
        "ScenarioArtifacts-like dataclasses cross the ProcessPoolExecutor "
        "boundary and live in the disk cache; a lambda, generator or open "
        "handle field fails only at runtime, deep inside a worker"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_result_dataclass(node):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign):
                    yield from self._check_field(module, node.name, stmt)

    @staticmethod
    def _is_result_dataclass(node: ast.ClassDef) -> bool:
        if not node.name.endswith(_RESULT_NAME_SUFFIXES):
            return False
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name == "dataclass":
                return True
        return False

    def _check_field(
        self, module: ModuleContext, class_name: str, stmt: ast.AnnAssign
    ) -> Iterator[Finding]:
        field_name = stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
        for sub in ast.walk(stmt.annotation):
            ident = None
            if isinstance(sub, ast.Name):
                ident = sub.id
            elif isinstance(sub, ast.Attribute):
                ident = sub.attr
            if ident in _UNPICKLABLE_TYPES:
                yield module.finding(
                    self.rule_id,
                    stmt,
                    "field `{}.{}` is annotated with unpicklable type "
                    "`{}`; it cannot cross the process pool or live in the "
                    "result cache".format(class_name, field_name, ident),
                )
        if stmt.value is not None:
            for sub in self._default_value_nodes(stmt.value):
                if isinstance(sub, ast.Lambda):
                    yield module.finding(
                        self.rule_id,
                        stmt,
                        "field `{}.{}` defaults to a lambda, which pickle "
                        "cannot serialize".format(class_name, field_name),
                    )
                    break

    @staticmethod
    def _default_value_nodes(value: ast.expr) -> Iterator[ast.AST]:
        """Nodes that can end up as a field *value* on instances.

        A lambda passed as ``field(default_factory=...)`` is called at
        construction time and never stored, so that subtree is exempt;
        a lambda passed as ``field(default=...)`` or assigned directly
        *is* the stored value.
        """
        is_field_call = (
            isinstance(value, ast.Call)
            and isinstance(value.func, (ast.Name, ast.Attribute))
            and (
                value.func.id == "field"
                if isinstance(value.func, ast.Name)
                else value.func.attr == "field"
            )
        )
        if not is_field_call:
            yield from ast.walk(value)
            return
        for keyword in value.keywords:
            if keyword.arg == "default_factory":
                continue
            yield from ast.walk(keyword.value)
        for arg in value.args:
            yield from ast.walk(arg)


# ----------------------------------------------------------------------
# RL009 — no power-state mutation bypassing the traced transition API
# ----------------------------------------------------------------------

#: Private attributes owned by HostPowerStateMachine's transition logic.
_MACHINE_STATE_ATTRS = frozenset({"_state", "_transition"})


class UntracedTransitionRule(Rule):
    rule_id = "RL009"
    title = "no power-state mutation bypassing the traced transition API"
    rationale = (
        "HostPowerStateMachine.transition_to is the only door: it checks "
        "legality, samples latency once, meters energy, and emits the "
        "decision-trace events the invariant checker replays; writing "
        "`._state`/`._transition` or calling `._run_transition` directly "
        "produces untraceable state changes the validator cannot certify"
    )
    #: The machine module owns these attributes; tests may force states to
    #: exercise error paths.
    skip_test_files = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path.name == "machine.py" and module.in_packages(("power",)):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _MACHINE_STATE_ATTRS
                    ):
                        yield module.finding(
                            self.rule_id,
                            node,
                            "direct write to `{}` bypasses the traced "
                            "transition API; go through "
                            "`transition_to()` (or `Host.park()`/"
                            "`Host.wake()`)".format(target.attr),
                        )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_run_transition"
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    "`_run_transition` skips the legality check and "
                    "re-samples latency; call `transition_to()` instead",
                )


# ----------------------------------------------------------------------
# RL010 — no raw MigrationEngine.migrate calls outside the retry wrapper
# ----------------------------------------------------------------------


class RawMigrateRule(Rule):
    rule_id = "RL010"
    title = "no MigrationEngine.migrate calls outside the engine/manager"
    rationale = (
        "PowerAwareManager wraps evacuation flights in a retry/rollback "
        "watcher and traces every attempt; a raw `engine.migrate()` call "
        "elsewhere produces migrations that can fail mid-copy with nobody "
        "retrying them and no migration-retry trace for the validator — "
        "route migrations through the manager (balancer moves, "
        "evacuations) or suppress explicitly"
    )
    #: Tests drive the engine directly to exercise its edge cases.
    skip_test_files = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # The engine owns the call; the manager hosts the retry wrapper
        # (and the balancer's opportunistic moves, retried next round).
        if module.path.name == "engine.py" and module.in_packages(("migration",)):
            return
        if module.path.name == "manager.py" and module.in_packages(("core",)):
            return
        # The manager moved into the plane package (PR 9): the global
        # arbiter hosts the retry wrapper now.
        if module.path.name == "arbiter.py" and module.in_packages(("plane",)):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "migrate"):
                continue
            if not self._engine_receiver(func.value):
                continue
            yield module.finding(
                self.rule_id,
                node,
                "raw `MigrationEngine.migrate()` call outside the "
                "engine/manager retry wrapper; failed flights would go "
                "unretried and untraced — go through the manager",
            )

    @staticmethod
    def _engine_receiver(node: ast.expr) -> bool:
        """True when the ``.migrate`` receiver looks like a MigrationEngine.

        Matches ``engine.migrate(...)``, ``self.engine.migrate(...)``,
        ``result.engine.migrate(...)`` — any Name/Attribute chain whose
        final component mentions an engine.
        """
        if isinstance(node, ast.Name):
            return "engine" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "engine" in node.attr.lower()
        return False


# ----------------------------------------------------------------------
# RL011 — no full-inventory host scans in the DRM decision hot paths
# ----------------------------------------------------------------------

#: Legacy hot-path function names, kept so the rule still fires on the
#: manager's decision path even if a ``# reprolint: hot`` marker is
#: dropped.  New hot functions register with the marker instead of being
#: added here — RL011 and RL015 both honour the union.
_HOT_PATH_FUNCS = frozenset({"evaluate", "react_to_shortfall"})


def _is_hot_function(module: ModuleContext, func: ast.AST) -> bool:
    """True for functions in the kernel-hot registry.

    The registry is the union of explicitly marked functions
    (``# reprolint: hot`` on the signature) and the legacy hardcoded
    manager decision-path names.
    """
    return module.is_hot(func) or getattr(func, "name", "") in _HOT_PATH_FUNCS


class HotPathClusterScanRule(Rule):
    rule_id = "RL011"
    title = "no full-cluster host scans in DRM decision hot paths"
    rationale = (
        "`evaluate` and `react_to_shortfall` run every round on every "
        "tick; iterating `cluster.hosts` there is an O(fleet) scan that "
        "the incremental host indices exist to avoid — read "
        "`active_hosts()`/`placeable_hosts()`/`parked_hosts()` (or the "
        "capacity aggregates) instead, and suppress per line only for a "
        "deliberate reconciliation pass that must see every host"
    )
    #: Tests drive the manager against toy clusters where a scan is fine.
    skip_test_files = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot_function(module, node):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_cluster_hosts(it):
                    yield module.finding(
                        self.rule_id,
                        it,
                        "full-cluster `.hosts` scan inside `{}`; use the "
                        "incremental index views (`active_hosts()`, "
                        "`placeable_hosts()`, ...) or suppress for an "
                        "explicit reconciliation pass".format(
                            getattr(func, "name", "?")
                        ),
                    )

    @staticmethod
    def _is_cluster_hosts(node: ast.expr) -> bool:
        """True for ``<cluster-ish>.hosts`` — the full inventory list.

        Matches ``cluster.hosts``, ``self.cluster.hosts``,
        ``result.cluster.hosts`` — any receiver whose final component
        mentions a cluster.
        """
        if not (isinstance(node, ast.Attribute) and node.attr == "hosts"):
            return False
        value = node.value
        if isinstance(value, ast.Name):
            return "cluster" in value.id.lower()
        if isinstance(value, ast.Attribute):
            return "cluster" in value.attr.lower()
        return False


# ----------------------------------------------------------------------
# RL015 — allocation hygiene in kernel-hot functions
# ----------------------------------------------------------------------


class AllocationHygieneRule(Rule):
    rule_id = "RL015"
    title = "no sorted()/comprehensions/loop container churn in hot functions"
    rationale = (
        "Functions in the `# reprolint: hot` registry run per tick per "
        "host at fleet scale; a sorted() call or a comprehension builds "
        "a fresh container every invocation, and a dict/list/set "
        "constructed inside a loop multiplies that by the iteration "
        "count.  Hoist the allocation, reuse a preallocated buffer, or "
        "switch to a generator expression (allocation-free) — suppress "
        "per line only for a slow path that is provably off-tick."
    )
    skip_test_files = True

    #: Builtin constructors whose call inside a loop churns a container.
    _CONTAINER_BUILTINS = frozenset({"dict", "list", "set"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot_function(module, node):
                continue
            for stmt in node.body:
                yield from self._check_node(module, stmt, node.name, 0)

    def _check_node(
        self, module: ModuleContext, node: ast.AST, func: str, loop_depth: int
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs execute in the hot scope too; keep walking but
            # reset loop depth (the def body runs when *called*).
            loop_depth = 0
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "sorted":
                yield module.finding(
                    self.rule_id,
                    node,
                    "sorted() in kernel-hot `{}` allocates and sorts a "
                    "fresh list per call; hoist it off the hot path".format(func),
                )
            elif loop_depth and node.func.id in self._CONTAINER_BUILTINS:
                yield module.finding(
                    self.rule_id,
                    node,
                    "{}() constructed inside a loop in kernel-hot `{}`; "
                    "hoist or reuse a preallocated container".format(
                        node.func.id, func
                    ),
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            yield module.finding(
                self.rule_id,
                node,
                "comprehension in kernel-hot `{}` builds a container per "
                "call; use a generator expression or a preallocated "
                "buffer".format(func),
            )
        elif loop_depth and isinstance(node, (ast.Dict, ast.List, ast.Set)):
            yield module.finding(
                self.rule_id,
                node,
                "container literal inside a loop in kernel-hot `{}`; "
                "hoist or reuse a preallocated container".format(func),
            )
        inner_depth = loop_depth + (
            1 if isinstance(node, (ast.For, ast.AsyncFor, ast.While)) else 0
        )
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(module, child, func, inner_depth)


class AtomicArtifactWriteRule(Rule):
    rule_id = "RL016"
    title = "artifact-path modules must write files through atomic_write"
    rationale = (
        "cache entries, checkpoints, traces and benchmark artifacts are "
        "read back by resume paths and differential tests; a bare "
        "open()/write_text() torn by a crash poisons them silently, while "
        "repro.core.atomicio (tmp + fsync + rename) cannot"
    )

    #: Module basenames on the durable-artifact path.  Anything here that
    #: opens a file for writing must route through the atomicio helpers
    #: (or carry an inline disable with a recorded justification, like
    #: the append-structured metrics stream).
    artifact_files: Tuple[str, ...] = (
        "cache.py",
        "checkpoint.py",
        "trace.py",
        "stream.py",
        "cli.py",
        "corpus.py",
        "project.py",
    )
    #: Every module under benchmarks/ writes BENCH_*.json artifacts.
    artifact_dirs: Tuple[str, ...] = ("benchmarks",)
    _WRITE_MODES = frozenset("wax")

    def _in_scope(self, module: ModuleContext) -> bool:
        name = module.path.name
        if name == "atomicio.py":  # the helper implements the discipline
            return False
        # benchmarks/ modules are named test_* but are artifact writers,
        # so the directory scope wins over the test-file exemption.
        if module.in_packages(self.artifact_dirs):
            return True
        if module.is_test_file:
            return False
        return name in self.artifact_files

    @classmethod
    def _mode_writes(cls, node: ast.Call, mode_position: int) -> bool:
        """True when the call's mode argument requests writing."""
        mode: Optional[ast.expr] = None
        if len(node.args) > mode_position:
            mode = node.args[mode_position]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # default "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(ch in cls._WRITE_MODES for ch in mode.value)
        return True  # dynamic mode: assume the worst

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        imports = build_import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                if self._mode_writes(node, mode_position=1):
                    yield module.finding(
                        self.rule_id,
                        node,
                        "open() for writing on the artifact path; use "
                        "repro.core.atomicio.atomic_write* so a crash "
                        "cannot tear the file",
                    )
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted == "os.fdopen" and self._mode_writes(node, mode_position=1):
                yield module.finding(
                    self.rule_id,
                    node,
                    "os.fdopen() for writing on the artifact path; use "
                    "repro.core.atomicio.atomic_write* (it owns the "
                    "tmp-file + fsync + rename dance)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes")
                and dotted is None
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    ".{}() on the artifact path is not crash-safe; use "
                    "repro.core.atomicio.atomic_write*".format(node.func.attr),
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_RULES: Tuple[Type[Rule], ...] = (
    UnseededRandomRule,
    WallClockRule,
    UnitMixRule,
    UnitEqualityRule,
    MutableDefaultRule,
    OverbroadExceptRule,
    RuntimeAssertRule,
    UnpicklableFieldRule,
    UntracedTransitionRule,
    RawMigrateRule,
    HotPathClusterScanRule,
    AllocationHygieneRule,
    AtomicArtifactWriteRule,
)

#: Per-module rules only; see :func:`registry` for the combined map that
#: includes the project-wide rules (RL012–RL014).
RULES_BY_ID: Dict[str, Type[Rule]] = {cls.rule_id: cls for cls in ALL_RULES}


def registry() -> Dict[str, type]:
    """Combined id -> class map: module rules and project rules.

    Imported lazily to keep ``rules`` importable without the project
    layer (``project_rules`` depends on ``project`` which depends on
    this module).
    """
    from repro.tools.lint.project_rules import ALL_PROJECT_RULES

    combined: Dict[str, type] = dict(RULES_BY_ID)
    combined.update({cls.rule_id: cls for cls in ALL_PROJECT_RULES})
    return combined


def default_rules() -> List[Rule]:
    """Fresh instances of every registered *module* rule, in id order."""
    return [RULES_BY_ID[rule_id]() for rule_id in sorted(RULES_BY_ID)]


def rules_for_ids(ids: Sequence[str]) -> List[Any]:
    """Instantiate a subset of rules by id; unknown ids raise ValueError.

    Ids may name module rules or project rules; the returned list mixes
    both kinds (``lint_paths`` splits them by type).
    """
    known = registry()
    selected: List[Any] = []
    for rule_id in ids:
        cls = known.get(rule_id.upper())
        if cls is None:
            raise ValueError(
                "unknown rule {!r}; known rules: {}".format(
                    rule_id, ", ".join(sorted(known))
                )
            )
        selected.append(cls())
    return selected
