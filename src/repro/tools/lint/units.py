"""Unit-suffix inference for the units-discipline rules (RL003/RL004).

This codebase encodes physical units in identifier suffixes —
``power_w``, ``energy_j``, ``horizon_s``, ``mem_gb``,
``violation_pct`` — a convention the power/telemetry/analysis layers
follow throughout.  The table here maps those suffixes to units and
dimensions, and :class:`UnitInferencer` performs a small, per-scope
symbol-table inference so that ::

    total = idle_power_w + active_power_w   # total : watt
    oops = total + resume_energy_j          # RL003: watt + joule

is caught even though ``total`` itself carries no suffix.

The inference is deliberately shallow: straight-line assignments of
unit-typed expressions to plain names, within one function (or module)
scope.  Anything it cannot prove has unit ``None`` and never conflicts —
the rules only fire on *provable* mixes, keeping false positives near
zero.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: suffix token -> physical dimension.  Two identifiers conflict when
#: their suffix tokens differ (``_s`` + ``_h`` needs an explicit
#: conversion even though both are time).
UNIT_SUFFIXES: Dict[str, str] = {
    # power
    "w": "power",
    "kw": "power",
    # energy
    "j": "energy",
    "kj": "energy",
    "wh": "energy",
    "kwh": "energy",
    # time
    "s": "time",
    "ms": "time",
    "us": "time",
    "h": "time",
    # memory / storage
    "gb": "memory",
    "mb": "memory",
    "kb": "memory",
    "tb": "memory",
    # dimensionless ratios
    "pct": "ratio",
    "frac": "ratio",
    # frequency
    "hz": "frequency",
    "ghz": "frequency",
}


def unit_of_identifier(name: str) -> Optional[str]:
    """The unit suffix of an identifier, or None.

    Only the component after the final underscore counts, so ``n_vms``
    (suffix ``vms``) and ``headroom`` carry no unit, while
    ``shortfall_core_s`` is in (core-)seconds.
    """
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[1].lower()
    return suffix if suffix in UNIT_SUFFIXES else None


def dimension_of(unit: str) -> str:
    return UNIT_SUFFIXES.get(unit, "unknown")


def describe(unit: str) -> str:
    """Human label for a unit suffix, e.g. ``'_w' (power)``."""
    return "'_{}' ({})".format(unit, dimension_of(unit))


#: builtins that preserve the unit of their (first) argument
_UNIT_PRESERVING_CALLS = frozenset({"abs", "min", "max", "sum", "round", "float"})


class UnitInferencer:
    """Per-scope unit inference over expressions.

    ``table`` maps plain local names to units learned from earlier
    assignments in the same scope; :meth:`learn_assign` feeds it.
    """

    def __init__(self) -> None:
        self.table: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Symbol table
    # ------------------------------------------------------------------

    def learn_assign(self, node: ast.AST) -> None:
        """Record ``name = <unit-typed expr>`` style assignments."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            return
        if not isinstance(target, ast.Name):
            return
        explicit = unit_of_identifier(target.id)
        if explicit is not None:
            # The suffix wins; no table entry needed.
            return
        unit = self.infer(value)
        if unit is not None:
            self.table[target.id] = unit
        else:
            # Re-assignment to something un-unit-typed clears the entry.
            self.table.pop(target.id, None)

    # ------------------------------------------------------------------
    # Expression inference
    # ------------------------------------------------------------------

    def infer(self, node: ast.expr) -> Optional[str]:
        """The unit of an expression, or None when unprovable."""
        if isinstance(node, ast.Name):
            unit = unit_of_identifier(node.id)
            if unit is not None:
                return unit
            return self.table.get(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_identifier(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self.infer(node.left)
                right = self.infer(node.right)
                if left is not None and left == right:
                    return left
                return None
            # Multiplication/division is a conversion: the result's unit
            # is intentionally unknown (w * s -> joules, j / s -> watts).
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _UNIT_PRESERVING_CALLS
                and node.args
            ):
                units = {self.infer(arg) for arg in node.args}
                units.discard(None)
                if len(units) == 1:
                    return units.pop()
            return None
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            if body is not None and body == orelse:
                return body
            return None
        return None
