"""reprolint — domain-invariant static analysis for this reproduction.

Run it from the CLI::

    repro lint src benchmarks
    repro lint src --format json
    repro lint src --rules RL001,RL007
    repro lint --list-rules

or programmatically::

    from repro.tools.lint import lint_paths

    report = lint_paths(["src"])
    for finding in report.findings:
        print(finding.render())

Suppress a finding in place with a trailing comment, naming the rule::

    except BaseException as exc:  # reprolint: disable=RL006
"""

from repro.tools.lint.engine import (
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    iter_python_files,
    lint_file,
    lint_paths,
)
from repro.tools.lint.rules import ALL_RULES, RULES_BY_ID, default_rules, rules_for_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ModuleContext",
    "RULES_BY_ID",
    "Rule",
    "default_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "rules_for_ids",
]
