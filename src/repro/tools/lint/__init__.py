"""reprolint — domain-invariant static analysis for this reproduction.

Run it from the CLI::

    repro lint src benchmarks
    repro lint src --format json
    repro lint src --format sarif > lint.sarif
    repro lint src --baseline tools/lint_baseline.json
    repro lint src --rules RL001,RL014
    repro lint --list-rules

or programmatically::

    from repro.tools.lint import lint_paths

    report = lint_paths(["src"])
    for finding in report.findings:
        print(finding.render())

The analyzer is two-pass: per-module rules (RL001–RL011, RL015) run over
each file during pass 1 — whose parse + findings are memoized in a
content-hash summary cache — and project-wide rules (RL012–RL014)
analyze the assembled :class:`ProjectContext` in pass 2.

Suppress a finding in place with a trailing comment, naming the rule
(on any physical line the flagged statement spans)::

    except BaseException as exc:  # reprolint: disable=RL006

Register a function with the kernel-hot registry (RL011/RL015)::

    def sample_once(self) -> float:  # reprolint: hot
"""

from repro.tools.lint.engine import (
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    apply_baseline,
    display_path_for,
    iter_python_files,
    lint_file,
    lint_paths,
    load_baseline,
)
from repro.tools.lint.project import (
    ModuleSummary,
    ProjectContext,
    ProjectRule,
    SummaryCache,
    lint_project,
    summarize_module,
)
from repro.tools.lint.project_rules import ALL_PROJECT_RULES, default_project_rules
from repro.tools.lint.rules import (
    ALL_RULES,
    RULES_BY_ID,
    default_rules,
    registry,
    rules_for_ids,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ModuleSummary",
    "ProjectContext",
    "ProjectRule",
    "RULES_BY_ID",
    "Rule",
    "SummaryCache",
    "apply_baseline",
    "default_project_rules",
    "default_rules",
    "display_path_for",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "registry",
    "rules_for_ids",
    "summarize_module",
]
