"""The reprolint engine: file walking, parsing, suppression, reporting.

The engine is deliberately small.  A :class:`Rule` sees one fully parsed
module at a time (as a :class:`ModuleContext`) and yields
:class:`Finding` objects; everything else — collecting the file set,
honouring ``# reprolint: disable=...`` comments, ordering output,
rendering text or JSON — lives here, so a new rule is ~30 lines of AST
visiting and nothing more.

Suppression syntax (per physical line)::

    power_w = power_w + energy_j  # reprolint: disable=RL003
    noisy_call()                  # reprolint: disable=RL001,RL002
    anything_at_all()             # reprolint: disable=all

A suppression silences findings whose flagged node *spans* that physical
line, so a trailing comment on any line of a wrapped multi-line call
works.

A second marker registers a function with the kernel-hot registry that
RL011/RL015 police::

    def sample_once(self) -> float:  # reprolint: hot
"""

from __future__ import annotations

import ast
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pseudo rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_HOT_RE = re.compile(r"#\s*reprolint:\s*hot\b")

#: File name patterns treated as test code (rules may opt out of them).
_TEST_FILE_RE = re.compile(r"^(test_.*|.*_test|conftest)\.py$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    #: Last physical line of the flagged node (suppression span); not part
    #: of the serialized/rendered form, so baselines stay stable.
    end_line: int = field(default=0, compare=False)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, int]:
        """Identity used by ``--baseline`` matching."""
        return (self.rule, self.path, self.line)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return "{}:{}:{}: {} {}".format(
            self.path, self.line, self.col, self.rule, self.message
        )


class ModuleContext:
    """Everything a rule may want to know about one parsed module."""

    def __init__(self, path: Path, source: str, display_path: Optional[str] = None) -> None:
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions: Dict[int, FrozenSet[str]] = _parse_suppressions(source)
        self.hot_lines: FrozenSet[int] = _parse_hot_lines(source)
        #: Path components, used by package-scoped rules (e.g. RL002 only
        #: polices ``sim``/``core``/``datacenter``/``power``).
        self.package_parts: Tuple[str, ...] = path.parts
        self.is_test_file: bool = bool(_TEST_FILE_RE.match(path.name))

    def in_packages(self, packages: Sequence[str]) -> bool:
        return any(part in packages for part in self.package_parts)

    def is_hot(self, func: ast.AST) -> bool:
        """True when ``func`` carries a ``# reprolint: hot`` marker.

        The marker may sit on any physical line of the signature (def
        line through the line before the first body statement) or on the
        line directly above the ``def`` / first decorator.
        """
        first = getattr(func, "lineno", 0)
        decorators = getattr(func, "decorator_list", [])
        if decorators:
            first = min(first, decorators[0].lineno)
        body = getattr(func, "body", None)
        last = body[0].lineno - 1 if body else first
        return any(
            line in self.hot_lines for line in range(first - 1, last + 1)
        )

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            message=message,
            path=self.display_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None) or line,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """True when any physical line the finding spans suppresses it.

        The span runs from the flagged node's first line to its
        ``end_lineno``, so a trailing ``# reprolint: disable=...`` on any
        line of a wrapped multi-line statement takes effect.
        """
        last = max(finding.line, finding.end_line)
        for line in range(finding.line, last + 1):
            rules = self.suppressions.get(line)
            if rules is not None and ("ALL" in rules or finding.rule.upper() in rules):
                return True
        return False


def _parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of suppressed rule ids (``ALL`` = every rule).

    Comments are located with :mod:`tokenize` so a ``#`` inside a string
    literal never counts as a suppression.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            spec = match.group("rules")
            if spec == "all":
                rules = frozenset({"ALL"})
            else:
                rules = frozenset(r.strip().upper() for r in spec.split(","))
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | rules
    except tokenize.TokenError:
        # Unterminated string etc. — ast.parse will produce the real error.
        pass
    return suppressions


def _parse_hot_lines(source: str) -> FrozenSet[int]:
    """Line numbers carrying a ``# reprolint: hot`` registry marker."""
    hot: List[int] = []
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type == tokenize.COMMENT and _HOT_RE.search(token.string):
                hot.append(token.start[0])
    except tokenize.TokenError:
        pass
    return frozenset(hot)


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one module.  Set ``scoped_packages`` to limit a
    rule to modules whose path crosses one of those package directories,
    and ``skip_test_files`` for rules that do not apply to pytest code
    (e.g. RL007 — ``assert`` is the *point* of a test).
    """

    rule_id: str = "RL999"
    title: str = ""
    rationale: str = ""
    scoped_packages: Optional[Tuple[str, ...]] = None
    skip_test_files: bool = False

    def applies_to(self, module: ModuleContext) -> bool:
        if self.skip_test_files and module.is_test_file:
            return False
        if self.scoped_packages is not None and not module.in_packages(
            self.scoped_packages
        ):
            return False
        return True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def iter_python_files(
    paths: Iterable[Path], exclude: Sequence[str] = ()
) -> List[Path]:
    """Expand files/directories into a stable, sorted list of ``.py`` files.

    ``exclude`` names path components that disqualify a file found under a
    directory argument (e.g. ``("lint_fixtures",)`` so fixture trees —
    which exist to be dirty — never pollute a directory sweep).  Files
    named explicitly are always linted.
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
                and not any(part in exclude for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(
                "not a python file or directory: {}".format(path)
            )
    # De-duplicate while preserving sorted order per input path.
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = str(f)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def display_path_for(path: Path, root: Optional[Path] = None) -> str:
    """Repo-relative, ``/``-separated display path for ``path``.

    Findings render (and enter baseline files) with this path, so output
    is stable across machines and working copies.  Paths outside ``root``
    (default: the current working directory) fall back to their literal
    form.
    """
    base = root if root is not None else Path.cwd()
    try:
        rel = os.path.relpath(path, start=base)
    except ValueError:  # different drive on windows
        return path.as_posix()
    if rel.startswith(".."):
        return path.as_posix()
    return rel.replace(os.sep, "/")


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Run every applicable rule over one file; suppressions applied."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FileNotFoundError("cannot read {}: {}".format(path, exc)) from exc
    try:
        module = ModuleContext(path, source, display_path=display_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                message="syntax error: {}".format(exc.msg),
                path=display_path if display_path is not None else str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    #: Pass-1 summary-cache accounting (0/0 when the cache is disabled).
    modules_reparsed: int = 0
    cache_hits: int = 0
    #: Findings suppressed by a ``--baseline`` file.
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "modules_reparsed": self.modules_reparsed,
            "cache_hits": self.cache_hits,
            "baselined": self.baselined,
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }

    def render_text(self) -> str:
        out = [f.render() for f in self.findings]
        tail = "reprolint: {} finding(s) in {} file(s)".format(
            len(self.findings), self.files_checked
        )
        if self.cache_hits or self.modules_reparsed:
            tail += " ({} re-parsed, {} from summary cache)".format(
                self.modules_reparsed, self.cache_hits
            )
        if self.baselined:
            tail += " [{} baselined]".format(self.baselined)
        out.append(tail)
        return "\n".join(out)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_sarif(self, rules: Sequence[Rule] = ()) -> str:
        """SARIF 2.1.0 document, for CI annotation uploads."""
        rule_meta = [
            {
                "id": r.rule_id,
                "shortDescription": {"text": r.title or r.rule_id},
                "fullDescription": {"text": r.rationale or r.title or r.rule_id},
            }
            for r in sorted(rules, key=lambda r: r.rule_id)
        ]
        results = [
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        doc = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "reprolint",
                            "informationUri": "https://example.invalid/reprolint",
                            "rules": rule_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)


def load_baseline(path: Path) -> FrozenSet[Tuple[str, str, int]]:
    """Read a baseline file into a set of finding identities.

    The format is the ``--format json`` report (or any JSON object with a
    ``findings`` list, or a bare list of finding dicts), so a baseline is
    captured with ``repro lint --format json > baseline.json``.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    records = payload.get("findings", []) if isinstance(payload, dict) else payload
    keys = set()
    for record in records:
        keys.add((record["rule"], record["path"], int(record["line"])))
    return frozenset(keys)


def apply_baseline(
    findings: List[Finding], baseline: FrozenSet[Tuple[str, str, int]]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against ``baseline``."""
    fresh = [f for f in findings if f.baseline_key() not in baseline]
    return fresh, len(findings) - len(fresh)


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
    **kwargs: Any,
) -> LintReport:
    """Lint every python file under ``paths``.

    This is the public entry point; it delegates to
    :func:`repro.tools.lint.project.lint_project`, which runs the
    per-module rules (pass 1, summary-cached) *and* the project-wide
    rules (pass 2) and emits repo-relative display paths.  ``rules``
    defaults to the full registered set — module and project rules; a
    mixed sequence is split automatically.  See ``lint_project`` for the
    keyword options (``cache``, ``baseline``, ``exclude``, ``workers``,
    ``root``).
    """
    from repro.tools.lint.project import lint_project

    return lint_project(paths, rules=rules, **kwargs)
