"""The reprolint engine: file walking, parsing, suppression, reporting.

The engine is deliberately small.  A :class:`Rule` sees one fully parsed
module at a time (as a :class:`ModuleContext`) and yields
:class:`Finding` objects; everything else — collecting the file set,
honouring ``# reprolint: disable=...`` comments, ordering output,
rendering text or JSON — lives here, so a new rule is ~30 lines of AST
visiting and nothing more.

Suppression syntax (per physical line)::

    power_w = power_w + energy_j  # reprolint: disable=RL003
    noisy_call()                  # reprolint: disable=RL001,RL002
    anything_at_all()             # reprolint: disable=all

A suppression silences only findings reported *on that line*.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pseudo rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: File name patterns treated as test code (rules may opt out of them).
_TEST_FILE_RE = re.compile(r"^(test_.*|.*_test|conftest)\.py$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return "{}:{}:{}: {} {}".format(
            self.path, self.line, self.col, self.rule, self.message
        )


class ModuleContext:
    """Everything a rule may want to know about one parsed module."""

    def __init__(self, path: Path, source: str, display_path: Optional[str] = None) -> None:
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions: Dict[int, FrozenSet[str]] = _parse_suppressions(source)
        #: Path components, used by package-scoped rules (e.g. RL002 only
        #: polices ``sim``/``core``/``datacenter``/``power``).
        self.package_parts: Tuple[str, ...] = path.parts
        self.is_test_file: bool = bool(_TEST_FILE_RE.match(path.name))

    def in_packages(self, packages: Sequence[str]) -> bool:
        return any(part in packages for part in self.package_parts)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            message=message,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return "ALL" in rules or finding.rule.upper() in rules


def _parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of suppressed rule ids (``ALL`` = every rule).

    Comments are located with :mod:`tokenize` so a ``#`` inside a string
    literal never counts as a suppression.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    lines = iter(source.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            spec = match.group("rules")
            if spec == "all":
                rules = frozenset({"ALL"})
            else:
                rules = frozenset(r.strip().upper() for r in spec.split(","))
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | rules
    except tokenize.TokenError:
        # Unterminated string etc. — ast.parse will produce the real error.
        pass
    return suppressions


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one module.  Set ``scoped_packages`` to limit a
    rule to modules whose path crosses one of those package directories,
    and ``skip_test_files`` for rules that do not apply to pytest code
    (e.g. RL007 — ``assert`` is the *point* of a test).
    """

    rule_id: str = "RL999"
    title: str = ""
    rationale: str = ""
    scoped_packages: Optional[Tuple[str, ...]] = None
    skip_test_files: bool = False

    def applies_to(self, module: ModuleContext) -> bool:
        if self.skip_test_files and module.is_test_file:
            return False
        if self.scoped_packages is not None and not module.in_packages(
            self.scoped_packages
        ):
            return False
        return True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a stable, sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(
                "not a python file or directory: {}".format(path)
            )
    # De-duplicate while preserving sorted order per input path.
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = str(f)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Run every applicable rule over one file; suppressions applied."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FileNotFoundError("cannot read {}: {}".format(path, exc)) from exc
    try:
        module = ModuleContext(path, source, display_path=display_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                message="syntax error: {}".format(exc.msg),
                path=display_path if display_path is not None else str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }

    def render_text(self) -> str:
        out = [f.render() for f in self.findings]
        out.append(
            "reprolint: {} finding(s) in {} file(s)".format(
                len(self.findings), self.files_checked
            )
        )
        return "\n".join(out)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every python file under ``paths`` with ``rules``.

    ``rules`` defaults to the full registered set
    (:data:`repro.tools.lint.rules.ALL_RULES`).
    """
    if rules is None:
        from repro.tools.lint.rules import default_rules

        rules = default_rules()
    files = iter_python_files([Path(p) for p in paths])
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, files_checked=len(files))
