"""Project-wide reprolint rules (pass 2).

These rules see the whole program at once — the :class:`ProjectContext`
assembled from every module's pass-1 summary — and enforce the
cross-module invariants the dynamic suites (golden traces, differential
runs, the replay validator) otherwise catch only after a simulation has
already executed:

* **RL012** — every RNG constructed in the simulation packages must be
  seeded from the scenario seed through a *labelled* stream digest, and
  no two subsystems may share a stream label.  Interprocedural: when the
  seed flows in through a function parameter, every call site of that
  function is tainted.
* **RL013** — every trace event type must map to at least one registered
  validator invariant family (``EVENT_COVERAGE`` in
  ``telemetry/validate.py``), and every counter written into
  ``report.extra`` must appear in the cache-schema field list
  (``EXTRA_FIELDS`` in ``core/cache.py``).
* **RL014** — any method writing a field that feeds an epoch/rev-tagged
  memoized aggregate must bump the corresponding counter on every
  normally-terminating path (reaching-writes dataflow within the class).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.tools.lint.engine import Finding
from repro.tools.lint.project import (
    EPOCH_FIELD_RE,
    ClassSummary,
    ModuleSummary,
    ProjectContext,
    ProjectRule,
    RngSite,
)

#: Packages whose modules participate in the deterministic simulation —
#: the scope RL012/RL014 police (mirrors the per-module rule scoping).
SIM_PACKAGES: Tuple[str, ...] = (
    "core",
    "datacenter",
    "power",
    "placement",
    "telemetry",
    "fuzz",
    "workload",
    "sim",
)

#: Method names exempt from RL014: construction/deserialization happens
#: before any memo exists, so there is nothing to invalidate yet.
_RL014_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__setstate__"})


def _site_finding(
    summary: ModuleSummary, site: RngSite, rule: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        message=message,
        path=summary.path,
        line=site.line,
        col=site.col,
        end_line=site.end_line,
    )


class RngStreamProvenanceRule(ProjectRule):
    rule_id = "RL012"
    title = "RNG streams must be labelled, seed-derived, and unshared"
    rationale = (
        "Replayability holds only if every random draw comes from a "
        "dedicated '{subsystem}:{seed}:...' stream digest of the "
        "scenario seed; an unlabelled or shared stream couples "
        "subsystems so adding a draw in one silently reorders another."
    )
    scoped_packages = SIM_PACKAGES
    skip_test_files = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        registered = self._registered_streams(project)
        label_sites: Dict[str, List[Tuple[ModuleSummary, RngSite]]] = defaultdict(list)
        for summary in project.iter_modules():
            if not self.module_in_scope(summary):
                continue
            if summary.path.endswith("core/seeding.py"):
                # The stream helper itself forwards caller labels.
                continue
            for site in summary.rng_sites:
                if site.kind == "stream":
                    label_sites[site.label or ""].append((summary, site))
                elif site.kind == "unlabeled":
                    yield _site_finding(
                        summary, site, self.rule_id,
                        "RNG seed digest has no subsystem label; derive it "
                        "via stream_digest('<subsystem>', seed, qualifier) "
                        "so the stream is named and auditable",
                    )
                elif site.kind == "forward":
                    yield _site_finding(
                        summary, site, self.rule_id,
                        "RNG stream label must be a string literal at the "
                        "call site (only repro.core.seeding may forward one)",
                    )
                elif site.kind == "opaque":
                    yield _site_finding(
                        summary, site, self.rule_id,
                        "RNG seed cannot be traced to the scenario seed; "
                        "seed it from stream_digest(...) of the scenario "
                        "seed, not an arbitrary value",
                    )
                elif site.kind == "param":
                    yield from self._taint_callers(project, summary, site)
                # "const" and "attr-seed" are accepted as-is.

        # A label names exactly one subsystem's stream family.
        for label in sorted(label_sites):
            sites = sorted(
                label_sites[label], key=lambda e: (e[0].path, e[1].line)
            )
            if registered is not None and label not in registered:
                summary, site = sites[0]
                yield _site_finding(
                    summary, site, self.rule_id,
                    "RNG stream label '{}' is not registered in "
                    "RNG_STREAMS (repro.core.seeding)".format(label),
                )
            first = sites[0]
            for summary, site in sites[1:]:
                if summary.path == first[0].path:
                    # Same module may seed one stream family at several
                    # qualifiers (e.g. per-host repair streams).
                    continue
                yield _site_finding(
                    summary, site, self.rule_id,
                    "RNG stream label '{}' is already used by {}:{}; two "
                    "subsystems must not share a stream".format(
                        label, first[0].path, first[1].line
                    ),
                )

    @staticmethod
    def _registered_streams(project: ProjectContext) -> Optional[Set[str]]:
        found = project.registry("RNG_STREAMS")
        if found is None:
            return None
        _path, entries = found
        labels: Set[str] = set()
        for key, value in entries.items():
            if key:
                labels.add(key)
            else:
                labels.update(value[0])
        return labels

    def _taint_callers(
        self, project: ProjectContext, summary: ModuleSummary, site: RngSite
    ) -> Iterator[Finding]:
        """Flag call sites passing a non-seed value into a seed parameter."""
        if site.param_index < 0:
            return
        for caller in project.iter_modules():
            if caller.parse_error or caller.is_test_file:
                continue
            for call in caller.call_sites:
                if call.callee != site.callee:
                    continue
                if site.param_index < len(call.arg_seedish):
                    seedish = call.arg_seedish[site.param_index]
                elif site.label in call.kwarg_seedish:
                    seedish = call.kwarg_seedish[site.label]
                else:
                    continue  # parameter defaulted — nothing flows in
                if not seedish:
                    yield Finding(
                        rule=self.rule_id,
                        message=(
                            "call passes a value not derived from the "
                            "scenario seed into RNG-seeding parameter "
                            "'{}' of {}()".format(site.label, site.callee)
                        ),
                        path=caller.path,
                        line=call.line,
                        col=call.col,
                    )


class TraceCoverageRule(ProjectRule):
    rule_id = "RL013"
    title = "trace events and report.extra counters must be registered"
    rationale = (
        "An event type no validator family covers (or a counter absent "
        "from the cache schema's field list) is silently unverified "
        "output — regressions in it never fail a replay or cache check."
    )
    scoped_packages = None
    skip_test_files = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        yield from self._check_event_coverage(project)
        yield from self._check_extra_fields(project)

    def _check_event_coverage(self, project: ProjectContext) -> Iterator[Finding]:
        coverage = project.registry("EVENT_COVERAGE")
        events: Dict[str, Tuple[str, int]] = {}
        invariants: Set[str] = set()
        for summary in project.iter_modules():
            if not self.module_in_scope(summary):
                continue
            for tag, line in summary.trace_events.items():
                events.setdefault(tag, (summary.path, line))
            invariants.update(summary.flag_invariants)
        if not events:
            return
        if coverage is None:
            tag_path, line = sorted(events.items())[0][1]
            yield Finding(
                rule=self.rule_id,
                message=(
                    "trace events are defined but no EVENT_COVERAGE "
                    "registry maps them to validator invariant families"
                ),
                path=tag_path,
                line=line,
            )
            return
        registry_path, entries = coverage
        for tag in sorted(events):
            tag_path, line = events[tag]
            if tag not in entries:
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        "trace event '{}' has no registered validator "
                        "invariant family in EVENT_COVERAGE".format(tag)
                    ),
                    path=tag_path,
                    line=line,
                )
        for tag in sorted(entries):
            families, line = entries[tag]
            if tag not in events:
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        "EVENT_COVERAGE entry '{}' names a trace event "
                        "that no producer defines".format(tag)
                    ),
                    path=registry_path,
                    line=line,
                )
                continue
            if not families:
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        "trace event '{}' maps to an empty invariant "
                        "family list".format(tag)
                    ),
                    path=registry_path,
                    line=line,
                )
            if invariants:
                for family in families:
                    if family not in invariants:
                        yield Finding(
                            rule=self.rule_id,
                            message=(
                                "EVENT_COVERAGE maps '{}' to invariant "
                                "family '{}' which no validator flag() "
                                "emits".format(tag, family)
                            ),
                            path=registry_path,
                            line=line,
                        )

    def _check_extra_fields(self, project: ProjectContext) -> Iterator[Finding]:
        registry = project.registry("EXTRA_FIELDS")
        if registry is None:
            return
        registry_path, entries = registry
        declared: Dict[str, int] = {}
        for key, value in entries.items():
            if key:
                declared[key] = value[1]
            else:
                for name in value[0]:
                    declared[name] = value[1]
        written: Dict[str, Tuple[str, int]] = {}
        for summary in project.iter_modules():
            if not self.module_in_scope(summary):
                continue
            for key, line in summary.extra_writes:
                written.setdefault(key, (summary.path, line))
        for key in sorted(written):
            if key not in declared:
                path, line = written[key]
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        "counter '{}' is written into report.extra but "
                        "missing from the EXTRA_FIELDS schema list "
                        "(repro.core.cache)".format(key)
                    ),
                    path=path,
                    line=line,
                )
        for key in sorted(declared):
            if key not in written:
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        "EXTRA_FIELDS declares counter '{}' that no "
                        "producer writes into report.extra".format(key)
                    ),
                    path=registry_path,
                    line=declared[key],
                )


class MemoInvalidationRule(ProjectRule):
    rule_id = "RL014"
    title = "writes to memo-feeding fields must bump their epoch"
    rationale = (
        "Memoized aggregates are keyed on epoch/rev counters; a mutation "
        "path that forgets the bump serves stale capacity or demand "
        "values that only surface as drift thousands of ticks later."
    )
    scoped_packages = SIM_PACKAGES
    skip_test_files = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for summary in project.iter_modules():
            if not self.module_in_scope(summary):
                continue
            for name in sorted(summary.classes):
                yield from self._check_class(summary, summary.classes[name])

    def _check_class(
        self, summary: ModuleSummary, cls: ClassSummary
    ) -> Iterator[Finding]:
        epochs = {
            bump
            for method in cls.methods.values()
            for bump in method.some_bumps
            if EPOCH_FIELD_RE.search(bump)
        }
        if not epochs:
            return
        always, some = self._transitive_bumps(cls)

        # A field is "protected by epoch E" when some mutator method both
        # writes it and bumps E — __init__ establishes fields without
        # bumping, so it never defines protection.
        protected: Dict[str, Set[str]] = defaultdict(set)
        for mname, method in cls.methods.items():
            if mname in _RL014_EXEMPT_METHODS:
                continue
            bumps = some[mname]
            if not bumps:
                continue
            for write in method.writes:
                field = write[0]
                if EPOCH_FIELD_RE.search(field):
                    continue
                protected[field].update(bumps & epochs)
        if not protected:
            return

        for mname in sorted(cls.methods):
            if mname in _RL014_EXEMPT_METHODS:
                continue
            method = cls.methods[mname]
            reported: Set[Tuple[str, str]] = set()
            for field, line, col in method.writes:
                for epoch in sorted(protected.get(field, ())):
                    if (field, epoch) in reported:
                        continue
                    if epoch not in some[mname]:
                        reported.add((field, epoch))
                        yield Finding(
                            rule=self.rule_id,
                            message=(
                                "{}.{} writes '{}' (feeds the '{}'-keyed "
                                "memo) without bumping '{}'".format(
                                    cls.name, mname, field, epoch, epoch
                                )
                            ),
                            path=summary.path,
                            line=line,
                            col=col,
                        )
                    elif epoch not in always[mname]:
                        reported.add((field, epoch))
                        yield Finding(
                            rule=self.rule_id,
                            message=(
                                "{}.{} writes '{}' but the '{}' bump is "
                                "conditional — not guaranteed on every "
                                "path".format(cls.name, mname, field, epoch)
                            ),
                            path=summary.path,
                            line=line,
                            col=col,
                        )

    @staticmethod
    def _transitive_bumps(
        cls: ClassSummary,
    ) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
        """Fixpoint of bump facts across same-class self-calls.

        ``always[m]`` = epochs bumped on every normal path through ``m``
        (direct bumps plus always-bumps of methods ``m`` always calls);
        ``some[m]`` = epochs bumped on at least one path.
        """
        always = {m: set(s.always_bumps) for m, s in cls.methods.items()}
        some = {m: set(s.some_bumps) for m, s in cls.methods.items()}
        changed = True
        while changed:
            changed = False
            for mname, method in cls.methods.items():
                for callee in method.always_calls:
                    if callee in always and not always[callee] <= always[mname]:
                        always[mname] |= always[callee]
                        changed = True
                for callee in method.some_calls:
                    callee_all = (
                        (some[callee] | always[callee]) if callee in some else set()
                    )
                    if callee_all and not callee_all <= some[mname]:
                        some[mname] |= callee_all
                        changed = True
            for mname in cls.methods:
                if not always[mname] <= some[mname]:
                    some[mname] |= always[mname]
                    changed = True
        return always, some


ALL_PROJECT_RULES: Tuple[type, ...] = (
    RngStreamProvenanceRule,
    TraceCoverageRule,
    MemoInvalidationRule,
)


def default_project_rules() -> List[ProjectRule]:
    return [cls() for cls in ALL_PROJECT_RULES]
