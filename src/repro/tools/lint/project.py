"""Pass 1 + pass 2 of the project-wide reprolint analyzer.

The original engine ran each rule over one :class:`ModuleContext` at a
time, which is enough for local invariants but blind to the properties
recent regressions actually violated — RNG streams shared between
subsystems, trace events nobody validates, a mutation path that forgets
to bump ``_demand_epoch``.  This module adds the whole-program layer:

* **Pass 1** parses every file once and distills it into a
  :class:`ModuleSummary` — imports, function/class tables with
  attribute-write and call sets, RNG-constructor sites with their seed
  provenance, trace-event / registry / ``report.extra`` extractions, the
  suppression map, and the ``# reprolint: hot`` registry.  Summaries are
  plain data (JSON-serializable), so they live in a content-hash disk
  cache (same idiom as :mod:`repro.core.cache`): a warm run re-parses
  only files whose bytes changed.
* **Pass 2** assembles the summaries into a :class:`ProjectContext`
  (module table, call-site index, class-attribute write map) that
  :class:`ProjectRule` subclasses analyze globally — RL012/RL013/RL014
  live in :mod:`repro.tools.lint.project_rules`.

The per-module rules still run (during pass 1, so their findings cache
alongside the summary) — :func:`lint_project` is the single entry point
for both kinds and what ``repro lint`` calls.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.tools.lint.engine import (
    PARSE_ERROR_RULE,
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    apply_baseline,
    display_path_for,
    iter_python_files,
    load_baseline,
)

#: Bump when the ModuleSummary layout (or any extraction below) changes —
#: invalidates every cached summary, exactly like ``CACHE_SCHEMA`` does
#: for scenario results.
SUMMARY_SCHEMA = 1

_ENV_CACHE_DIR = "REPRO_LINT_CACHE_DIR"
_ENV_NO_CACHE = "REPRO_NO_LINT_CACHE"

#: Attribute names that version a memoized aggregate: an integer counter
#: incremented (``self.X += 1``) on every mutation of the aggregate's
#: inputs.  ``_demand_epoch`` and ``_index_rev`` are the live instances.
EPOCH_FIELD_RE = re.compile(r"(epoch|rev)$")

#: Method names whose call mutates the receiver container in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "discard", "add",
        "clear", "update", "pop", "popitem", "setdefault", "sort",
        "reverse", "appendleft", "extendleft",
    }
)

#: Module-constant names pass 1 records as registries for RL012/RL013.
_REGISTRY_NAMES = frozenset({"EVENT_COVERAGE", "EXTRA_FIELDS", "RNG_STREAMS"})

#: Dotted names that construct an RNG (seed provenance is analyzed).
_RNG_CONSTRUCTORS = frozenset(
    {"numpy.random.default_rng", "random.Random", "repro.core.seeding.stream_rng"}
)

_SEEDISH_NAME_RE = re.compile(r"seed|digest", re.IGNORECASE)


# ----------------------------------------------------------------------
# Summary data model (all plain data — must round-trip through JSON)
# ----------------------------------------------------------------------


@dataclass
class RngSite:
    """One RNG-constructor call and the provenance of its seed argument.

    ``kind`` is one of:

    ``stream``
        Seed is a labelled stream digest (``stream_digest("repair", ...)``
        or ``zlib.crc32("repair:{}:{}".format(...))``); ``label`` holds
        the subsystem prefix.
    ``unlabeled``
        A crc32 digest whose format string carries no literal subsystem
        prefix before the first ``:``.
    ``param``
        Seed flows in through the enclosing function's parameter
        ``label``; pass 2 taints call sites.
    ``attr-seed`` / ``const``
        ``self._seed``-style attribute or a literal constant — accepted.
    ``forward``
        A ``stream_digest``/``stream_rng`` call whose label is not a
        string literal (only the seeding helper module itself may do
        this).
    ``opaque``
        None of the above — the seed cannot be traced to the scenario
        seed statically.
    """

    line: int
    col: int
    end_line: int
    kind: str
    label: Optional[str]
    func: str  # qualname of the enclosing function ("" = module level)
    callee: str  # name call sites use for the enclosing function
    param_index: int = -1  # for kind == "param": index excluding self
    detail: str = ""


@dataclass
class CallSite:
    """One call expression, reduced to what seed tainting needs."""

    callee: str  # last component of the called name
    line: int
    col: int
    arg_seedish: List[bool] = field(default_factory=list)
    kwarg_seedish: Dict[str, bool] = field(default_factory=dict)


@dataclass
class MethodSummary:
    """Dataflow facts for one method, from a single-pass CFG-lite walk.

    ``always_*`` facts hold on every path that leaves the method
    normally (paths that ``raise`` are exempt — error paths do not
    commit a mutation); ``some_*`` facts hold on at least one path.
    """

    name: str
    lineno: int
    writes: List[List[Any]] = field(default_factory=list)  # [field, line, col]
    always_bumps: List[str] = field(default_factory=list)
    some_bumps: List[str] = field(default_factory=list)
    always_calls: List[str] = field(default_factory=list)
    some_calls: List[str] = field(default_factory=list)


@dataclass
class ClassSummary:
    name: str
    lineno: int
    methods: Dict[str, MethodSummary] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything pass 2 may want to know about one module."""

    path: str  # display path (repo-relative)
    package_parts: List[str] = field(default_factory=list)
    is_test_file: bool = False
    parse_error: bool = False
    hot_functions: List[str] = field(default_factory=list)
    rng_sites: List[RngSite] = field(default_factory=list)
    call_sites: List[CallSite] = field(default_factory=list)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    trace_events: Dict[str, int] = field(default_factory=dict)  # tag -> line
    #: Registry constants (dict registries map key -> [families..., line];
    #: tuple registries map "" -> [values..., line]).
    registries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    flag_invariants: List[str] = field(default_factory=list)
    extra_writes: List[List[Any]] = field(default_factory=list)  # [key, line]
    suppressions: Dict[str, List[str]] = field(default_factory=dict)

    def in_packages(self, packages: Sequence[str]) -> bool:
        return any(part in packages for part in self.package_parts)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        data = dict(data)
        data["rng_sites"] = [RngSite(**s) for s in data.get("rng_sites", [])]
        data["call_sites"] = [CallSite(**s) for s in data.get("call_sites", [])]
        classes = {}
        for name, cdata in data.get("classes", {}).items():
            methods = {
                mname: MethodSummary(**mdata)
                for mname, mdata in cdata.get("methods", {}).items()
            }
            classes[name] = ClassSummary(
                name=cdata["name"], lineno=cdata["lineno"], methods=methods
            )
        data["classes"] = classes
        return cls(**data)


# ----------------------------------------------------------------------
# Pass-1 extraction helpers
# ----------------------------------------------------------------------


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (attribute access on the literal name self)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _walk_own_scope(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested def/class.

    Nested functions are scanned under their own qualname (with their own
    parameter list), so descending here would double-count their RNG
    sites against the wrong scope.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_seedish(expr: ast.expr) -> bool:
    """True when the expression plausibly derives from the scenario seed.

    Any identifier mentioning seed/digest, or a literal number (a literal
    seed is deterministic by construction), taints the expression.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _SEEDISH_NAME_RE.search(node.id):
            return True
        if isinstance(node, ast.Attribute) and _SEEDISH_NAME_RE.search(node.attr):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return True
        if isinstance(node, ast.Call):
            name = _callee_name(node.func)
            if name in ("stream_digest", "stream_rng", "crc32", "default_rng"):
                return True
    return False


def _format_literal_text(node: ast.expr) -> Optional[str]:
    """Literal prefix text of a string being formatted, if extractable.

    Handles ``"fmt".format(...)``, f-strings, and ``"fmt" % args``; the
    returned text is the template itself (placeholders included for
    ``.format``/``%``; for f-strings only the leading literal run).
    """
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "format"
            and isinstance(func.value, ast.Constant)
            and isinstance(func.value.value, str)
        ):
            return func.value.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("{")
                break
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        if isinstance(node.left, ast.Constant) and isinstance(node.left.value, str):
            return node.left.value.replace("%s", "{}").replace("%d", "{}")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _label_from_crc32(call: ast.Call) -> Optional[str]:
    """Stream label of ``zlib.crc32("<label>:{}:{}".format(...).encode())``.

    Returns None when the format string has no literal subsystem prefix
    before the first ``:`` (e.g. ``"{}:{}"``).
    """
    if not call.args:
        return None
    arg = call.args[0]
    # Unwrap the .encode() call.
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Attribute)
        and arg.func.attr == "encode"
    ):
        arg = arg.func.value
    text = _format_literal_text(arg)
    if text is None:
        return None
    label = text.split(":", 1)[0]
    if not label or "{" in label or "%" in label:
        return None
    return label


class _SeedClassifier:
    """Trace an RNG-constructor seed argument back to its origin."""

    def __init__(
        self,
        env: Dict[str, ast.expr],
        params: Sequence[str],
        imports: Dict[str, str],
    ) -> None:
        self.env = env
        self.params = list(params)
        self.imports = imports

    def classify(self, expr: ast.expr, depth: int = 0) -> Tuple[str, Optional[str]]:
        if depth > 6:
            return ("opaque", None)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, depth)
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.classify(self.env[expr.id], depth + 1)
            if expr.id in self.params:
                return ("param", expr.id)
            return ("opaque", expr.id)
        if isinstance(expr, ast.Attribute):
            if _SEEDISH_NAME_RE.search(expr.attr):
                return ("attr-seed", expr.attr)
            return ("opaque", None)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
            return ("const", None)
        if isinstance(expr, ast.BinOp):
            left = self.classify(expr.left, depth + 1)
            right = self.classify(expr.right, depth + 1)
            for preferred in ("stream", "param", "attr-seed", "const"):
                for candidate in (left, right):
                    if candidate[0] == preferred:
                        return candidate
            return ("opaque", None)
        return ("opaque", None)

    def _classify_call(self, call: ast.Call, depth: int) -> Tuple[str, Optional[str]]:
        from repro.tools.lint.rules import resolve_dotted

        dotted = resolve_dotted(call.func, self.imports)
        name = _callee_name(call.func)
        if dotted == "zlib.crc32" or name == "crc32":
            label = _label_from_crc32(call)
            return ("stream", label) if label else ("unlabeled", None)
        if name in ("stream_digest", "stream_rng") or (
            dotted is not None and dotted.startswith("repro.core.seeding.stream_")
        ):
            if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
                call.args[0].value, str
            ):
                return ("stream", call.args[0].value)
            return ("forward", None)
        return ("opaque", None)


# ----------------------------------------------------------------------
# Method dataflow (CFG-lite): writes, epoch bumps, self-calls per path
# ----------------------------------------------------------------------


class _BlockFacts:
    __slots__ = (
        "always_bumps", "some_bumps", "always_calls", "some_calls",
        "writes", "raises",
    )

    def __init__(self) -> None:
        self.always_bumps: Set[str] = set()
        self.some_bumps: Set[str] = set()
        self.always_calls: Set[str] = set()
        self.some_calls: Set[str] = set()
        self.writes: List[Tuple[str, int, int]] = []
        self.raises = False

    def merge_sequential(self, other: "_BlockFacts") -> None:
        """Append facts of a block that always executes after this one."""
        self.always_bumps |= other.always_bumps
        self.some_bumps |= other.some_bumps
        self.always_calls |= other.always_calls
        self.some_calls |= other.some_calls
        self.writes.extend(other.writes)
        self.raises = self.raises or other.raises

    def demote(self) -> None:
        """Downgrade every always-fact to a some-fact (conditional block)."""
        self.some_bumps |= self.always_bumps
        self.some_calls |= self.always_calls
        self.always_bumps = set()
        self.always_calls = set()


def _stmt_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expression trees owned directly by ``stmt`` (no nested statements)."""
    for _name, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, ast.expr):
                yield item


def _collect_stmt_facts(stmt: ast.stmt, facts: _BlockFacts) -> None:
    """Record writes/bumps/self-calls from one statement's own expressions."""
    # Epoch bump: ``self.X += <const int>`` with an epoch-ish name.
    if isinstance(stmt, ast.AugAssign):
        attr = _self_attr(stmt.target)
        if attr is not None:
            if (
                EPOCH_FIELD_RE.search(attr)
                and isinstance(stmt.op, ast.Add)
                and isinstance(stmt.value, ast.Constant)
            ):
                facts.always_bumps.add(attr)
            else:
                facts.writes.append((attr, stmt.lineno, stmt.col_offset))
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        for t in target.elts if isinstance(target, ast.Tuple) else [target]:
            attr = _self_attr(t)
            if attr is None and isinstance(t, ast.Subscript):
                attr = _self_attr(t.value)
            if attr is not None:
                facts.writes.append((attr, t.lineno, t.col_offset))
    # Self-calls and mutating container-method calls in owned expressions.
    for root in _stmt_expressions(stmt):
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                facts.always_calls.add(func.attr)
            elif func.attr in _MUTATOR_METHODS:
                attr = _self_attr(func.value)
                if attr is not None:
                    facts.writes.append((attr, node.lineno, node.col_offset))


def _analyze_block(stmts: Sequence[ast.stmt]) -> _BlockFacts:
    """Path-aware facts for one statement list.

    Branch facts are intersected (an ``always`` fact must hold in every
    live branch); a branch that unconditionally raises is exempt — an
    error path does not commit the mutation it guards.  Loop bodies may
    run zero times, so their facts demote to ``some``.
    """
    facts = _BlockFacts()
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        _collect_stmt_facts(stmt, facts)
        if isinstance(stmt, ast.If):
            body = _analyze_block(stmt.body)
            orelse = _analyze_block(stmt.orelse)
            live = [f for f in (body, orelse) if not f.raises]
            if not live:
                facts.raises = True
            elif len(live) == 1:
                facts.always_bumps |= live[0].always_bumps
                facts.always_calls |= live[0].always_calls
            else:
                facts.always_bumps |= body.always_bumps & orelse.always_bumps
                facts.always_calls |= body.always_calls & orelse.always_calls
            for f in (body, orelse):
                facts.some_bumps |= f.always_bumps | f.some_bumps
                facts.some_calls |= f.always_calls | f.some_calls
                facts.writes.extend(f.writes)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            for block in (stmt.body, stmt.orelse):
                f = _analyze_block(block)
                facts.some_bumps |= f.always_bumps | f.some_bumps
                facts.some_calls |= f.always_calls | f.some_calls
                facts.writes.extend(f.writes)
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse):
                f = _analyze_block(block)
                facts.some_bumps |= f.always_bumps | f.some_bumps
                facts.some_calls |= f.always_calls | f.some_calls
                facts.writes.extend(f.writes)
            for handler in stmt.handlers:
                f = _analyze_block(handler.body)
                facts.some_bumps |= f.always_bumps | f.some_bumps
                facts.some_calls |= f.always_calls | f.some_calls
                facts.writes.extend(f.writes)
            facts.merge_sequential(_analyze_block(stmt.finalbody))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            facts.merge_sequential(_analyze_block(stmt.body))
        elif isinstance(stmt, ast.Raise):
            facts.raises = True
    return facts


def _summarize_method(func: ast.FunctionDef) -> MethodSummary:
    facts = _analyze_block(func.body)
    return MethodSummary(
        name=func.name,
        lineno=func.lineno,
        writes=[[f, line, col] for f, line, col in facts.writes],
        always_bumps=sorted(facts.always_bumps),
        some_bumps=sorted(facts.some_bumps | facts.always_bumps),
        always_calls=sorted(facts.always_calls),
        some_calls=sorted(facts.some_calls | facts.always_calls),
    )


# ----------------------------------------------------------------------
# summarize_module — pass 1 for one parsed module
# ----------------------------------------------------------------------


def _function_params(func: ast.FunctionDef, *, method: bool) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if method and names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _registry_entry(value: ast.expr) -> Optional[List[str]]:
    """Families named by one EVENT_COVERAGE value (str or tuple/list)."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return [value.value]
    if isinstance(value, (ast.Tuple, ast.List)):
        out = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            out.append(elt.value)
        return out
    return None


def summarize_module(module: ModuleContext) -> ModuleSummary:
    """Distill one parsed module into its :class:`ModuleSummary`."""
    from repro.tools.lint.rules import build_import_map, resolve_dotted

    imports = build_import_map(module.tree)
    summary = ModuleSummary(
        path=module.display_path,
        package_parts=list(module.package_parts),
        is_test_file=module.is_test_file,
        suppressions={
            str(line): sorted(rules)
            for line, rules in module.suppressions.items()
        },
    )

    # --- registries, trace events, flag() invariants (module level) ---
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id in _REGISTRY_NAMES:
                if isinstance(node.value, ast.Dict):
                    entries: Dict[str, Any] = {}
                    for key, value in zip(node.value.keys, node.value.values):
                        if not (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                        ):
                            continue
                        families = _registry_entry(value)
                        if families is not None:
                            entries[key.value] = [families, key.lineno]
                    summary.registries[target.id] = entries
                elif isinstance(node.value, (ast.Tuple, ast.List)):
                    values = _registry_entry(node.value)
                    if values is not None:
                        summary.registries[target.id] = {
                            "": [values, node.lineno]
                        }

    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    t = stmt.targets[0]
                    if isinstance(t, ast.Name) and t.id == "event":
                        value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ) and stmt.target.id == "event":
                    value = stmt.value
                if (
                    value is not None
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value  # base-class placeholder tag is ""
                ):
                    summary.trace_events[value.value] = node.lineno
            summary.classes[node.name] = ClassSummary(
                name=node.name,
                lineno=node.lineno,
                methods={
                    stmt.name: _summarize_method(stmt)
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                },
            )
        elif isinstance(node, ast.Call):
            name = _callee_name(node.func)
            if (
                name == "flag"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                summary.flag_invariants.append(node.args[0].value)
            # report.extra.update({...}) — counter keys into the report.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == "extra"
                and node.args
                and isinstance(node.args[0], ast.Dict)
            ):
                for key in node.args[0].keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        summary.extra_writes.append([key.value, key.lineno])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "extra"
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    summary.extra_writes.append([target.slice.value, target.lineno])

    # --- functions: hot registry, RNG sites, call sites -------------
    class_stack: List[str] = []

    def visit_scope(
        body: Sequence[ast.stmt], qual: str, owner_class: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                visit_scope(stmt.body, _join(qual, stmt.name), stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = _join(qual, stmt.name)
                if module.is_hot(stmt):
                    summary.hot_functions.append(fq)
                _scan_function(stmt, fq, owner_class)
                visit_scope(stmt.body, fq, None)

    def _join(qual: str, name: str) -> str:
        return "{}.{}".format(qual, name) if qual else name

    def _scan_function(
        func: ast.FunctionDef, qualname: str, owner_class: Optional[str]
    ) -> None:
        params = _function_params(func, method=owner_class is not None)
        env: Dict[str, ast.expr] = {}
        # Straight-line local bindings, for tracing digest variables.
        for node in _walk_own_scope(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name) and t.id not in env:
                    env[t.id] = node.value
        classifier = _SeedClassifier(env, params, imports)
        callee = (
            owner_class
            if owner_class is not None and func.name == "__init__"
            else func.name
        )
        for node in _walk_own_scope(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            name = _callee_name(node.func)
            if dotted in _RNG_CONSTRUCTORS or name == "stream_rng":
                if name == "stream_rng" or (
                    dotted is not None and dotted.endswith("stream_rng")
                ):
                    kind, label = classifier._classify_call(node, 0)
                elif not node.args:
                    continue  # unseeded — RL001's finding, not RL012's
                else:
                    kind, label = classifier.classify(node.args[0])
                param_index = (
                    params.index(label)
                    if kind == "param" and label in params
                    else -1
                )
                summary.rng_sites.append(
                    RngSite(
                        line=node.lineno,
                        col=node.col_offset,
                        end_line=getattr(node, "end_lineno", None) or node.lineno,
                        kind=kind,
                        label=label,
                        func=qualname,
                        callee=callee,
                        param_index=param_index,
                    )
                )

    visit_scope(module.tree.body, "", None)

    # Call sites for seed tainting (module-wide, one walk).
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_name(node.func)
        if name is None or (not node.args and not node.keywords):
            continue
        summary.call_sites.append(
            CallSite(
                callee=name,
                line=node.lineno,
                col=node.col_offset,
                arg_seedish=[_is_seedish(a) for a in node.args],
                kwarg_seedish={
                    kw.arg: _is_seedish(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                },
            )
        )
    del class_stack
    return summary


# ----------------------------------------------------------------------
# ProjectContext + ProjectRule (pass 2)
# ----------------------------------------------------------------------


class ProjectContext:
    """Cross-module view assembled from pass-1 summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        #: display path -> summary, iteration-stable (sorted by path).
        self.modules: Dict[str, ModuleSummary] = {
            s.path: s for s in sorted(summaries, key=lambda s: s.path)
        }

    def iter_modules(self) -> Iterator[ModuleSummary]:
        return iter(self.modules.values())

    def registry(self, name: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        """First module defining registry ``name`` -> (path, entries)."""
        for summary in self.iter_modules():
            if name in summary.registries:
                return summary.path, summary.registries[name]
        return None

    def is_suppressed(self, finding: Finding) -> bool:
        summary = self.modules.get(finding.path)
        if summary is None:
            return False
        last = max(finding.line, finding.end_line)
        for line in range(finding.line, last + 1):
            rules = summary.suppressions.get(str(line))
            if rules is not None and (
                "ALL" in rules or finding.rule.upper() in rules
            ):
                return True
        return False


class ProjectRule:
    """Base class for whole-program rules (pass 2).

    Subclasses implement :meth:`check_project`, yielding findings against
    any module in the :class:`ProjectContext`.  ``scoped_packages`` and
    ``skip_test_files`` filter which modules' *facts* participate — use
    :meth:`module_in_scope` when iterating summaries.
    """

    rule_id: str = "RL998"
    title: str = ""
    rationale: str = ""
    scoped_packages: Optional[Tuple[str, ...]] = None
    skip_test_files: bool = True

    def module_in_scope(self, summary: ModuleSummary) -> bool:
        if summary.parse_error:
            return False
        if self.skip_test_files and summary.is_test_file:
            return False
        if self.scoped_packages is not None and not summary.in_packages(
            self.scoped_packages
        ):
            return False
        return True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Summary cache (content-hash keyed, one JSON document)
# ----------------------------------------------------------------------


def _lint_package_fingerprint() -> str:
    """Hash of the lint package's own sources.

    Editing a rule invalidates cached findings without a version bump —
    the analogue of ``repro.__version__`` in the scenario cache key,
    scoped to the code that actually computes lint results.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def rules_signature(rules: Sequence[Rule]) -> str:
    """Cache signature covering schema, lint sources, and the rule set."""
    payload = {
        "schema": SUMMARY_SCHEMA,
        "package": _lint_package_fingerprint(),
        "rules": sorted(r.rule_id for r in rules),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def lint_cache_disabled() -> bool:
    return bool(os.environ.get(_ENV_NO_CACHE))


def default_lint_cache_dir() -> Path:
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-lint"


class SummaryCache:
    """Disk cache of pass-1 results, keyed by file content hash.

    One JSON document maps display path -> {hash, sig, findings,
    summary}; a warm run whose tree is unchanged re-parses nothing.
    """

    def __init__(self, root: Optional[Any] = None) -> None:
        self.root = Path(root).expanduser() if root else default_lint_cache_dir()
        self.path = self.root / "summaries.json"
        self.hits = 0
        self.misses = 0
        self._data: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if isinstance(payload, dict):
                self._data = payload
        except (OSError, ValueError):
            self._data = {}

    def get(
        self, display_path: str, content_hash: str, sig: str
    ) -> Optional[Tuple[List[Finding], ModuleSummary]]:
        entry = self._data.get(display_path)
        if (
            entry is None
            or entry.get("hash") != content_hash
            or entry.get("sig") != sig
        ):
            self.misses += 1
            return None
        try:
            findings = [Finding(**f) for f in entry["findings"]]
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, summary

    def put(
        self,
        display_path: str,
        content_hash: str,
        sig: str,
        findings: Sequence[Finding],
        summary: ModuleSummary,
    ) -> None:
        self._data[display_path] = {
            "hash": content_hash,
            "sig": sig,
            "findings": [f.to_dict() for f in findings],
            "summary": summary.to_dict(),
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        # Lazy import: the lint package stays importable without pulling
        # in the simulation core at module load.
        from repro.core.atomicio import atomic_write_text

        atomic_write_text(self.path, json.dumps(self._data, sort_keys=True))
        self._dirty = False


# ----------------------------------------------------------------------
# lint_project — the two-pass entry point
# ----------------------------------------------------------------------


def _split_rules(
    rules: Optional[Sequence[Any]],
) -> Tuple[List[Rule], List[ProjectRule]]:
    if rules is None:
        from repro.tools.lint.project_rules import default_project_rules
        from repro.tools.lint.rules import default_rules

        return list(default_rules()), list(default_project_rules())
    module_rules = [r for r in rules if isinstance(r, Rule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return module_rules, project_rules


def _analyze_one(
    path: Path, display: str, source: str, module_rules: Sequence[Rule]
) -> Tuple[List[Finding], ModuleSummary]:
    """Pass 1 for one file: parse, run module rules, summarize."""
    try:
        module = ModuleContext(path, source, display_path=display)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR_RULE,
            message="syntax error: {}".format(exc.msg),
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
        )
        return [finding], ModuleSummary(path=display, parse_error=True)
    findings: List[Finding] = []
    for rule in module_rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings, summarize_module(module)


def lint_project(
    paths: Iterable[Any],
    rules: Optional[Sequence[Any]] = None,
    *,
    root: Optional[Path] = None,
    cache: Any = True,
    baseline: Optional[Any] = None,
    exclude: Sequence[str] = (),
    workers: int = 0,
) -> LintReport:
    """Run pass 1 (per-module, cached) and pass 2 (project rules).

    ``rules`` may mix :class:`Rule` and :class:`ProjectRule` instances
    (None = the full default set of both).  ``cache`` is True (default
    location), False, a directory path, or a :class:`SummaryCache`;
    ``REPRO_NO_LINT_CACHE`` force-disables.  ``baseline`` names a JSON
    findings file whose entries are suppressed (only *new* findings
    fail).  ``workers`` > 1 analyzes cache-miss files in a thread pool;
    output order is deterministic regardless.
    """
    module_rules, project_rules = _split_rules(rules)
    files = iter_python_files([Path(p) for p in paths], exclude)
    base_root = Path(root) if root is not None else None

    cache_obj: Optional[SummaryCache]
    if lint_cache_disabled() or cache is False or cache is None:
        cache_obj = None
    elif isinstance(cache, SummaryCache):
        cache_obj = cache
    elif cache is True:
        cache_obj = SummaryCache()
    else:
        cache_obj = SummaryCache(cache)
    sig = rules_signature(module_rules + project_rules) if cache_obj else ""

    # Serial cache probe; misses queue for (optionally parallel) parsing.
    results: List[Optional[Tuple[List[Finding], ModuleSummary]]] = []
    pending: List[Tuple[int, Path, str, str]] = []  # (slot, path, display, src)
    hits = 0
    for path in files:
        display = display_path_for(path, base_root)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FileNotFoundError("cannot read {}: {}".format(path, exc)) from exc
        if cache_obj is not None:
            content_hash = hashlib.sha256(source.encode("utf-8")).hexdigest()
            cached = cache_obj.get(display, content_hash, sig)
            if cached is not None:
                results.append(cached)
                hits += 1
                continue
        results.append(None)
        pending.append((len(results) - 1, path, display, source))

    def run_one(task: Tuple[int, Path, str, str]) -> None:
        slot, path, display, source = task
        results[slot] = _analyze_one(path, display, source, module_rules)

    if workers and workers > 1 and len(pending) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(run_one, pending))
    else:
        for task in pending:
            run_one(task)

    findings: List[Finding] = []
    summaries: List[ModuleSummary] = []
    if cache_obj is not None:
        for (slot, path, display, source) in pending:
            outcome = results[slot]
            if outcome is None:  # pragma: no cover - worker died
                continue
            content_hash = hashlib.sha256(source.encode("utf-8")).hexdigest()
            cache_obj.put(display, content_hash, sig, outcome[0], outcome[1])
    for outcome in results:
        if outcome is None:  # pragma: no cover - defensive
            continue
        findings.extend(outcome[0])
        summaries.append(outcome[1])
    if cache_obj is not None:
        cache_obj.save()

    # Pass 2: project rules over the assembled context.
    project = ProjectContext(summaries)
    for rule in project_rules:
        for finding in rule.check_project(project):
            if not project.is_suppressed(finding):
                findings.append(finding)

    findings.sort(key=Finding.sort_key)
    baselined = 0
    if baseline is not None:
        known = (
            baseline
            if isinstance(baseline, frozenset)
            else load_baseline(Path(baseline))
        )
        findings, baselined = apply_baseline(findings, known)
    return LintReport(
        findings=findings,
        files_checked=len(files),
        modules_reparsed=len(pending),
        cache_hits=hits,
        baselined=baselined,
    )
