"""Developer tooling that ships with the reproduction.

Currently one tool lives here: :mod:`repro.tools.lint` ("reprolint"), a
static-analysis pass that enforces the simulation's domain invariants
(determinism, units discipline, picklability).  It is wired into the CLI
as ``repro lint`` and into CI as a gating job.
"""
