"""The paper's contribution: power-aware virtualization management.

A periodic controller consolidates VMs onto the fewest hosts that satisfy
predicted demand plus headroom, parks the surplus hosts in a low-power
state, and wakes them — reactively within one watchdog tick, or
proactively on predicted growth.  Because the park state's exit latency is
seconds (S3) rather than minutes (S5 boot), the controller can run with
aggressive thresholds at negligible performance cost — the paper's thesis.

Entry points:

* :func:`~repro.core.runner.run_scenario` — wire up and run a full
  simulation, returning a :class:`~repro.telemetry.SimReport`.
* :mod:`~repro.core.policies` — the policy presets every experiment
  compares (AlwaysOn/DRM, S5, S3, Hybrid, plus analytic oracle bounds).
"""

from repro.core.cache import ResultCache, Uncacheable, scenario_digest
from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)
from repro.core.config import ManagerConfig
from repro.core.manager import ManagementLog, PowerAwareManager
from repro.core.plane.actuator import WakeArbiter
from repro.core.plane.neat import NeatManager
from repro.core.parallel import (
    ScenarioArtifacts,
    ScenarioSpec,
    branch_scenarios,
    run_scenarios,
    snapshot_result,
)
from repro.core.policies import (
    POLICIES,
    always_on,
    hybrid_policy,
    policy_by_name,
    s3_policy,
    s5_policy,
)
from repro.core.predictor import (
    DemandPredictor,
    EwmaPredictor,
    HistoryPredictor,
    PeakWindowPredictor,
    ReactivePredictor,
    make_predictor,
)
from repro.core.runner import (
    ScenarioResult,
    branch_scenario,
    resume_scenario,
    run_scenario,
)

__all__ = [
    "CheckpointError",
    "DemandPredictor",
    "EwmaPredictor",
    "HistoryPredictor",
    "ManagementLog",
    "ManagerConfig",
    "NeatManager",
    "PeakWindowPredictor",
    "POLICIES",
    "PowerAwareManager",
    "ReactivePredictor",
    "ResultCache",
    "ScenarioArtifacts",
    "ScenarioResult",
    "ScenarioSpec",
    "Uncacheable",
    "WakeArbiter",
    "always_on",
    "branch_scenario",
    "branch_scenarios",
    "hybrid_policy",
    "load_checkpoint",
    "make_predictor",
    "policy_by_name",
    "read_manifest",
    "resume_scenario",
    "run_scenario",
    "run_scenarios",
    "s3_policy",
    "s5_policy",
    "save_checkpoint",
    "scenario_digest",
    "snapshot_result",
]
