"""Scenario runner: wire every subsystem together and simulate.

This is the top-level API examples and benchmarks use::

    from repro.core import run_scenario, s3_policy

    result = run_scenario(s3_policy(), n_hosts=20, n_vms=80,
                          horizon_s=48 * 3600, seed=7)
    print(result.report.row())
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.checkpoint import (
    CheckpointCoordinator,
    capture_resume_records,
    load_checkpoint,
    rebind_config,
    restore_processes,
    save_checkpoint,
)
from repro.core.config import ManagerConfig
from repro.core.manager import PowerAwareManager
from repro.core.plane.neat import NeatManager
from repro.datacenter.cluster import Cluster
from repro.datacenter.faults import FaultModel, MigrationFaultInjector
from repro.datacenter.vm import Priority, VM
from repro.migration.engine import MigrationEngine
from repro.migration.model import PreCopyModel
from repro.power.dvfs import DvfsModel
from repro.power.profiles import ServerPowerProfile
from repro.prototype.calibration import make_prototype_blade_profile
from repro.sim import Environment
from repro.telemetry.metrics import SimReport, build_report
from repro.telemetry.sampler import ClusterSampler
from repro.telemetry.stream import StreamingMetricsSink
from repro.telemetry.trace import TraceBuffer
from repro.telemetry.view import StalenessModel, TelemetryFeed
from repro.workload.churn import ChurnGenerator
from repro.workload.fleet import FleetSpec, build_fleet


@dataclass
class ScenarioResult:
    """Everything a caller might want from a finished run."""

    report: SimReport
    cluster: Cluster
    sampler: ClusterSampler
    manager: PowerAwareManager
    engine: MigrationEngine
    env: Environment
    churn: Optional[ChurnGenerator] = None
    #: Decision trace (only when the scenario ran with ``trace=True``).
    trace: Optional[TraceBuffer] = None
    #: Wall-clock spent building the scenario (fleet generation, initial
    #: placement, subsystem wiring) before the first event is popped.
    setup_wall_s: float = 0.0
    #: Wall-clock spent inside ``env.run`` — the simulation-kernel time
    #: the F-series benchmark divides events by.
    sim_wall_s: float = 0.0
    #: In-simulation checkpoint coordinator (only when the scenario ran
    #: with ``checkpoint_every_s``): carries the saved paths/manifests.
    checkpoints: Optional[CheckpointCoordinator] = None


@dataclass
class LiveScenario:
    """A fully wired scenario: the checkpoint payload's object graph.

    Everything here is picklable at a quiescent point — the environment
    drops its event heap (captured separately as resume records), live
    process handles pickle as inert husks, and the streaming sink is
    detached by the sampler.  ``run_scenario`` builds one, drives it to
    the horizon and finalizes it; ``resume_scenario`` loads one from a
    checkpoint and does the same from the snapshot instant.
    """

    env: Environment
    config: ManagerConfig
    cluster: Cluster
    engine: MigrationEngine
    manager: PowerAwareManager
    sampler: ClusterSampler
    horizon_s: float
    seed: int
    churn: Optional[ChurnGenerator] = None
    feed: Optional[TelemetryFeed] = None
    trace: Optional[TraceBuffer] = None
    #: Extra scenario identity carried into checkpoint manifests.
    meta: Dict[str, Any] = field(default_factory=dict)


def _placement_failure(vm: VM, cluster: Cluster) -> str:
    """Explain *why* no host can take ``vm`` — name the failed constraint."""
    active = [h for h in cluster.hosts if h.is_active]
    if not active:
        return (
            "fleet does not fit: {} cannot be placed — no host is ACTIVE "
            "(cluster states: {})".format(
                vm.name,
                ", ".join(sorted({h.state.value for h in cluster.hosts})),
            )
        )
    group = vm.anti_affinity_group
    mem_ok = [h for h in active if vm.mem_gb <= h.mem_free_gb + 1e-9]
    if not mem_ok:
        max_free = max(h.mem_free_gb for h in active)
        return (
            "fleet does not fit: {} needs {:g} GB but the best active host "
            "has only {:g} GB free".format(vm.name, vm.mem_gb, max_free)
        )
    if group is not None:
        return (
            "fleet does not fit: {} belongs to anti-affinity group {!r}, "
            "which already occupies every active host with {:g} GB free "
            "({} candidate(s))".format(vm.name, group, vm.mem_gb, len(mem_ok))
        )
    return (
        "fleet does not fit: {} ({:g} vCPU, {:g} GB) was rejected by every "
        "active host".format(vm.name, vm.vcpus, vm.mem_gb)
    )


def spread_placement(vms: List[VM], cluster: Cluster) -> None:
    """Initial worst-fit placement: spread VMs as a balanced DRM cluster.

    Largest VMs first, each onto the host with the most remaining vCPU
    budget — the steady state a load balancer would produce.

    Implemented as a lazy-deletion max-heap keyed ``(-budget, position)``
    instead of a per-VM scan over every host: ties pop the lowest
    inventory position, which is exactly the host ``max()`` over the
    inventory-ordered candidate scan used to return, so placements are
    unchanged.  Budgets only ever decrease, so a popped entry whose
    budget disagrees with the live table is stale and safely dropped.
    """
    hosts = cluster.hosts
    budgets = [h.cores for h in hosts]
    heap = [(-budgets[i], i) for i in range(len(hosts))]
    heapq.heapify(heap)
    for vm in sorted(vms, key=lambda v: v.vcpus, reverse=True):
        # Hosts that can't take this VM stay eligible for later (smaller)
        # VMs, so stash and re-push them rather than discarding.
        skipped = []
        placed = False
        while heap:
            entry = heapq.heappop(heap)
            neg_budget, pos = entry
            if -neg_budget != budgets[pos]:
                continue  # stale: superseded by a later placement
            host = hosts[pos]
            if host.is_active and host.fits(vm):
                cluster.add_vm(vm, host)
                budgets[pos] -= vm.vcpus
                heapq.heappush(heap, (-budgets[pos], pos))
                placed = True
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(heap, entry)
        if not placed:
            raise RuntimeError(_placement_failure(vm, cluster))


def build_scenario(
    config: ManagerConfig,
    n_hosts: int = 20,
    n_vms: int = 80,
    horizon_s: float = 48 * 3600.0,
    seed: int = 0,
    host_cores: float = 16.0,
    host_mem_gb: float = 128.0,
    profile: Optional[ServerPowerProfile] = None,
    fleet: Optional[List[VM]] = None,
    fleet_spec: Optional[FleetSpec] = None,
    epoch_s: float = 60.0,
    migration_model: Optional[PreCopyModel] = None,
    churn_rate_per_h: float = 0.0,
    churn_lifetime_s: float = 6 * 3600.0,
    fault_model: Optional[FaultModel] = None,
    telemetry_model: Optional[StalenessModel] = None,
    trace: bool = False,
    trace_maxlen: Optional[int] = None,
    bounded_series: bool = False,
) -> LiveScenario:
    """Wire every subsystem together and start the long-lived loops.

    This is :func:`run_scenario`'s setup phase, split out so checkpoint
    resume and branch can share the drive/finalize phases against a
    restored :class:`LiveScenario` instead of a freshly built one.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    env = Environment()
    buf: Optional[TraceBuffer] = None
    if trace:
        buf = (
            TraceBuffer(maxlen=trace_maxlen, label=config.name)
            if trace_maxlen is not None
            else TraceBuffer(label=config.name)
        )
    profile = profile or make_prototype_blade_profile()
    dvfs = DvfsModel() if config.enable_dvfs else None
    cluster = Cluster.homogeneous(
        env,
        profile,
        n_hosts,
        cores=host_cores,
        mem_gb=host_mem_gb,
        dvfs=dvfs,
        dvfs_target=config.dvfs_target,
        faults=fault_model,
        fault_seed=seed,
        trace=buf,
    )
    if fleet is None:
        spec = fleet_spec or FleetSpec(n_vms=n_vms, horizon_s=min(horizon_s, 7 * 86_400.0))
        fleet = build_fleet(spec, seed=seed)
    spread_placement(fleet, cluster)
    if buf is not None:
        for vm in fleet:
            if vm.host is not None:
                buf.admission(env.now, "initial-place", vm.name, host=vm.host.name)

    injector = None
    if fault_model is not None and fault_model.migration is not None:
        injector = MigrationFaultInjector(fault_model.migration, seed=seed)
    feed = None
    if telemetry_model is not None:
        feed = TelemetryFeed(telemetry_model, seed=seed)
    engine = MigrationEngine(env, model=migration_model, trace=buf, faults=injector)
    manager: PowerAwareManager
    if config.plane == "neat":
        manager = NeatManager(
            env, cluster, engine, config, trace=buf, telemetry=feed,
            seed=seed,
        )
    else:
        manager = PowerAwareManager(
            env, cluster, engine, config, trace=buf, telemetry=feed
        )
    sampler = ClusterSampler(
        env,
        cluster,
        epoch_s=epoch_s,
        feed=feed,
        headroom_ceiling=config.balance.dst_ceiling,
        bounded=bounded_series,
    )
    manager.tick_aggregates = sampler
    sampler.start()
    manager.start()

    churn = None
    if churn_rate_per_h > 0:
        churn = ChurnGenerator(
            env,
            seed=seed + 1,
            admit=manager.admit,
            retire=manager.retire,
            arrival_rate_per_h=churn_rate_per_h,
            mean_lifetime_s=churn_lifetime_s,
            spec=fleet_spec or FleetSpec(n_vms=1, horizon_s=min(horizon_s, 7 * 86_400.0)),
        )
        churn.start()

    return LiveScenario(
        env=env,
        config=config,
        cluster=cluster,
        engine=engine,
        manager=manager,
        sampler=sampler,
        horizon_s=horizon_s,
        seed=seed,
        churn=churn,
        feed=feed,
        trace=buf,
    )


def finalize_scenario(
    live: LiveScenario,
    setup_wall_s: float = 0.0,
    sim_wall_s: float = 0.0,
    checkpoints: Optional[CheckpointCoordinator] = None,
) -> ScenarioResult:
    """Emit end-of-run trace markers and assemble the result/report."""
    env = live.env
    cluster = live.cluster
    engine = live.engine
    manager = live.manager
    sampler = live.sampler
    churn = live.churn
    feed = live.feed
    buf = live.trace
    config = live.config
    horizon_s = live.horizon_s
    if buf is not None:
        for h in cluster.hosts:
            buf.host_final(
                env.now, h.name, h.state.value, h.energy_j(),
                h.wake_failures, h.out_of_service,
            )
        buf.run_end(
            env.now,
            horizon_s=horizon_s,
            energy_kwh=cluster.energy_j() / 3.6e6,
            hosts=len(cluster.hosts),
            vms=cluster.vm_count,
            migrations_unfinished=engine.unfinished,
        )

    report = build_report(config.name, cluster, sampler, engine, horizon_s)
    # One pass over the sample history, not one per priority class.
    violation_by_class = sampler.violation_fraction_by_class()
    report.extra.update(
        {
            "reactive_wakes": float(manager.log.reactive_wakes),
            "wakes_requested": float(manager.log.wakes_requested),
            "parks_completed": float(manager.log.parks_completed),
            "evacuations_aborted": float(manager.log.evacuations_aborted),
            "balancer_moves": float(manager.log.balancer_moves),
            "mean_admission_wait_s": manager.log.mean_admission_wait_s(),
            "pending_admissions_end": float(manager.pending_admissions),
            "wake_failures": float(manager.log.wake_failures),
            "wake_retries": float(manager.log.wake_retries),
            "wake_rejections": float(manager.log.wake_rejections),
            "blacklists": float(manager.log.blacklists),
            "escalations": float(manager.log.escalations),
            "hosts_repaired": float(manager.log.hosts_repaired),
            "retires_unknown": float(manager.log.retires_unknown),
            "hosts_out_of_service": float(len(cluster.out_of_service_hosts())),
            "cap_deferrals": float(manager.log.cap_deferrals),
            "migrations_started": float(engine.started),
            "migrations_completed": float(engine.completed),
            "migrations_aborted": float(engine.aborted),
            "migrations_failed": float(engine.failed),
            "migration_retries": float(manager.log.migration_retries),
            "safe_mode_enters": float(manager.log.safe_mode_enters),
            "safe_mode_exits": float(manager.log.safe_mode_exits),
            "telemetry_dropped": float(feed.dropped if feed is not None else 0),
            "detector_reports": float(manager.log.detector_reports),
            "detector_reports_dropped": float(
                manager.log.detector_reports_dropped
            ),
            "violation_gold": violation_by_class[Priority.GOLD],
            "violation_silver": violation_by_class[Priority.SILVER],
            "violation_bronze": violation_by_class[Priority.BRONZE],
        }
    )
    if churn is not None:
        report.extra.update(
            {
                "churn_arrived": float(churn.arrived),
                "churn_rejected": float(churn.rejected),
                "churn_departed": float(churn.departed),
            }
        )
    return ScenarioResult(
        report=report,
        cluster=cluster,
        sampler=sampler,
        manager=manager,
        engine=engine,
        env=env,
        churn=churn,
        trace=buf,
        setup_wall_s=setup_wall_s,
        sim_wall_s=sim_wall_s,
        checkpoints=checkpoints,
    )


def _make_save_fn(live: LiveScenario, sink: Optional[StreamingMetricsSink]):
    """Bind the checkpoint writer for one live scenario.

    Capture runs *before* any file I/O, so a veto costs nothing; the
    streaming sink's durable offset is taken only once quiescence is
    proven, keeping the manifest's truncation point consistent with the
    pickled window count.
    """

    def save(path: Path) -> Dict[str, Any]:
        records = capture_resume_records(live.env)
        meta: Dict[str, Any] = {
            "sim_time_s": live.env.now,
            "policy": live.config.name,
            "plane": live.config.plane,
            "seed": live.seed,
            "horizon_s": live.horizon_s,
        }
        meta.update(live.meta)
        if sink is not None:
            meta["stream_path"] = str(sink.path)
            meta["stream_windows"] = sink.windows
            meta["stream_offset"] = sink.flush_offset()
        return save_checkpoint(path, live, records, meta)

    return save


def _drive(
    live: LiveScenario,
    setup_wall_s: float,
    checkpoint_every_s: Optional[float],
    checkpoint_dir: Optional[Union[str, Path]],
    sink: Optional[StreamingMetricsSink],
) -> ScenarioResult:
    """Run a wired scenario to its horizon and finalize it."""
    coordinator = None
    if checkpoint_every_s is not None:
        if checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every_s requires a checkpoint_dir"
            )
        coordinator = CheckpointCoordinator(
            live.env,
            checkpoint_every_s,
            checkpoint_dir,
            _make_save_fn(live, sink),
        )
        coordinator.start()
    t_run0 = time.perf_counter()  # reprolint: disable=RL002
    live.env.run(until=live.horizon_s)
    t_run1 = time.perf_counter()  # reprolint: disable=RL002
    result = finalize_scenario(
        live,
        setup_wall_s=setup_wall_s,
        sim_wall_s=t_run1 - t_run0,
        checkpoints=coordinator,
    )
    if sink is not None:
        sink.close()
    return result


def run_scenario(
    config: ManagerConfig,
    n_hosts: int = 20,
    n_vms: int = 80,
    horizon_s: float = 48 * 3600.0,
    seed: int = 0,
    host_cores: float = 16.0,
    host_mem_gb: float = 128.0,
    profile: Optional[ServerPowerProfile] = None,
    fleet: Optional[List[VM]] = None,
    fleet_spec: Optional[FleetSpec] = None,
    epoch_s: float = 60.0,
    migration_model: Optional[PreCopyModel] = None,
    churn_rate_per_h: float = 0.0,
    churn_lifetime_s: float = 6 * 3600.0,
    fault_model: Optional[FaultModel] = None,
    telemetry_model: Optional[StalenessModel] = None,
    trace: bool = False,
    trace_maxlen: Optional[int] = None,
    checkpoint_every_s: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    stream: Optional[Union[str, Path]] = None,
    bounded_series: bool = False,
) -> ScenarioResult:
    """Run one managed-cluster simulation end to end.

    Args:
        config: the management policy (see :mod:`repro.core.policies`).
        n_hosts / host_cores / host_mem_gb: homogeneous cluster shape.
        n_vms: fleet size when ``fleet`` is not given.
        horizon_s: simulated duration.
        seed: drives fleet generation and churn.
        profile: server power profile (default: the prototype blade).
        fleet: explicit VM list (overrides ``n_vms``/``fleet_spec``).
        fleet_spec: fleet shape (default: the enterprise mix).
        epoch_s: telemetry/demand refresh interval.
        migration_model: pre-copy fabric parameters.
        churn_rate_per_h: VM arrivals per hour (0 disables churn).
        fault_model: optional fault injection — wake failures and, via
            its ``migration`` field, mid-copy migration failures (see
            :class:`repro.datacenter.FaultModel`).
        telemetry_model: optional staleness/dropout pipeline between the
            sampler and the manager (see
            :class:`repro.telemetry.view.StalenessModel`); None keeps the
            manager on ground truth.
        trace: record a structured decision trace (see
            :mod:`repro.telemetry.trace`) into ``result.trace``.
        trace_maxlen: bounded-buffer capacity (None = library default).
        checkpoint_every_s: write a crash-safe checkpoint at every
            multiple of this simulated interval (see
            :mod:`repro.core.checkpoint`); requires ``checkpoint_dir``.
        checkpoint_dir: directory receiving the checkpoint files.
        stream: emit per-window metrics incrementally to this JSONL path
            (see :mod:`repro.telemetry.stream`).
        bounded_series: keep O(1) incremental series aggregates instead
            of every sample — flat RAM over arbitrary horizons (pair
            with ``stream`` to keep the raw windows).
    """
    t_setup0 = time.perf_counter()  # reprolint: disable=RL002
    live = build_scenario(
        config,
        n_hosts=n_hosts,
        n_vms=n_vms,
        horizon_s=horizon_s,
        seed=seed,
        host_cores=host_cores,
        host_mem_gb=host_mem_gb,
        profile=profile,
        fleet=fleet,
        fleet_spec=fleet_spec,
        epoch_s=epoch_s,
        migration_model=migration_model,
        churn_rate_per_h=churn_rate_per_h,
        churn_lifetime_s=churn_lifetime_s,
        fault_model=fault_model,
        telemetry_model=telemetry_model,
        trace=trace,
        trace_maxlen=trace_maxlen,
        bounded_series=bounded_series,
    )
    sink = None
    if stream is not None:
        sink = StreamingMetricsSink(stream, label=config.name)
        live.sampler.attach_sink(sink)
    t_run0 = time.perf_counter()  # reprolint: disable=RL002
    return _drive(
        live, t_run0 - t_setup0, checkpoint_every_s, checkpoint_dir, sink
    )


def resume_scenario(
    checkpoint: Union[str, Path],
    checkpoint_every_s: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    stream: Optional[Union[str, Path]] = None,
) -> ScenarioResult:
    """Resume a checkpointed run and drive it to its original horizon.

    The resumed run's decision trace is byte-identical to the
    uninterrupted run's (the determinism oracle enforced by the
    differential and crash-injection suites).  ``stream`` re-attaches
    the streaming sink: the file is truncated back to the checkpoint's
    fsynced offset, deduplicating windows the crashed run re-emitted.
    """
    t_setup0 = time.perf_counter()  # reprolint: disable=RL002
    live, records, manifest = load_checkpoint(checkpoint)
    sink = None
    if stream is not None:
        if "stream_offset" not in manifest:
            raise ValueError(
                "checkpoint {} was not taken from a streaming run; "
                "cannot resume its stream".format(checkpoint)
            )
        sink = StreamingMetricsSink(
            stream,
            label=live.config.name,
            resume_offset=int(manifest["stream_offset"]),
            resume_windows=int(manifest["stream_windows"]),
        )
        live.sampler.attach_sink(sink)
    restore_processes(live.env, records)
    t_run0 = time.perf_counter()  # reprolint: disable=RL002
    return _drive(
        live, t_run0 - t_setup0, checkpoint_every_s, checkpoint_dir, sink
    )


def branch_scenario(
    checkpoint: Union[str, Path],
    config: ManagerConfig,
    horizon_s: Optional[float] = None,
) -> ScenarioResult:
    """Fan one warm checkpoint out under a different policy.

    Loads the checkpoint, rebinds the management plane to ``config``
    (policy parameters only — plane architecture and DVFS wiring must
    match, see :func:`repro.core.checkpoint.rebind_config`) and drives
    the run to ``horizon_s`` (default: the original horizon).  This is
    the SleepScale-style amortization: one warm-up, many policy
    variants.
    """
    t_setup0 = time.perf_counter()  # reprolint: disable=RL002
    live, records, _ = load_checkpoint(checkpoint)
    rebind_config(live.manager, config)
    live.config = config
    if horizon_s is not None:
        if horizon_s <= live.env.now:
            raise ValueError(
                "branch horizon {}s is not after the checkpoint "
                "instant {}s".format(horizon_s, live.env.now)
            )
        live.horizon_s = float(horizon_s)
    restore_processes(live.env, records)
    t_run0 = time.perf_counter()  # reprolint: disable=RL002
    return _drive(live, t_run0 - t_setup0, None, None, None)
