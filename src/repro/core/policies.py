"""Named policy presets — the comparison set of every experiment.

The presets differ in more than the park state: slow wake-up *forces*
conservatism (long hysteresis, big headroom, peak-tracking prediction),
which is precisely why traditional S5-based power management saves less
and still hurts performance.  The S3 preset can afford aggression.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import ManagerConfig
from repro.power.states import PowerState


def always_on() -> ManagerConfig:
    """Base DRM: balancing and admission only; every host stays active."""
    return ManagerConfig(name="AlwaysOn", enable_power_mgmt=False)


def s3_policy() -> ManagerConfig:
    """The paper's proposal: aggressive consolidation into S3 sleep."""
    return ManagerConfig(
        name="S3-PM",
        park_state=PowerState.SLEEP,
        park_delay_rounds=1,
        headroom=0.10,
        predictor="ewma",
        max_parks_per_round=2,
    )


def s5_policy() -> ManagerConfig:
    """Traditional power management: full shutdown, conservative knobs.

    The long boot latency forces a peak-tracking predictor, a 25 %
    headroom, and a 4-round park delay — otherwise violations explode
    (exactly what the F9 sensitivity sweep shows).
    """
    return ManagerConfig(
        name="S5-PM",
        park_state=PowerState.OFF,
        park_delay_rounds=4,
        headroom=0.25,
        predictor="peak",
        max_parks_per_round=1,
    )


def s5_aggressive_policy() -> ManagerConfig:
    """S5 with the S3 preset's aggressive knobs — the cautionary tale."""
    return ManagerConfig(
        name="S5-aggr",
        park_state=PowerState.OFF,
        park_delay_rounds=1,
        headroom=0.10,
        predictor="ewma",
        max_parks_per_round=2,
    )


def hybrid_policy(warm_pool_hosts: int = 2) -> ManagerConfig:
    """Warm S3 pool backed by deep S5 parking for sustained troughs."""
    return ManagerConfig(
        name="Hybrid",
        park_state=PowerState.SLEEP,
        deep_park_state=PowerState.OFF,
        warm_pool_hosts=warm_pool_hosts,
        park_delay_rounds=1,
        headroom=0.12,
        predictor="ewma",
    )


def dvfs_only() -> ManagerConfig:
    """No parking at all; every host runs an ondemand DVFS governor.

    The classic pre-consolidation answer to server energy — included so
    the A5 ablation can show why it cannot approach proportionality when
    idle power is ~half of peak.
    """
    return ManagerConfig(name="DVFS-only", enable_power_mgmt=False, enable_dvfs=True)


def s3_dvfs_policy() -> ManagerConfig:
    """The proposal plus DVFS on the hosts that stay active."""
    cfg = s3_policy()
    return cfg.with_overrides(name="S3+DVFS", enable_dvfs=True)


POLICIES: Dict[str, Callable[..., ManagerConfig]] = {
    "AlwaysOn": always_on,
    "S3-PM": s3_policy,
    "S5-PM": s5_policy,
    "S5-aggr": s5_aggressive_policy,
    "Hybrid": hybrid_policy,
    "DVFS-only": dvfs_only,
    "S3+DVFS": s3_dvfs_policy,
}


def policy_by_name(name: str) -> ManagerConfig:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            "unknown policy {!r}; choose from {}".format(name, sorted(POLICIES))
        ) from None


def standard_comparison() -> List[ManagerConfig]:
    """The policy set used by the headline benches (F5/F6/T3)."""
    return [always_on(), s5_policy(), s3_policy(), hybrid_policy()]
