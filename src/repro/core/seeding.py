"""Named RNG stream derivation from the scenario seed.

Every random draw in the simulation must be replayable from the scenario
seed alone, and insensitive to *other* subsystems' draw counts.  The
discipline (audited statically by reprolint RL012) is: each subsystem
derives a dedicated generator from a ``"{subsystem}:{seed}:{qualifier}"``
stream label, digested with :func:`zlib.crc32` (stable across processes,
unlike the salted builtin ``hash``).

:data:`RNG_STREAMS` is the authoritative label registry — the lint rule
reads it by AST, so adding a stream means adding a line here.  The
digest is byte-for-byte the historical
``zlib.crc32("{label}:{seed}:{qualifier}".format(...).encode())``
expression these call sites used inline, so certified golden traces and
benchmark thresholds are unaffected by routing through this module.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import numpy as np

#: Registered stream labels -> owning module.  One subsystem per label;
#: reprolint RL012 rejects unregistered or shared labels.
RNG_STREAMS = {
    "latency": "repro.datacenter.host",
    "repair": "repro.datacenter.faults",
    "migration": "repro.datacenter.faults",
    "telemetry": "repro.telemetry.view",
    "fuzz": "repro.fuzz.generate",
    "plane": "repro.core.plane.detectors",
}


def stream_digest(stream: str, seed: int, *qualifiers: Any) -> int:
    """32-bit digest of ``"{stream}:{seed}:{q1}:..."`` via crc32.

    ``qualifiers`` narrow the stream to an entity (host name, migration
    id, tick number) so entities draw independently.
    """
    label = ":".join([stream, str(seed)] + [str(q) for q in qualifiers])
    return zlib.crc32(label.encode("utf-8"))


def stream_rng(stream: str, seed: int, *qualifiers: Any) -> "np.random.Generator":
    """A numpy generator seeded from the named stream digest."""
    import numpy as np

    return np.random.default_rng(stream_digest(stream, seed, *qualifiers))


def stream_state(rng: "np.random.Generator") -> Any:
    """Extract a generator's full state for checkpointing.

    The returned object is plain dicts/ints (``bit_generator.state``), so
    it pickles and JSON-inspects cleanly.  Restoring it with
    :func:`restore_stream` reproduces the exact remaining draw sequence —
    the checkpoint layer relies on this to resume mid-stream without
    replaying consumed draws.
    """
    return rng.bit_generator.state


def restore_stream(rng: "np.random.Generator", state: Any) -> "np.random.Generator":
    """Install ``state`` (from :func:`stream_state`) into ``rng``.

    Returns ``rng`` for chaining.  numpy validates the bit-generator name
    inside ``state``, so restoring across generator types raises rather
    than silently diverging.
    """
    rng.bit_generator.state = state
    return rng
