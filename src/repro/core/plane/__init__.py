"""The composable management plane.

The monolithic ``repro.core.manager`` split into single-responsibility
components:

* :mod:`~repro.core.plane.observer` — stale-telemetry cluster observation;
* :mod:`~repro.core.plane.detectors` — neat-mode per-host local detectors
  and their delayed, lossy request channel;
* :mod:`~repro.core.plane.governor` — the hysteretic safe-mode governor;
* :mod:`~repro.core.plane.actuator` — the single-owner
  :class:`~repro.core.plane.actuator.WakeArbiter` power actuator (the
  overlapping-wake race fix lives here);
* :mod:`~repro.core.plane.arbiter` — the global arbiter
  (:class:`~repro.core.plane.arbiter.PowerAwareManager`);
* :mod:`~repro.core.plane.neat` — the decentralized
  :class:`~repro.core.plane.neat.NeatManager` plane.

``ManagerConfig.plane`` selects the architecture: ``"centralized"``
(default, byte-identical to the pre-split manager on fault-free runs) or
``"neat"``.
"""

from repro.core.plane.actuator import WakeArbiter
from repro.core.plane.arbiter import PowerAwareManager, _EvacuationTask
from repro.core.plane.detectors import (
    DetectorReport,
    LocalDetectorBank,
    RequestChannel,
)
from repro.core.plane.governor import SafeModeGovernor
from repro.core.plane.log import ManagementLog
from repro.core.plane.neat import NeatManager
from repro.core.plane.observer import ClusterObserver

__all__ = [
    "ClusterObserver",
    "DetectorReport",
    "LocalDetectorBank",
    "ManagementLog",
    "NeatManager",
    "PowerAwareManager",
    "RequestChannel",
    "SafeModeGovernor",
    "WakeArbiter",
    "_EvacuationTask",
]
