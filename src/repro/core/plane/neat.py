"""The decentralized ("neat") management plane.

OpenStack-Neat-style split of the decision loop: per-host local
detectors classify their own utilization and push
:class:`~repro.core.plane.detectors.DetectorReport` packets through a
delayed, lossy :class:`~repro.core.plane.detectors.RequestChannel`; the
global arbiter assembles its sizing picture from whatever reports
actually arrived.  Three regimes fall out:

* **healthy** — every active host's report for the current round has
  been delivered (the default zero-delay, zero-dropout channel): the
  global picture equals the centralized observation and the plane is
  byte-identical to ``plane="centralized"``;
* **degraded** — some reports are late or lost: demand is summed over
  the newest report per host, the staleness fed to the safe-mode
  governor is the *oldest* such report's age, and the shrink path is
  restricted to hosts with fresh underload evidence (never park a host
  the plane cannot see);
* **cold start** — nothing has ever arrived: fall back to the
  centralized observation, exactly like the telemetry feed's cold-start
  path.

The watchdog is untouched in neat mode — reacting to live per-host
overload *is* the local reactive path, in both architectures.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.core.config import ManagerConfig
    from repro.datacenter.cluster import Cluster
    from repro.datacenter.host import Host
    from repro.migration.engine import MigrationEngine
    from repro.sim.environment import Environment
    from repro.telemetry.trace import TraceBuffer
    from repro.telemetry.view import TelemetryFeed

from repro.core.plane.arbiter import PowerAwareManager
from repro.core.plane.detectors import (
    DetectorReport,
    LocalDetectorBank,
    RequestChannel,
)


class NeatManager(PowerAwareManager):
    """Global arbiter planning on local detector reports."""

    def __init__(
        self,
        env: "Environment",
        cluster: "Cluster",
        engine: "MigrationEngine",
        config: Optional["ManagerConfig"] = None,
        trace: Optional["TraceBuffer"] = None,
        telemetry: Optional["TelemetryFeed"] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(env, cluster, engine, config, trace, telemetry)
        cfg = self.config
        self.detectors = LocalDetectorBank(
            cluster,
            cfg.neat_underload_threshold,
            cfg.neat_overload_threshold,
        )
        self.channel = RequestChannel(
            cfg.neat_request_delay_s, cfg.neat_request_dropout, seed
        )
        self._round = 0
        #: Newest delivered report per host (the arbiter's working set).
        self._last_seen: Dict[str, DetectorReport] = {}
        #: True while the current consolidation round plans on stale
        #: reports; gates the conservative park restriction.
        self._degraded_round = False

    # ------------------------------------------------------------------
    # Plane hooks
    # ------------------------------------------------------------------

    def _plan_observation(self, now: float) -> Tuple[float, float]:
        """Assemble the global picture from delivered detector reports."""
        reports = self.detectors.scan(now)
        self.log.detector_reports += len(reports)
        dropped = self.channel.send(reports, self._round, now)
        self.log.detector_reports_dropped += dropped
        self._round += 1
        for report in self.channel.deliver(now):
            prev = self._last_seen.get(report.host)
            if prev is None or report.taken_at >= prev.taken_at:
                self._last_seen[report.host] = report
        active = [h.name for h in self.cluster.active_hosts()]
        fresh = all(
            name in self._last_seen
            and self._last_seen[name].taken_at == now
            for name in active
        )
        if fresh:
            # Complete current-round coverage: the decentralized picture
            # carries no less information than the centralized one, so
            # plan on the same observation path (bit-identical traces).
            self._degraded_round = False
            return self._observe(now)
        known = [
            self._last_seen[name]
            for name in active
            if name in self._last_seen
        ]
        if not known:
            # Cold start: no report has ever made it through the channel.
            self._degraded_round = False
            return self._observe(now)
        self._degraded_round = True
        demand = math.fsum(r.demand_cores for r in known)
        age = now - min(r.taken_at for r in known)
        return demand, age

    def _park_candidates(self) -> List["Host"]:
        candidates = super()._park_candidates()
        if not self._degraded_round:
            return candidates
        # Degraded round: only park on fresh *local* underload evidence.
        reported = self._last_seen
        return [
            h
            for h in candidates
            if h.name in reported and reported[h.name].underloaded
        ]
