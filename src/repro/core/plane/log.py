"""The management plane's shared action ledger.

Every plane component — the global arbiter, the wake actuator, the
safe-mode governor, the neat-mode detectors — books its actions into one
:class:`ManagementLog`, so the overhead experiments and the scenario
runner read a single source of truth regardless of which plane
architecture (``centralized`` or ``neat``) produced the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class ManagementLog:
    """Timestamped action ledger; the overhead experiments read this."""

    events: List[Tuple[float, str, str]] = field(default_factory=list)
    wakes_requested: int = 0
    wake_failures: int = 0
    wake_retries: int = 0
    blacklists: int = 0
    escalations: int = 0
    hosts_repaired: int = 0
    retires_unknown: int = 0
    migration_retries: int = 0
    safe_mode_enters: int = 0
    safe_mode_exits: int = 0
    reactive_wakes: int = 0
    cap_deferrals: int = 0
    #: Wake requests structurally rejected by the :class:`WakeArbiter`
    #: because an ``off->active`` transition for the same host was still
    #: in flight (the overlapping-wake race, fixed by construction).
    wake_rejections: int = 0
    parks_started: int = 0
    parks_completed: int = 0
    evacuations_started: int = 0
    evacuations_aborted: int = 0
    admissions: int = 0
    admissions_queued: int = 0
    admissions_rejected: int = 0
    admissions_timed_out: int = 0
    balancer_moves: int = 0
    #: Neat mode only: local detector reports emitted / lost in the
    #: delayed, lossy request channel on their way to the global arbiter.
    detector_reports: int = 0
    detector_reports_dropped: int = 0
    #: Seconds each queued admission waited for capacity.
    admission_waits_s: List[float] = field(default_factory=list)
    #: Structured watchdog interventions: ``(t, trigger, shortfall_cores)``
    #: where trigger is ``"aggregate"`` or ``"host-overload"``.  The bare
    #: ``reactive-wake`` text lines in :attr:`events` carry the same data
    #: only as prose; tests and the trace layer read this field.
    reactive_wake_events: List[Tuple[float, str, float]] = field(
        default_factory=list
    )

    def record(self, t: float, kind: str, detail: str = "") -> None:
        self.events.append((t, kind, detail))

    def mean_admission_wait_s(self) -> float:
        waits = self.admission_waits_s
        return sum(waits) / len(waits) if waits else 0.0
