"""The management plane's eyes: stale-telemetry cluster observation.

The observer is the only plane component that reads cluster state for
*planning* purposes.  It wraps the :class:`~repro.telemetry.view.TelemetryFeed`
(delayed, lossy snapshots) so the arbiter and the safe-mode governor
consume one consistent picture — and one honest staleness figure —
instead of each reaching into the cluster directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from repro.datacenter.cluster import Cluster
    from repro.migration.engine import MigrationEngine
    from repro.telemetry.view import TelemetryFeed


class ClusterObserver:
    """Single source of the (possibly stale) picture the plane plans on."""

    def __init__(
        self,
        cluster: "Cluster",
        engine: "MigrationEngine",
        telemetry: Optional["TelemetryFeed"],
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.telemetry = telemetry

    def observe(self, now: float) -> Tuple[float, float]:
        """``(demand_cores, telemetry_age_s)`` the manager plans with.

        Without a telemetry feed the manager reads ground truth (age
        zero), exactly as before.  With one, sizing decisions use the
        newest *visible* snapshot — which may be arbitrarily stale under
        the staleness model — so grow/shrink can be wrong-but-plausible;
        the live per-host checks elsewhere (watchdog overload trigger,
        stale-plan cancellation, admission fitting) reconcile the plan
        with reality when they disagree.
        """
        if self.telemetry is None:
            return self.cluster.demand_cores(now), 0.0
        view = self.telemetry.view(now)
        if view is None:
            # Cold start: nothing has arrived yet.  Plan on ground truth
            # but report the age honestly so the governor can react.
            return self.cluster.demand_cores(now), now
        return view.demand_cores, view.age_s(now)

    def observed_failure_rate(
        self, now: float, window_s: float
    ) -> Tuple[float, int]:
        """``(failure_fraction, failures)`` over the trailing window.

        The engine appends records in finish-time order, so one backward
        scan bounded by the window suffices.
        """
        failed = 0
        total = 0
        for record in reversed(self.engine.records):
            if record.start_s + record.duration_s < now - window_s:
                break
            total += 1
            if record.failed:
                failed += 1
        return (failed / total if total else 0.0, failed)
