"""The global arbiter: placement, sizing, park/wake arbitration.

This is the management plane's *global* half — the decision loops that
need a cluster-wide view.  Two cooperating loops drive the cluster:

* the **consolidation loop** (every ``period_s``): predicts demand, sizes
  the active-host set with headroom, evacuates-and-parks surplus hosts
  (after a hysteresis delay), wakes hosts ahead of predicted growth, and
  runs the DRM load balancer;
* the **watchdog loop** (every ``watchdog_period_s``): reacts instantly to
  capacity shortfall — first by cancelling in-flight evacuations (free
  capacity), then by waking parked hosts — and drains the pending
  admission queue.

The arbiter never touches host power state directly: every wake and park
goes through the single-owner :class:`~repro.core.plane.actuator.WakeArbiter`,
observation goes through the
:class:`~repro.core.plane.observer.ClusterObserver`, and the freeze
decision lives in the
:class:`~repro.core.plane.governor.SafeModeGovernor`.  Subclasses (the
neat-mode plane) override :meth:`PowerAwareManager._plan_observation`
and :meth:`PowerAwareManager._park_candidates` to source the global view
from per-host detector reports instead.

With ``enable_power_mgmt=False`` only admission and balancing remain,
which is exactly the base-DRM comparison point of the paper.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.sim.process import Process
    from repro.telemetry.sampler import ClusterSampler
    from repro.telemetry.trace import TraceBuffer
    from repro.telemetry.view import TelemetryFeed

from repro.core.config import ManagerConfig
from repro.core.plane.actuator import WakeArbiter
from repro.core.plane.governor import SafeModeGovernor
from repro.core.plane.log import ManagementLog
from repro.core.plane.observer import ClusterObserver
from repro.core.predictor import make_predictor
from repro.datacenter.cluster import Cluster
from repro.datacenter.host import Host
from repro.datacenter.recovery import WakeScoreboard
from repro.datacenter.vm import VM
from repro.migration.engine import MigrationEngine
from repro.placement.balancer import LoadBalancer
from repro.placement.evacuation import plan_evacuation
from repro.power.states import PowerState
from repro.sim import ResumeSpec


class _EvacuationTask:
    """Book-keeping for one evacuate-then-park operation."""

    def __init__(self, host: Host, plan: List[Tuple[VM, Host]]) -> None:
        self.host = host
        self.plan = plan
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class PowerAwareManager:
    """End-to-end controller binding prediction, placement and power."""

    def __init__(
        self,
        env: "Environment",
        cluster: Cluster,
        engine: MigrationEngine,
        config: Optional[ManagerConfig] = None,
        trace: Optional["TraceBuffer"] = None,
        telemetry: Optional["TelemetryFeed"] = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.engine = engine
        self.config = config or ManagerConfig()
        self.predictor = make_predictor(self.config.predictor)
        self.balancer = LoadBalancer(self.config.balance)
        self.log = ManagementLog()
        #: Decision-trace sink; None disables tracing at zero cost.
        self._trace = trace
        #: Telemetry pipeline the manager plans against; None reads
        #: ground truth directly (see :mod:`repro.telemetry.view`).
        self.telemetry = telemetry
        self._pending: List[Tuple[VM, float]] = []
        self._evacs: Dict[str, _EvacuationTask] = {}
        self._surplus_rounds = 0
        self._started = False
        cfg = self.config
        #: Per-host wake-failure history driving retry backoff and
        #: blacklisting (see :mod:`repro.datacenter.recovery`).
        self.scoreboard = WakeScoreboard(
            backoff_base_s=cfg.wake_backoff_base_s,
            backoff_max_s=cfg.wake_backoff_max_s,
            blacklist_after_failures=cfg.blacklist_after_failures,
            blacklist_hold_s=cfg.blacklist_hold_s,
        )
        #: The plane's eyes: one consistent (possibly stale) picture.
        self.observer = ClusterObserver(cluster, engine, telemetry)
        #: Degradation governor owning the consolidation freeze.
        self.governor = SafeModeGovernor(
            self.config, self.log, self.observer, trace
        )
        #: Single-owner power actuator: every wake/park goes through it,
        #: and it rejects overlapping wakes structurally.
        self.arbiter = WakeArbiter(
            env, self.log, self.scoreboard, trace,
            on_settled=self._drain_pending,
        )
        #: Consecutive watchdog ticks with an unresolved shortfall
        #: (escalation counter).
        self._shortfall_ticks = 0
        #: Memoized power-cap capacity: the inputs (cap, min-active floor,
        #: host inventory) are fixed per run, so the sort in
        #: :meth:`_cap_capacity_cores` runs once instead of per tick.
        self._cap_cores_key: Optional[Tuple[float, int]] = None
        self._cap_cores_value = 0.0
        #: Optional sampler whose tick walk pre-aggregates the watchdog's
        #: overload / free-headroom sums (wired by the scenario runner).
        #: The shared-event ordering guarantees the sampler's callback
        #: runs immediately before the watchdog's at coincident instants,
        #: with no state change in between, so the sums are exactly what
        #: the inventory scans would recompute.
        self.tick_aggregates: Optional["ClusterSampler"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch both control loops."""
        if self._started:
            raise RuntimeError("manager already started")
        self._started = True
        self.env.process(
            self._consolidation_loop(),
            ckpt=ResumeSpec(self, "_consolidation_loop"),
        )
        self.env.process(
            self._watchdog_loop(), ckpt=ResumeSpec(self, "_watchdog_loop")
        )

    def _consolidation_loop(
        self, resume_at: Optional[float] = None
    ) -> Generator["Event", Any, None]:
        # Deliberately NOT coalesced: evaluate() spawns wake/evacuation
        # processes whose urgent start events must run before any
        # same-instant sampler/watchdog tick observes the cluster — a
        # shared event would run those later waiters in the same step,
        # before the spawned processes begin (e.g. the watchdog would
        # see a host still parked and wake it a second time).
        wait = (
            self.env.timeout_at(resume_at)
            if resume_at is not None
            else self.env.timeout(self.config.period_s)
        )
        while True:
            yield wait
            self.evaluate()
            wait = self.env.timeout(self.config.period_s)

    def _watchdog_loop(
        self, resume_at: Optional[float] = None
    ) -> Generator["Event", Any, None]:
        wait = (
            self.env.shared_timeout_at(resume_at)
            if resume_at is not None
            else self.env.shared_timeout(self.config.watchdog_period_s)
        )
        while True:
            yield wait
            self.react_to_shortfall()
            self._drain_pending()
            wait = self.env.shared_timeout(self.config.watchdog_period_s)

    # ------------------------------------------------------------------
    # Admission (used directly and by the churn generator)
    # ------------------------------------------------------------------

    def admit(self, vm: VM) -> bool:
        """Place a new VM, or queue it behind a wake if capacity is parked.

        Returns False only when the request cannot be satisfied even by
        waking every parked host (or when power management is off and no
        active host fits).
        """
        host = self._pick_host_for(vm)
        if host is not None:
            self.cluster.add_vm(vm, host)
            self.log.admissions += 1
            self.log.record(self.env.now, "admit", "{}->{}".format(vm.name, host.name))
            if self._trace is not None:
                self._trace.admission(self.env.now, "admit", vm.name, host=host.name)
            return True
        if not self.config.enable_power_mgmt:
            self.log.admissions_rejected += 1
            if self._trace is not None:
                self._trace.admission(self.env.now, "admit-rejected", vm.name)
            return False
        if not self._capacity_in_reserve():
            self.log.admissions_rejected += 1
            if self._trace is not None:
                self._trace.admission(self.env.now, "admit-rejected", vm.name)
            return False
        self._pending.append((vm, self.env.now))
        self.log.admissions_queued += 1
        self.log.record(self.env.now, "admit-queued", vm.name)
        if self._trace is not None:
            self._trace.admission(self.env.now, "admit-queued", vm.name)
        self._request_capacity(vm.vcpus)
        return True

    def retire(self, vm: VM) -> None:
        """Remove a departing VM (placed, still pending, or already gone).

        A VM can legitimately be unknown here: a queued admission that hit
        ``admission_timeout_s`` was dropped from the pending list, but its
        churn-generated departure still fires later.  That must not crash
        the simulation — count it and return.
        """
        for i, (pending_vm, _) in enumerate(self._pending):
            if pending_vm is vm:
                del self._pending[i]
                if self._trace is not None:
                    self._trace.vm_retired(self.env.now, vm.name)
                return
        if not self.cluster.has_vm(vm.name):
            self.log.retires_unknown += 1
            self.log.record(self.env.now, "retire-unknown", vm.name)
            return
        host_name = vm.host.name if vm.host is not None else ""
        self.cluster.remove_vm(vm)
        if self._trace is not None:
            self._trace.vm_retired(self.env.now, vm.name, host=host_name)

    def _pick_host_for(self, vm: VM) -> Optional[Host]:
        """Best-fit host for a new VM under the CPU target + memory."""
        demand = self._admission_demand(vm)
        best: Optional[Host] = None
        best_slack: Optional[float] = None
        for host in self.cluster.placeable_hosts():
            if not host.fits(vm):
                continue
            budget = host.cores * self.config.cpu_target - self._planning_load(host)
            slack = budget - demand
            if slack < 0:
                continue
            if best_slack is None or slack < best_slack:
                best, best_slack = host, slack
        return best

    def _admission_demand(self, vm: VM) -> float:
        """Planning demand for a not-yet-observed VM."""
        return max(vm.demand_cores(self.env.now), 0.25 * vm.vcpus)

    def _planning_load(self, host: Host) -> float:
        # Resident demand plus the migration tax is exactly what
        # ``Host.demand_cores`` caches (same accumulation order), so the
        # per-host walk this used to do collapses into the cached/grid
        # read — bit-identical, O(1) at sampler-lattice instants.
        return host.demand_cores(self.env.now)

    def _capacity_in_reserve(self) -> bool:
        return bool(self.cluster.parked_hosts()) or bool(self._evacs) or bool(
            self.cluster.waking_hosts()
        )

    def _drain_pending(self) -> None:
        still_waiting: List[Tuple[VM, float]] = []
        timeout = self.config.admission_timeout_s
        for vm, queued_at in self._pending:
            if timeout is not None and self.env.now - queued_at > timeout:
                self.log.admissions_timed_out += 1
                self.log.record(self.env.now, "admit-timeout", vm.name)
                if self._trace is not None:
                    self._trace.admission(
                        self.env.now, "admit-timeout", vm.name,
                        wait_s=self.env.now - queued_at,
                    )
                continue
            host = self._pick_host_for(vm)
            if host is None:
                still_waiting.append((vm, queued_at))
                continue
            self.cluster.add_vm(vm, host)
            wait = self.env.now - queued_at
            self.log.admissions += 1
            self.log.admission_waits_s.append(wait)
            self.log.record(
                self.env.now,
                "admit-placed",
                "{}->{} after {:.0f}s".format(vm.name, host.name, wait),
            )
            if self._trace is not None:
                self._trace.admission(
                    self.env.now, "admit-placed", vm.name,
                    host=host.name, wait_s=wait,
                )
        self._pending = still_waiting
        if self._pending:
            self._request_capacity(sum(vm.vcpus for vm, _ in self._pending))

    # ------------------------------------------------------------------
    # The consolidation evaluation
    # ------------------------------------------------------------------

    def evaluate(self) -> None:  # reprolint: hot
        """One consolidation round (public for unit tests)."""
        now = self.env.now
        observed, telemetry_age = self._plan_observation(now)
        demand = observed + sum(
            self._admission_demand(vm) for vm, _ in self._pending
        )
        self.governor.update(now, telemetry_age)
        self.predictor.observe(now, demand)
        predicted = max(self.predictor.predict(), demand)
        needed_cores = predicted * (1.0 + self.config.headroom) / self.config.cpu_target
        cap_cores = self._cap_capacity_cores()
        needed_cores = min(needed_cores, cap_cores)
        committed = (
            self.cluster.committed_capacity_cores()
            - self.cluster.evacuating_cores()
        )

        if self.config.enable_power_mgmt:
            min_host_cores = self.cluster.min_host_cores()
            if self.governor.active:
                # Safe mode freezes every shrink path (even cap-forced): a
                # plane that cannot migrate reliably — or cannot see the
                # cluster — must not strand more VMs mid-evacuation.
                # Growing stays allowed; waking hosts needs no migrations.
                self._surplus_rounds = 0
                if committed < needed_cores:
                    self._grow(needed_cores - committed, reactive=False)
            elif committed > cap_cores + min_host_cores - 1e-9:
                # Power-budget violation beats hysteresis: shed capacity
                # now, even if demand would prefer to keep it — remaining
                # hosts may run overloaded (booked as violations).
                self._shrink(committed - cap_cores, evac_cpu_target=1.0)
            elif committed < needed_cores:
                self._surplus_rounds = 0
                self._grow(needed_cores - committed, reactive=False)
            else:
                surplus = committed - needed_cores
                if surplus >= min_host_cores:
                    self._surplus_rounds += 1
                    if self._surplus_rounds > self.config.park_delay_rounds:
                        self._shrink(surplus)
                else:
                    self._surplus_rounds = 0

        if self.config.enable_balancing:
            self._balance()

    # ------------------------------------------------------------------
    # Observation (overridden by the neat plane)
    # ------------------------------------------------------------------

    def _plan_observation(self, now: float) -> Tuple[float, float]:
        """``(demand_cores, telemetry_age_s)`` for the consolidation round.

        The centralized plane reads the observer's telemetry view
        directly.  The neat plane overrides this to assemble the global
        picture from per-host detector reports delivered through the
        lossy request channel (see :mod:`repro.core.plane.neat`).
        """
        return self._observe(now)

    def _observe(self, now: float) -> Tuple[float, float]:
        """Delegates to the plane observer (kept as a method because the
        watchdog and cold-start paths read it directly)."""
        return self.observer.observe(now)

    @property
    def safe_mode(self) -> bool:
        """True while the degradation governor has consolidation frozen."""
        return self.governor.active

    def _balance(self) -> None:
        now = self.env.now
        moves = self.balancer.recommend(
            self.cluster.active_hosts(),
            now=now,
        )
        for move in moves:
            if move.vm.migrating or move.vm.host is not move.src:
                continue
            if not move.dst.fits(move.vm):
                continue
            if self._trace is not None:
                self._trace.decision(
                    now, "balance", host=move.src.name,
                    detail="{}->{}".format(move.vm.name, move.dst.name),
                )
            self.engine.migrate(move.vm, move.dst)
            self.log.balancer_moves += 1
            self.log.record(
                now, "balance", "{}:{}->{}".format(
                    move.vm.name, move.src.name, move.dst.name
                )
            )

    # ------------------------------------------------------------------
    # Growing capacity (wakes)
    # ------------------------------------------------------------------

    def react_to_shortfall(self) -> None:  # reprolint: hot
        """Watchdog action: wake immediately on capacity shortfall.

        Two triggers, both checked every watchdog tick:

        * **aggregate** — total demand above the committed capacity's
          utilization target; and
        * **host-level** — some host is overloaded (demand beyond its
          cores) and the balancer has nowhere under its ceiling to move
          load to; waking one host gives it a drain target.

        A shortfall that persists across ``escalation_after_ticks``
        consecutive ticks (wakes failing, backoff holding hosts back)
        escalates: ``escalation_boost_hosts`` extra hosts are woken
        beyond the computed need.

        The watchdog runs identically in both plane modes: it *is* the
        local reactive path, planning on live per-host state.
        """
        if not self.config.enable_power_mgmt:
            return
        now = self.env.now
        # The aggregate trigger plans on the telemetry view (possibly
        # stale); the host-overload walk below stays on live per-host
        # state — it *is* the reconciliation path that catches what a
        # stale aggregate hides.
        demand, _ = self._observe(now)
        committed = self.cluster.committed_capacity_cores()
        # Evacuating hosts still serve load until parked; but their exit is
        # imminent, so treat them as lost capacity unless we cancel.
        committed -= self.cluster.evacuating_cores()
        cap_cores = self._cap_capacity_cores()
        if committed >= cap_cores - 1e-9:
            # Power-budget-bound: growing (or cancelling a cap-forced
            # evacuation) is not allowed; shortfall is the price of the cap.
            self._shortfall_ticks = 0
            return
        trigger: Optional[str] = None
        shortfall = 0.0
        if demand > committed * self.config.cpu_target:
            trigger = "aggregate"
            shortfall = min(
                demand / self.config.cpu_target - committed,
                cap_cores - committed,
            )
        else:
            agg = self.tick_aggregates
            if agg is not None and agg._agg_now == now:
                overload = agg._agg_overload
                headroom_free = agg._agg_headroom
            else:
                overload = sum(
                    max(0.0, h.demand_cores(now) - h.cores)
                    for h in self.cluster.active_hosts()
                )
                headroom_free = sum(
                    max(
                        0.0,
                        h.cores * self.config.balance.dst_ceiling
                        - h.demand_cores(now),
                    )
                    for h in self.cluster.placeable_hosts()
                )
            if overload > 0.25 and overload > headroom_free:
                trigger = "host-overload"
                shortfall = min(overload, cap_cores - committed)
        if trigger is None:
            self._shortfall_ticks = 0
            return
        self._shortfall_ticks += 1
        self._record_reactive_wake(
            now, trigger, shortfall, demand, committed, cap_cores
        )
        extra_hosts = 0
        after = self.config.escalation_after_ticks
        if after is not None and self._shortfall_ticks >= after:
            extra_hosts = self.config.escalation_boost_hosts
            self.log.escalations += 1
            self.log.record(
                now, "escalation",
                "{} ticks short, +{} host(s)".format(
                    self._shortfall_ticks, extra_hosts
                ),
            )
            if self._trace is not None:
                self._trace.escalation(
                    now,
                    ticks=self._shortfall_ticks,
                    extra_hosts=extra_hosts,
                    shortfall_cores=shortfall,
                )
            self._shortfall_ticks = 0
        self._grow(shortfall, reactive=True, extra_hosts=extra_hosts)
        if trigger == "host-overload":
            # Give the balancer an immediate chance to use new capacity
            # once it wakes; meanwhile spread what we can.
            self._balance()

    def _record_reactive_wake(
        self,
        now: float,
        trigger: str,
        shortfall: float,
        demand: float,
        committed: float,
        cap_cores: float,
    ) -> None:
        """Book a watchdog intervention with its triggering shortfall.

        The shortfall travels as a structured payload (log field + trace
        event), not just prose, so tests and the trace checker can assert
        every reactive wake was justified.
        """
        self.log.reactive_wakes += 1
        self.log.reactive_wake_events.append((now, trigger, shortfall))
        self.log.record(
            now, "reactive-wake",
            "{}: {:.1f} cores short".format(trigger, shortfall),
        )
        if self._trace is not None:
            self._trace.watchdog_wake(
                now, trigger,
                shortfall_cores=shortfall,
                demand_cores=demand,
                committed_cores=committed,
                # -1 encodes "uncapped" (the cap itself is +inf).
                cap_cores=cap_cores if math.isfinite(cap_cores) else -1.0,
            )

    def _grow(
        self, cores_short: float, reactive: bool, extra_hosts: int = 0
    ) -> None:
        # 1) Cancelling an in-flight evacuation is free capacity.
        for task in self._evacs.values():
            if cores_short <= 0:
                return
            if not task.cancelled:
                task.cancel()
                cores_short -= task.host.cores
                self.log.record(self.env.now, "evac-cancel", task.host.name)
                if self._trace is not None:
                    self._trace.decision(self.env.now, "evac-cancel", task.host.name)
        if cores_short <= 0 and extra_hosts <= 0:
            return
        # 2) Wake parked hosts, fastest exit first; among equals, prefer
        # the most efficient machine (lowest idle draw) — it will be
        # active for a while.  Hosts in retry backoff or blacklisted after
        # repeated wake failures are skipped entirely, and hosts with a
        # failure history sort behind clean ones so the manager prefers a
        # *different* parked host over banging on a flaky one.
        now = self.env.now
        parked = sorted(
            (
                h
                for h in self.cluster.parked_hosts()
                if self.scoreboard.eligible(h.name, now)
            ),
            key=lambda h: (
                self.scoreboard.failures(h.name),
                h.profile.transition(h.state, PowerState.ACTIVE).latency_s,
                h.profile.idle_w,
            ),
        )
        if not parked:
            return
        mean_cores = sum(h.cores for h in parked) / len(parked)
        count = max(int(math.ceil(cores_short / mean_cores)), 0)
        count += self.config.wake_boost_hosts + extra_hosts
        for host in parked[:count]:
            if not self._cap_allows_wake(host):
                self.log.cap_deferrals += 1
                self.log.record(self.env.now, "cap-defer", host.name)
                if self._trace is not None:
                    self._trace.decision(self.env.now, "cap-defer", host.name)
                continue
            # The actuator owns everything from here: retry numbering,
            # wake bookkeeping, and — crucially — rejection of a request
            # for a host whose previous wake is still in flight.
            self.arbiter.request_wake(
                host, detail="reactive" if reactive else "predictive"
            )

    def _cap_capacity_cores(self) -> float:
        """CPU capacity the power budget allows to be active at once.

        Sized so that the allowed host count at full peak draw stays under
        the cap (never below the min-active floor).
        """
        cap = self.config.power_cap_w
        if cap is None:
            return float("inf")
        key = (cap, self.config.min_active_hosts)
        if key == self._cap_cores_key:
            return self._cap_cores_value
        per_host_peak = self.cluster.max_peak_w()
        max_hosts = max(int(cap // per_host_peak), self.config.min_active_hosts)
        largest_first = self.cluster.host_cores_desc()
        value = sum(largest_first[:max_hosts])
        self._cap_cores_key = key
        self._cap_cores_value = value
        return value

    def _cap_allows_wake(self, host: Host) -> bool:
        """Would waking ``host`` keep projected power under the cap?

        Projection is conservative: current draw plus the *peak* draw of
        every host already waking and of the candidate.
        """
        cap = self.config.power_cap_w
        if cap is None:
            return True
        projected = (
            self.cluster.power_w()
            + sum(h.profile.peak_w for h in self.cluster.waking_hosts())
            + host.profile.peak_w
        )
        return projected <= cap

    # ------------------------------------------------------------------
    # Shrinking capacity (evacuate + park)
    # ------------------------------------------------------------------

    def _park_candidates(self) -> List[Host]:
        """Hosts the shrink path may evacuate-and-park this round.

        The neat plane overrides this: during a degraded round (global
        view assembled from stale reports) only hosts whose own detector
        reported underload are eligible, so the arbiter never parks a
        host it has no fresh evidence about.
        """
        return [
            h
            for h in self.cluster.active_hosts()
            if not h.evacuating and h.mem_reserved_gb <= 0
        ]

    def _shrink(
        self, surplus_cores: float, evac_cpu_target: Optional[float] = None
    ) -> None:
        now = self.env.now
        target = evac_cpu_target if evac_cpu_target is not None else self.config.cpu_target
        parks = 0
        candidates = sorted(
            self._park_candidates(),
            key=self._park_candidate_key,
        )
        for host in candidates:
            if parks >= self.config.max_parks_per_round:
                break
            if surplus_cores < host.cores:
                break
            if not self._can_spare(host):
                break
            targets = [
                t
                for t in self.cluster.placeable_hosts()
                if t is not host and not t.evacuating
            ]
            plan = plan_evacuation(
                host,
                targets,
                    cpu_target=target,
                trace=self._trace,
                now=now,
            )
            if plan is None:
                continue
            task = _EvacuationTask(host, plan)
            self._evacs[host.name] = task
            host.evacuating = True
            self.log.evacuations_started += 1
            self.log.record(now, "evac-start", host.name)
            if self._trace is not None:
                self._trace.decision(
                    now, "evac-start", host.name,
                    detail="{} vm(s)".format(len(plan)),
                )
            self.env.process(self._evacuate_and_park(task))
            surplus_cores -= host.cores
            parks += 1

    def _park_candidate_key(self, host: Host) -> Tuple[float, ...]:
        """Ordering of park candidates (see ``ManagerConfig.park_preference``).

        ``load``: strictly emptiest-first (cheapest evacuation).
        ``efficiency``: load bucketed to 10 % of capacity; within a bucket
        the host with the highest idle draw parks first, so mixed-
        generation clusters shed their least efficient machines.
        """
        load = self._planning_load(host)
        if self.config.park_preference == "efficiency":
            bucket = round(load / host.cores, 1)
            return (bucket, -host.profile.idle_w, load)
        return (load,)

    def _can_spare(self, host: Host) -> bool:
        # Hosts already evacuating are on their way out; ``host`` itself is
        # counted via the explicit -1 (it may or may not be flagged yet).
        active_after = (
            self.cluster.n_active_hosts()
            - (
                self.cluster.n_evacuating_hosts()
                - (1 if host.evacuating else 0)
            )
            - 1
        )
        return active_after >= self.config.min_active_hosts

    def _choose_park_state(self) -> PowerState:
        cfg = self.config
        if cfg.deep_park_state is None:
            return cfg.park_state
        # A host sitting in the warm state but failed (out of service) or
        # held for maintenance cannot serve a fast wake — counting it as
        # warm would silently shrink the usable warm pool.
        warm = sum(
            1
            for h in self.cluster.hosts
            if not h.out_of_service
            and not h.in_maintenance
            and (
                (h.state is cfg.park_state and not h.machine.in_transition)
                or h.machine.target_state is cfg.park_state
            )
        )
        return cfg.park_state if warm < cfg.warm_pool_hosts else cfg.deep_park_state

    def _evacuate_and_park(
        self, task: _EvacuationTask
    ) -> Generator["Event", Any, None]:
        host = task.host
        migrations: List["Process"] = []
        for vm, dst in task.plan:
            if task.cancelled:
                break
            if vm.host is not host or vm.migrating:
                continue
            if not dst.is_active or not dst.fits(vm):
                task.cancel()  # plan went stale
                break
            try:
                flight = self.engine.migrate(vm, dst)
            except RuntimeError:
                # Admission race: a concurrent in-flight reservation can
                # fill the destination between the staleness check above
                # and the engine's own admission.  The plan is stale —
                # cancel the task instead of crashing the simulation.
                task.cancel()
                self.log.record(
                    self.env.now, "evac-stale",
                    "{}: {}->{}".format(host.name, vm.name, dst.name),
                )
                if self._trace is not None:
                    self._trace.decision(
                        self.env.now, "evac-stale", host.name,
                        detail="{}->{}".format(vm.name, dst.name),
                    )
                break
            if self.engine.can_fail:
                # Fault model attached: watch each flight and retry on a
                # mid-copy failure.  The wrapper is gated so fault-free
                # runs submit the raw engine processes exactly as before
                # (byte-identical traces).
                migrations.append(
                    self.env.process(self._finish_migration(task, vm, flight))
                )
            else:
                migrations.append(flight)
        if migrations:
            yield self.env.all_of(migrations)
        parkable = (
            not task.cancelled
            and not host.vms
            and host.mem_reserved_gb <= 0
            and host.is_active
            and self._can_spare(host)
            # Safe mode: draining evacuations finish their migrations but
            # must not park — the freeze window admits no park decisions
            # (a checked trace invariant).
            and not self.governor.active
        )
        if parkable:
            state = self._choose_park_state()
            self.log.parks_started += 1
            self.log.record(self.env.now, "park", "{}->{}".format(host.name, state.value))
            if self._trace is not None:
                # The completed-evacuation marker must land at the same
                # instant as the park decision and the transition itself —
                # that ordering is a checked trace invariant.
                self._trace.evacuation_end(self.env.now, host.name, "complete")
                self._trace.decision(
                    self.env.now, "park", host.name, detail=state.value
                )
            # Keep `evacuating` True until parked so no placement sneaks in.
            yield self.arbiter.park(host, state)
            self.log.parks_completed += 1
            if self._trace is not None:
                self._trace.decision(self.env.now, "park-complete", host.name)
        else:
            self.log.evacuations_aborted += 1
            self.log.record(self.env.now, "evac-abort", host.name)
            if self._trace is not None:
                self._trace.evacuation_end(
                    self.env.now, host.name,
                    "cancelled" if task.cancelled else "aborted",
                )
        host.evacuating = False
        self._evacs.pop(host.name, None)

    def _finish_migration(
        self, task: _EvacuationTask, vm: VM, flight: "Process"
    ) -> Generator["Event", Any, None]:
        """Watch one evacuation flight; retry failed copies with backoff.

        Bounded retries (``migration_retry_limit``) with exponential
        backoff, destination re-planning before each attempt, and a
        wall-clock deadline on the whole chain.  Exhaustion cancels the
        evacuation task so the host un-parks instead of wedging.
        """
        cfg = self.config
        chain_started = self.env.now
        attempt = 0
        while True:
            record = yield flight
            if record is None or not record.failed:
                return
            if task.cancelled or vm.host is not task.host:
                return
            attempt += 1
            if attempt > cfg.migration_retry_limit:
                task.cancel()
                self.log.record(
                    self.env.now, "migration-exhausted",
                    "{}: {} attempt(s)".format(vm.name, attempt - 1),
                )
                return
            backoff = min(
                cfg.migration_backoff_base_s * (2 ** (attempt - 1)),
                cfg.migration_backoff_max_s,
            )
            deadline = cfg.migration_deadline_s
            if (
                deadline is not None
                and self.env.now + backoff - chain_started > deadline
            ):
                task.cancel()
                self.log.record(
                    self.env.now, "migration-deadline",
                    "{} after {:.0f}s".format(
                        vm.name, self.env.now - chain_started
                    ),
                )
                return
            # Coalescable: flights that failed at the same instant share one
            # backoff event.  Retry callbacks reserve destination memory
            # synchronously in ``engine.migrate``, so resuming them back to
            # back (instead of interleaved with migration-process starts)
            # cannot change which destinations later retries see.
            yield self.env.shared_timeout(backoff)
            if task.cancelled or vm.host is not task.host or vm.migrating:
                return
            dst = self._retry_destination(task, vm)
            if dst is None:
                task.cancel()
                return
            self.log.migration_retries += 1
            self.log.record(
                self.env.now, "migration-retry",
                "{} attempt {} -> {}".format(vm.name, attempt + 1, dst.name),
            )
            if self._trace is not None:
                self._trace.migration_retry(
                    self.env.now, vm.name, task.host.name, dst.name,
                    attempt=attempt + 1, backoff_s=backoff,
                )
            try:
                flight = self.engine.migrate(vm, dst)
            except RuntimeError:
                # The re-planned destination filled during the backoff.
                task.cancel()
                return

    def _retry_destination(
        self, task: _EvacuationTask, vm: VM
    ) -> Optional[Host]:
        """Re-plan where ``vm`` should land for a retried migration.

        Re-runs the evacuation planner over the host's *remaining* VMs so
        the retry sees current loads and reservations; the original
        destination may be picked again if it is still the best target.
        """
        now = self.env.now
        targets = [
            t
            for t in self.cluster.placeable_hosts()
            if t is not task.host and not t.evacuating
        ]
        plan = plan_evacuation(
            task.host,
            targets,
            cpu_target=self.config.cpu_target,
            trace=self._trace,
            now=now,
        )
        if plan is None:
            return None
        for planned_vm, dst in plan:
            if planned_vm is vm:
                return dst
        return None

    # ------------------------------------------------------------------
    # Operator maintenance mode
    # ------------------------------------------------------------------

    def request_maintenance(self, host: Host) -> "Process":
        """Evacuate ``host`` and power it off for service.

        Returns a process whose value is True once the host is safely
        down, or False if evacuation was impossible (in which case the
        maintenance hold is released).  Unlike consolidation evacuations,
        a maintenance drain is never cancelled by demand growth and may
        overload the remaining hosts (``cpu_target`` = 1.0).
        """
        if host not in self.cluster.hosts:
            raise ValueError("host {} is not managed here".format(host.name))
        if host.in_maintenance:
            raise RuntimeError("{} is already in maintenance".format(host.name))
        host.in_maintenance = True
        self.log.record(self.env.now, "maintenance-start", host.name)
        if self._trace is not None:
            self._trace.decision(self.env.now, "maintenance-start", host.name)
        return self.env.process(self._maintenance_drain(host))

    def end_maintenance(self, host: Host) -> Optional["Process"]:
        """Release the hold; wake the host if it was powered down."""
        if not host.in_maintenance:
            raise RuntimeError("{} is not in maintenance".format(host.name))
        host.in_maintenance = False
        self.log.record(self.env.now, "maintenance-end", host.name)
        if self._trace is not None:
            self._trace.decision(self.env.now, "maintenance-end", host.name)
        if host.state.is_parked and not host.machine.in_transition:
            return self.arbiter.dispatch_operator_wake(host)
        return None

    def _maintenance_park_state(self, host: Host) -> PowerState:
        if host.profile.can_transition(PowerState.ACTIVE, PowerState.OFF):
            return PowerState.OFF
        return host.profile.park_states()[-1]

    def _maintenance_drain(
        self, host: Host
    ) -> Generator["Event", Any, bool]:
        if host.state.is_parked:
            return True
        now = self.env.now
        plan = plan_evacuation(
            host,
            [t for t in self.cluster.placeable_hosts() if t is not host],
            cpu_target=1.0,
            trace=self._trace,
            now=now,
        )
        if plan is None:
            host.in_maintenance = False
            self.log.record(self.env.now, "maintenance-abort", host.name)
            if self._trace is not None:
                self._trace.decision(self.env.now, "maintenance-abort", host.name)
            return False
        host.evacuating = True
        if self._trace is not None:
            self._trace.decision(
                now, "evac-start", host.name,
                detail="maintenance, {} vm(s)".format(len(plan)),
            )
        migrations = []
        for vm, dst in plan:
            if vm.host is host and not vm.migrating and dst.is_active:
                try:
                    migrations.append(self.engine.migrate(vm, dst))
                except RuntimeError:
                    # Concurrent reservation filled the destination since
                    # planning; leave the VM in place — the occupancy
                    # check below aborts the drain cleanly.
                    continue
        if migrations:
            yield self.env.all_of(migrations)
        if host.vms or host.mem_reserved_gb > 0:
            host.evacuating = False
            host.in_maintenance = False
            self.log.evacuations_aborted += 1
            self.log.record(self.env.now, "maintenance-abort", host.name)
            if self._trace is not None:
                self._trace.evacuation_end(self.env.now, host.name, "aborted")
                self._trace.decision(self.env.now, "maintenance-abort", host.name)
            return False
        park_state = self._maintenance_park_state(host)
        if self._trace is not None:
            self._trace.evacuation_end(self.env.now, host.name, "complete")
            self._trace.decision(
                self.env.now, "park", host.name, detail=park_state.value
            )
        yield self.arbiter.park(host, park_state)
        host.evacuating = False
        self.log.record(self.env.now, "maintenance-down", host.name)
        if self._trace is not None:
            self._trace.decision(self.env.now, "maintenance-down", host.name)
        return True

    # ------------------------------------------------------------------
    # Helpers for capacity requests from admission
    # ------------------------------------------------------------------

    def _request_capacity(self, cores_needed: float) -> None:
        """Make room for pending admissions (cancel evac / wake a host)."""
        waking = sum(h.cores for h in self.cluster.waking_hosts())
        if waking >= cores_needed:
            return
        self._grow(cores_needed - waking, reactive=True)

    @property
    def pending_admissions(self) -> int:
        return len(self._pending)
