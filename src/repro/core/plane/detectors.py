"""Neat-mode local detectors and their lossy request channel.

OpenStack-Neat-style decomposition: each host runs a *local* detector
that classifies its own utilization (underload/overload) against locally
observed demand, and emits a compact :class:`DetectorReport` toward the
global arbiter.  Reports travel through a :class:`RequestChannel` that
models the management network — a fixed delivery delay plus i.i.d.
dropout — so the global view is assembled from whatever actually
arrived, exactly like the stale-telemetry feed the centralized plane
plans on.

Determinism: dropout draws come from the registered ``plane`` RNG
stream, qualified by the detector round index, so runs are reproducible
and independent of every other stochastic subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.core.seeding import stream_rng

if TYPE_CHECKING:
    from repro.datacenter.cluster import Cluster


@dataclass(frozen=True)
class DetectorReport:
    """One host's self-observation at one detector round."""

    host: str
    taken_at: float
    demand_cores: float
    cores: float
    underloaded: bool
    overloaded: bool


class LocalDetectorBank:
    """Per-host underload/overload classification on local state.

    The bank reads each host's *own* demand (no cluster aggregate), which
    is the point of the decentralized plane: detection scales per host
    and survives a degraded global view.  The overload flag is advisory
    context for the arbiter — the watchdog's live host-overload walk
    remains the reactive wake path in both plane modes.
    """

    def __init__(
        self,
        cluster: "Cluster",
        underload_threshold: float,
        overload_threshold: float,
    ) -> None:
        self.cluster = cluster
        self.underload_threshold = underload_threshold
        self.overload_threshold = overload_threshold

    def scan(self, now: float) -> List[DetectorReport]:
        reports: List[DetectorReport] = []
        for host in self.cluster.active_hosts():
            demand = host.demand_cores(now)
            util = demand / host.cores if host.cores > 0 else 0.0
            reports.append(
                DetectorReport(
                    host=host.name,
                    taken_at=now,
                    demand_cores=demand,
                    cores=host.cores,
                    underloaded=util < self.underload_threshold,
                    overloaded=util > self.overload_threshold,
                )
            )
        return reports


class RequestChannel:
    """Delayed, lossy transport from local detectors to the arbiter."""

    def __init__(
        self, delay_s: float, dropout_rate: float, seed: int
    ) -> None:
        self.delay_s = delay_s
        self.dropout_rate = dropout_rate
        self.seed = seed
        self._pending: List[Tuple[float, DetectorReport]] = []

    def send(
        self, reports: List[DetectorReport], round_index: int, now: float
    ) -> int:
        """Enqueue a round's reports; returns how many the channel lost."""
        dropped = 0
        if self.dropout_rate > 0.0 and reports:
            rng = stream_rng("plane", self.seed, round_index)
            draws = rng.random(len(reports))
            kept = [
                r for r, d in zip(reports, draws) if d >= self.dropout_rate
            ]
            dropped = len(reports) - len(kept)
            reports = kept
        deliver_at = now + self.delay_s
        for report in reports:
            self._pending.append((deliver_at, report))
        return dropped

    def deliver(self, now: float) -> List[DetectorReport]:
        """Pop every report whose delivery time has arrived."""
        ready: List[DetectorReport] = []
        still: List[Tuple[float, DetectorReport]] = []
        for deliver_at, report in self._pending:
            if deliver_at <= now + 1e-12:
                ready.append(report)
            else:
                still.append((deliver_at, report))
        self._pending = still
        return ready
