"""The single-owner power-state actuator: the :class:`WakeArbiter`.

Every host power transition the management plane requests — reactive and
predictive wakes, operator maintenance wakes, evacuate-then-park — goes
through this one object.  It tracks in-flight ``off->active``
transitions and structurally rejects a second wake for a host whose
previous attempt has not resolved, which fixes the fuzz-found
overlapping-wake race by construction:

The race: a watchdog tick's ``react_to_shortfall()`` dispatches a wake
via ``env.process(...)``; the spawned process only *starts* later in the
same instant, so ``_drain_pending()`` running immediately afterwards
still sees the host parked, ``in_transition`` False and
``waking_hosts()`` empty — and dispatches a second wake for the same
host.  The trace then shows two open ``off->active`` transitions (the
``state-machine``/``wake-exclusivity`` violation) and a retry attempt
that failed to increase (the ``wake-backoff`` violation).  An in-flight
set keyed on *dispatch*, not transition start, closes the window.

Rejections are booked, not silent: ``log.wake_rejections`` counts them
and a ``wake-rejected`` decision lands in the trace, so the corpus
reproducer can assert the fix fires where the bug used to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Set

from repro.sim import ResumeSpec

if TYPE_CHECKING:
    from repro.core.plane.log import ManagementLog
    from repro.datacenter.host import Host
    from repro.datacenter.recovery import WakeScoreboard
    from repro.power.states import PowerState
    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.sim.process import Process
    from repro.telemetry.trace import TraceBuffer


class WakeArbiter:
    """Owns the per-host power state machine; serializes wakes per host."""

    def __init__(
        self,
        env: "Environment",
        log: "ManagementLog",
        scoreboard: "WakeScoreboard",
        trace: Optional["TraceBuffer"] = None,
        on_settled: Optional[Callable[[], None]] = None,
    ) -> None:
        self.env = env
        self.log = log
        self.scoreboard = scoreboard
        self._trace = trace
        #: Called after each wake resolves (success or failure); the
        #: manager hooks its pending-admission drain here.
        self._on_settled = on_settled
        #: Hosts with a dispatched-but-unresolved wake.  Membership starts
        #: at *dispatch* (before the spawned process runs), which is what
        #: closes the same-instant double-wake window that transition
        #: state alone cannot see.
        self._in_flight: Set[str] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def wake_in_flight(self, host: str) -> bool:
        """True while a dispatched wake for ``host`` has not resolved."""
        return host in self._in_flight

    # ------------------------------------------------------------------
    # Wake requests
    # ------------------------------------------------------------------

    def request_wake(self, host: "Host", detail: str) -> bool:
        """Consolidation/watchdog wake path; False when rejected.

        ``detail`` ("reactive" or "predictive") lands on the trace
        decision, preserving the exact emission the monolithic manager
        produced.  Retry attempts are numbered by the scoreboard's
        dispatch-monotone counter, so a retry that follows a rejected
        duplicate still sees a strictly larger attempt number.
        """
        if host.name in self._in_flight:
            self._reject(host)
            return False
        attempt = self.scoreboard.begin_attempt(host.name)
        if attempt > 1:
            self.log.wake_retries += 1
            self.log.record(
                self.env.now, "wake-retry",
                "{} attempt {}".format(host.name, attempt),
            )
            if self._trace is not None:
                self._trace.wake_retry(
                    self.env.now, host.name,
                    attempt=attempt,
                    backoff_s=self.scoreboard.backoff_s(host.name),
                )
        self.log.wakes_requested += 1
        self.log.record(self.env.now, "wake", host.name)
        if self._trace is not None:
            self._trace.decision(
                self.env.now, "wake", host.name, detail=detail
            )
        self._dispatch(host)
        return True

    def dispatch_operator_wake(self, host: "Host") -> Optional["Process"]:
        """Maintenance-release wake; returns the process, or None if
        a wake for the host is already in flight.

        Books the dispatch on the scoreboard (keeping attempt numbering
        monotone across operator and automatic wakes) but emits no retry
        trace — operator wakes are not retries of a failed automatic one.
        """
        if host.name in self._in_flight:
            self._reject(host)
            return None
        self.scoreboard.begin_attempt(host.name)
        if self._trace is not None:
            self._trace.decision(
                self.env.now, "wake", host.name, detail="maintenance-end"
            )
        return self._dispatch(host)

    def _reject(self, host: "Host") -> None:
        now = self.env.now
        self.log.wake_rejections += 1
        self.log.record(now, "wake-rejected", host.name)
        if self._trace is not None:
            self._trace.decision(
                now, "wake-rejected", host.name, detail="in-flight"
            )

    def _dispatch(self, host: "Host") -> "Process":
        self._in_flight.add(host.name)
        return self.env.process(self._run_wake(host))

    def _run_wake(self, host: "Host") -> Generator["Event", Any, None]:
        yield self.env.process(host.wake())
        self._in_flight.discard(host.name)
        now = self.env.now
        if not host.is_active:
            # Injected wake failure: the scoreboard puts the host into
            # exponential backoff (and eventually blacklists it) so the
            # watchdog retries a *different* parked host first.
            self.log.wake_failures += 1
            self.log.record(now, "wake-failed", host.name)
            if self._trace is not None:
                self._trace.decision(now, "wake-failed", host.name)
            blacklisted_until = self.scoreboard.record_failure(host.name, now)
            if blacklisted_until is not None:
                self.log.blacklists += 1
                self.log.record(
                    now, "host-blacklisted",
                    "{} until t={:.0f}".format(host.name, blacklisted_until),
                )
                if self._trace is not None:
                    self._trace.host_blacklisted(
                        now, host.name,
                        failures=self.scoreboard.failures(host.name),
                        until_t=blacklisted_until,
                    )
            if host.out_of_service:
                self._schedule_repair(host)
        else:
            self.scoreboard.record_success(host.name)
        if self._on_settled is not None:
            self._on_settled()

    # ------------------------------------------------------------------
    # Repair (MTTR re-entry)
    # ------------------------------------------------------------------

    def _schedule_repair(self, host: "Host") -> None:
        """Queue an MTTR-delayed repair for a permanently failed host."""
        delay = host.repair_delay_s()
        if delay is None:
            return  # no repair model: the host is lost for the run
        self.log.record(
            self.env.now, "repair-scheduled",
            "{} in {:.0f}s".format(host.name, delay),
        )
        if self._trace is not None:
            self._trace.decision(
                self.env.now, "repair-scheduled", host.name,
                detail="{:.0f}s".format(delay),
            )
        self.env.process(
            self._repair(host, delay, self.env.now),
            ckpt=ResumeSpec(self, "_repair", (host, delay, self.env.now)),
        )

    def _repair(
        self,
        host: "Host",
        delay_s: float,
        failed_at: float,
        resume_at: Optional[float] = None,
    ) -> Generator["Event", Any, None]:
        # ``failed_at`` is an argument (not read from the clock here) so a
        # checkpoint-restored repair still reports the original downtime.
        if resume_at is not None:
            yield self.env.timeout_at(resume_at)
        else:
            yield self.env.timeout(delay_s)
        host.repair()
        self.scoreboard.record_repair(host.name)
        now = self.env.now
        self.log.hosts_repaired += 1
        self.log.record(now, "host-repaired", host.name)
        if self._trace is not None:
            self._trace.host_repaired(
                now, host.name, downtime_s=now - failed_at
            )

    # ------------------------------------------------------------------
    # Parks
    # ------------------------------------------------------------------

    def park(self, host: "Host", state: "PowerState") -> "Process":
        """Run the host's park transition (decision bookkeeping stays
        with the caller — parks carry evacuation context the actuator
        does not own)."""
        return self.env.process(host.park(state))
