"""The degradation governor: hysteretic safe-mode entry and exit.

Extracted from the monolithic manager so the freeze decision has one
owner.  While :attr:`SafeModeGovernor.active` is True, consolidation is
frozen — no new evacuations and no parks; in-flight evacuations drain
their migrations but leave the host active.  Growing stays allowed
throughout: waking hosts needs no migrations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.config import ManagerConfig
    from repro.core.plane.log import ManagementLog
    from repro.core.plane.observer import ClusterObserver
    from repro.telemetry.trace import TraceBuffer


class SafeModeGovernor:
    """Enter/exit safe mode based on failure rate and telemetry age."""

    def __init__(
        self,
        config: "ManagerConfig",
        log: "ManagementLog",
        observer: "ClusterObserver",
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        self.config = config
        self.log = log
        self.observer = observer
        self._trace = trace
        self._active = False
        self._entered_t = 0.0

    @property
    def active(self) -> bool:
        """True while the governor has consolidation frozen."""
        return self._active

    def update(self, now: float, telemetry_age_s: float) -> None:
        """One governor round, fed the observer's staleness figure.

        Exit is hysteretic: safe mode holds at least ``safe_mode_hold_s``
        and releases only once the failure rate has fallen to half the
        entry threshold (and telemetry is fresh again), so a plane that
        oscillates around the threshold does not flap.
        """
        cfg = self.config
        threshold = cfg.safe_mode_failure_threshold
        if threshold is None:
            return
        rate, failures = self.observer.observed_failure_rate(
            now, cfg.safe_mode_window_s
        )
        age_limit = cfg.safe_mode_telemetry_age_s
        rate_trip = failures >= cfg.safe_mode_min_failures and rate >= threshold
        age_trip = age_limit is not None and telemetry_age_s > age_limit
        if not self._active:
            if rate_trip or age_trip:
                self._active = True
                self._entered_t = now
                reason = "migration-failures" if rate_trip else "telemetry-stale"
                self.log.safe_mode_enters += 1
                self.log.record(
                    now, "safe-mode-enter",
                    "{}: rate={:.2f} age={:.0f}s".format(
                        reason, rate, telemetry_age_s
                    ),
                )
                if self._trace is not None:
                    self._trace.safe_mode_enter(
                        now, reason,
                        failure_rate=rate,
                        telemetry_age_s=telemetry_age_s,
                    )
            return
        if now - self._entered_t < cfg.safe_mode_hold_s:
            return
        calm = failures < cfg.safe_mode_min_failures or rate < 0.5 * threshold
        fresh = age_limit is None or telemetry_age_s <= age_limit
        if calm and fresh:
            self._active = False
            dwell = now - self._entered_t
            self.log.safe_mode_exits += 1
            self.log.record(
                now, "safe-mode-exit", "after {:.0f}s".format(dwell)
            )
            if self._trace is not None:
                self._trace.safe_mode_exit(now, dwell_s=dwell)
