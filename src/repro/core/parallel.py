"""Parallel scenario execution with result caching.

Every experiment in ``benchmarks/`` is a fan-out of independent
``run_scenario`` calls (policy comparisons, latency sweeps, scale-out
curves).  This module turns that implicit loop into an explicit, cacheable
execution plan:

* :class:`ScenarioSpec` — a picklable description of one ``run_scenario``
  call (policy config + keyword arguments + a display label);
* :class:`ScenarioArtifacts` — the picklable subset of a finished run
  that experiments actually consume (report, sampler series, management
  log, per-host power-state residency) — everything that can cross a
  process boundary or live in the disk cache;
* :func:`run_scenarios` — execute many specs, fanned out over a
  ``ProcessPoolExecutor``, with order-stable results, digest-level
  deduplication, and read-through caching via
  :mod:`repro.core.cache`.

Determinism: a spec's outcome depends only on its contents (all
simulation RNGs are seeded from the spec), so serial and parallel
execution produce byte-identical reports, and results are returned in
spec order regardless of completion order.

Typical use::

    from repro.core import ScenarioSpec, run_scenarios, POLICIES

    specs = [ScenarioSpec(cfg(), kwargs=dict(n_hosts=16, seed=7))
             for cfg in (always_on, s3_policy)]
    baseline, managed = run_scenarios(specs, workers=2)
    print(managed.report.row())
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional, Union

if TYPE_CHECKING:
    from repro.core.manager import ManagementLog, PowerAwareManager
    from repro.core.runner import ScenarioResult
    from repro.datacenter.cluster import Cluster
    from repro.datacenter.host import Host
    from repro.power.machine import HostPowerStateMachine
    from repro.telemetry.sampler import ClusterSampler

from repro.core.cache import ResultCache, Uncacheable, cache_disabled, scenario_digest
from repro.core.config import ManagerConfig
from repro.datacenter.vm import Priority
from repro.power.states import PowerState
from repro.telemetry.metrics import SimReport
from repro.telemetry.timeseries import TimeSeries


# ----------------------------------------------------------------------
# Picklable snapshots of a finished run
# ----------------------------------------------------------------------


class MachineSnapshot:
    """Frozen power-state-machine statistics (residency, transitions)."""

    def __init__(self, machine: "HostPowerStateMachine") -> None:
        self.state: PowerState = machine.state
        self.transition_counts = dict(machine.transition_counts)
        self.transit_time_s: float = machine.transit_time_s
        self._residency: Dict[PowerState, float] = {
            state: machine.residency_s(state) for state in PowerState
        }

    def residency_s(self, state: PowerState) -> float:
        return self._residency[state]


class HostSnapshot:
    """Frozen per-host facts: capacity, final state, energy, residency."""

    def __init__(self, host: "Host") -> None:
        self.name: str = host.name
        self.cores: float = host.cores
        self.mem_gb: float = host.mem_gb
        self.vm_count: int = host.vm_count
        self.out_of_service: bool = host.out_of_service
        self.wake_failures: int = host.wake_failures
        self.machine = MachineSnapshot(host.machine)
        self._energy_j: float = host.energy_j()

    @property
    def state(self) -> PowerState:
        return self.machine.state

    def energy_j(self) -> float:
        return self._energy_j


class ClusterSnapshot:
    """Frozen cluster inventory — supports the residency/energy analyses."""

    def __init__(self, cluster: "Cluster") -> None:
        self.hosts: List[HostSnapshot] = [HostSnapshot(h) for h in cluster.hosts]
        self.vm_count: int = cluster.vm_count

    def total_capacity_cores(self) -> float:
        return sum(h.cores for h in self.hosts)

    def energy_j(self) -> float:
        return sum(h.energy_j() for h in self.hosts)


class SamplerSnapshot:
    """Frozen telemetry: the full series plus the violation integrals.

    Mirrors the read API of :class:`~repro.telemetry.ClusterSampler`
    (``series``, ``violation_fraction`` …) so analysis helpers accept
    either a live sampler or a snapshot.
    """

    def __init__(self, sampler: "ClusterSampler") -> None:
        self.epoch_s: float = sampler.epoch_s
        self.samples: int = sampler.samples
        self.series: Dict[str, TimeSeries] = dict(sampler.series)
        self.shortfall_core_s: float = sampler.shortfall_core_s
        self.demand_core_s: float = sampler.demand_core_s
        self.class_shortfall_core_s = dict(sampler.class_shortfall_core_s)
        self.class_demand_core_s = dict(sampler.class_demand_core_s)
        self._energy_kwh: float = sampler.energy_kwh()

    @property
    def violation_fraction(self) -> float:
        if self.demand_core_s <= 0:
            return 0.0
        return self.shortfall_core_s / self.demand_core_s

    @property
    def violation_time_fraction(self) -> float:
        return self.series["shortfall_cores"].fraction_above(1e-9)

    def violation_fraction_by_class(self) -> Dict[Priority, float]:
        result = {}
        for priority in Priority:
            demanded = self.class_demand_core_s[priority]
            if demanded <= 0:
                result[priority] = 0.0
            else:
                result[priority] = self.class_shortfall_core_s[priority] / demanded
        return result

    def energy_kwh(self) -> float:
        return self._energy_kwh


class ManagerSnapshot:
    """Frozen management outcome: the action ledger and end-state counters."""

    def __init__(self, manager: "PowerAwareManager") -> None:
        self.log: "ManagementLog" = manager.log
        self.pending_admissions: int = manager.pending_admissions


@dataclass
class ScenarioArtifacts:
    """Everything a benchmark consumes from a run, in picklable form."""

    report: SimReport
    sampler: SamplerSnapshot
    cluster: ClusterSnapshot
    manager: ManagerSnapshot
    #: SHA-256 of the decision-trace JSONL (only with ``trace=True`` specs).
    trace_hash: Optional[str] = None
    #: The full decision-trace JSONL stream, or None when tracing was off.
    trace_jsonl: Optional[str] = None


def snapshot_result(result: "ScenarioResult") -> ScenarioArtifacts:
    """Freeze a live :class:`~repro.core.ScenarioResult` into artifacts."""
    trace_hash = None
    trace_jsonl = None
    if result.trace is not None:
        trace_jsonl = result.trace.to_jsonl()
        trace_hash = result.trace.trace_hash()
    return ScenarioArtifacts(
        report=result.report,
        sampler=SamplerSnapshot(result.sampler),
        cluster=ClusterSnapshot(result.cluster),
        manager=ManagerSnapshot(result.manager),
        trace_hash=trace_hash,
        trace_jsonl=trace_jsonl,
    )


# ----------------------------------------------------------------------
# Scenario specs
# ----------------------------------------------------------------------


@dataclass
class ScenarioSpec:
    """One ``run_scenario(config, **kwargs)`` call, as data.

    ``kwargs`` must be picklable (it crosses the process boundary).  For
    the result to be *cacheable* it must additionally have a canonical
    encoding — seeds, fleet specs, profiles and fault models all qualify;
    hand-built VM lists with live trace objects run fine but bypass the
    cache.
    """

    config: ManagerConfig
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    #: Capture a decision trace; the artifacts then carry its JSONL + hash.
    trace: bool = False
    #: Extra cache-key material (e.g. the fuzz spec-grammar version, so a
    #: grammar bump invalidates fuzz artifacts without touching other
    #: cached scenarios).  Must be canonically encodable.
    digest_extra: Optional[Dict[str, Any]] = None

    @property
    def name(self) -> str:
        return self.label if self.label is not None else self.config.name

    def digest(self) -> str:
        """Content hash for caching; raises ``Uncacheable`` when impossible."""
        # Folded in only when set, so plain specs keep their old digests
        # (and their old cache entries, which predate tracing).
        extra: Dict[str, Any] = {}
        if self.trace:
            extra["trace"] = True
        if self.digest_extra:
            extra.update(self.digest_extra)
        return scenario_digest(self.config, self.kwargs, extra=extra or None)

    def run(self) -> ScenarioArtifacts:
        """Execute the scenario in this process and freeze the outcome."""
        from repro.core.runner import run_scenario

        kwargs = dict(self.kwargs)
        if self.trace:
            kwargs.setdefault("trace", True)
        return snapshot_result(run_scenario(self.config, **kwargs))


def _execute_spec(spec: ScenarioSpec) -> ScenarioArtifacts:
    """Module-level worker entry point (must be picklable by name)."""
    return spec.run()


def _pool_worker_init() -> None:
    """Make pool workers deaf to Ctrl-C.

    A terminal SIGINT goes to the whole foreground process group; if
    workers also raise KeyboardInterrupt mid-pickle, the pool machinery
    deadlocks or leaves orphans.  Only the parent handles the signal —
    it then cancels and drains the workers deterministically.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _raise_keyboard_interrupt(signum: int, frame: Any) -> None:
    raise KeyboardInterrupt()


def _abort_pool(pool: ProcessPoolExecutor, futures: Dict[Any, int]) -> None:
    """Cancel, terminate and reap the pool on the interrupt/failure path.

    ``shutdown(wait=True)`` alone would block until *running* simulations
    finish — minutes for a long-horizon spec — so in-flight workers get a
    SIGTERM first.  Their results are discarded anyway, and every cache
    entry already stored was written atomically, so killing mid-task can
    never leave a partial artifact.  The final ``shutdown(wait=True)``
    reaps the terminated children — no orphans outlive the campaign.
    """
    for fut in futures:
        fut.cancel()
    for proc in getattr(pool, "_processes", {}).values():
        try:
            proc.terminate()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=True, cancel_futures=True)


@contextmanager
def _graceful_signals() -> Iterator[None]:
    """Turn SIGTERM into KeyboardInterrupt for the enclosed block.

    SIGTERM (kill, container stop, batch-queue preemption) normally
    terminates the interpreter without unwinding, leaving half-written
    artifacts and orphaned pool workers.  Mapping it onto
    KeyboardInterrupt funnels both cancellation paths through the same
    cleanup handlers.  Signal handlers can only be installed from the
    main thread; elsewhere this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# ----------------------------------------------------------------------
# The execution layer
# ----------------------------------------------------------------------


def default_workers() -> int:
    """Worker count when unspecified: ``REPRO_WORKERS`` env or CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _resolve_cache(
    cache: Union[None, bool, ResultCache]
) -> Optional[ResultCache]:
    if cache is False or cache is None:
        return None
    if cache_disabled():
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache()


def run_scenarios(
    specs: Iterable[ScenarioSpec],
    workers: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = True,
) -> List[ScenarioArtifacts]:
    """Run every spec; return artifacts in spec order.

    Args:
        specs: scenario descriptions (order defines result order).
        workers: process count; ``None`` uses :func:`default_workers`,
            ``1`` runs inline (no pool, no pickling).
        cache: ``True`` (default) uses the shared disk cache, ``False`` /
            ``None`` disables caching, or pass a :class:`ResultCache` to
            control the location.  The ``REPRO_NO_CACHE`` environment
            variable force-disables it.

    Identical specs (same digest) are simulated once and the artifacts
    shared.  Results are deterministic: the pool only changes *where*
    each simulation runs, never its seeded RNG streams, and ordering is
    by spec position, not completion time.
    """
    specs = list(specs)
    store = _resolve_cache(cache)
    results: List[Optional[ScenarioArtifacts]] = [None] * len(specs)
    digests: List[Optional[str]] = [None] * len(specs)

    for i, spec in enumerate(specs):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError("run_scenarios takes ScenarioSpec items, got {!r}".format(spec))
        try:
            digests[i] = spec.digest()
        except Uncacheable:
            digests[i] = None
        if store is not None and digests[i] is not None:
            results[i] = store.get(digests[i])

    # Dedup misses by digest: the first position owns the computation.
    owner_of: Dict[str, int] = {}
    to_run: List[int] = []
    for i in range(len(specs)):
        if results[i] is not None:
            continue
        d = digests[i]
        if d is not None and d in owner_of:
            continue
        if d is not None:
            owner_of[d] = i
        to_run.append(i)

    if to_run:
        n_workers = default_workers() if workers is None else max(1, workers)
        n_workers = min(n_workers, len(to_run))
        if n_workers <= 1:
            with _graceful_signals():
                for i in to_run:
                    artifacts = _execute_spec(specs[i])
                    results[i] = artifacts
                    if store is not None and digests[i] is not None:
                        store.put(digests[i], artifacts)
        else:
            # Results are stored as they complete (not after the whole
            # batch), so an interrupted campaign keeps every finished
            # entry — each one is written atomically by the cache layer,
            # so a kill can never leave a partial entry behind.
            pool = ProcessPoolExecutor(
                max_workers=n_workers, initializer=_pool_worker_init
            )
            futures: Dict[Any, int] = {}
            try:
                with _graceful_signals():
                    futures = {
                        pool.submit(_execute_spec, specs[i]): i for i in to_run
                    }
                    for fut in as_completed(futures):
                        i = futures[fut]
                        artifacts = fut.result()
                        results[i] = artifacts
                        if store is not None and digests[i] is not None:
                            store.put(digests[i], artifacts)
            except BaseException:
                _abort_pool(pool, futures)
                raise
            pool.shutdown(wait=True)

    # Fill duplicate positions from their owners.
    for i in range(len(specs)):
        d = digests[i]
        if results[i] is None and d is not None:
            results[i] = results[owner_of[d]]

    final: List[ScenarioArtifacts] = []
    missing: List[str] = []
    for spec, artifacts in zip(specs, results):
        if artifacts is None:
            missing.append(spec.name)
        else:
            final.append(artifacts)
    if missing:
        raise RuntimeError(
            "run_scenarios produced no artifacts for {} (internal scheduling "
            "bug — please report)".format(", ".join(missing))
        )
    return final


# ----------------------------------------------------------------------
# Warm-checkpoint branching
# ----------------------------------------------------------------------


def _execute_branch(
    checkpoint: str, config: ManagerConfig, horizon_s: Optional[float]
) -> ScenarioArtifacts:
    """Module-level branch worker (picklable by name, like _execute_spec)."""
    from repro.core.runner import branch_scenario

    return snapshot_result(
        branch_scenario(checkpoint, config, horizon_s=horizon_s)
    )


def branch_digest(
    checkpoint_sha256: str, config: ManagerConfig, horizon_s: Optional[float]
) -> str:
    """Cache key for one branched run.

    Keyed by the checkpoint's *content* digest (from its manifest), not
    its path — re-running the parent scenario reproduces the same bytes,
    so warm branches stay cached across checkpoint directories.
    """
    return scenario_digest(
        config,
        {"checkpoint_sha256": checkpoint_sha256, "horizon_s": horizon_s},
        extra={"branch": True},
    )


def branch_scenarios(
    checkpoint: Union[str, "os.PathLike[str]"],
    configs: Iterable[ManagerConfig],
    horizon_s: Optional[float] = None,
    workers: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = True,
) -> List[ScenarioArtifacts]:
    """Fan one warm checkpoint out across policy variants.

    Loads the checkpoint manifest once (cheap — header only) for the
    content digest, then runs each config's continuation through the same
    pool/cache machinery as :func:`run_scenarios`: cache hits skip the
    simulation, misses run in parallel workers, results come back in
    config order, and every finished branch is stored the moment it
    completes.
    """
    from pathlib import Path

    from repro.core.checkpoint import read_manifest

    checkpoint = Path(checkpoint)
    manifest = read_manifest(checkpoint)
    configs = list(configs)
    store = _resolve_cache(cache)
    results: List[Optional[ScenarioArtifacts]] = [None] * len(configs)
    digests: List[Optional[str]] = [None] * len(configs)
    for i, config in enumerate(configs):
        try:
            digests[i] = branch_digest(manifest["sha256"], config, horizon_s)
        except Uncacheable:
            digests[i] = None
        if store is not None and digests[i] is not None:
            results[i] = store.get(digests[i])

    to_run = [i for i in range(len(configs)) if results[i] is None]
    if to_run:
        n_workers = default_workers() if workers is None else max(1, workers)
        n_workers = min(n_workers, len(to_run))
        if n_workers <= 1:
            with _graceful_signals():
                for i in to_run:
                    artifacts = _execute_branch(
                        str(checkpoint), configs[i], horizon_s
                    )
                    results[i] = artifacts
                    if store is not None and digests[i] is not None:
                        store.put(digests[i], artifacts)
        else:
            pool = ProcessPoolExecutor(
                max_workers=n_workers, initializer=_pool_worker_init
            )
            futures: Dict[Any, int] = {}
            try:
                with _graceful_signals():
                    futures = {
                        pool.submit(
                            _execute_branch, str(checkpoint), configs[i], horizon_s
                        ): i
                        for i in to_run
                    }
                    for fut in as_completed(futures):
                        i = futures[fut]
                        artifacts = fut.result()
                        results[i] = artifacts
                        if store is not None and digests[i] is not None:
                            store.put(digests[i], artifacts)
            except BaseException:
                _abort_pool(pool, futures)
                raise
            pool.shutdown(wait=True)
    return [artifacts for artifacts in results if artifacts is not None]
