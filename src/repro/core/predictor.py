"""Demand predictors feeding the capacity controller.

The paper's agility argument is that with seconds-scale wake latency even
a *reactive* controller suffices; slower states need look-ahead.  All
three predictors share one interface so the A3 ablation can swap them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


class DemandPredictor:
    """Interface: feed observations, ask for the near-future demand."""

    def observe(self, t: float, demand: float) -> None:
        raise NotImplementedError

    def predict(self) -> float:
        """Predicted demand for the next control interval (cores)."""
        raise NotImplementedError


class ReactivePredictor(DemandPredictor):
    """No model: the prediction is the latest observation."""

    def __init__(self) -> None:
        self._last = 0.0

    def observe(self, t: float, demand: float) -> None:
        if demand < 0:
            raise ValueError("demand must be non-negative")
        self._last = demand

    def predict(self) -> float:
        return self._last


class EwmaPredictor(DemandPredictor):
    """Exponentially-weighted moving average with trend compensation.

    Prediction is ``ewma + trend_gain * max(trend, 0)`` so rising demand is
    anticipated but falling demand is not over-extrapolated (parking too
    eagerly on a downward blip is the costly mistake).  ``trend_gain``
    defaults to several observation intervals of look-ahead: since the
    smoothed level lags the raw signal, a gain of 1 would never get ahead
    of the current observation on a steady ramp.
    """

    def __init__(self, alpha: float = 0.4, trend_gain: float = 4.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if trend_gain < 0:
            raise ValueError("trend_gain must be >= 0")
        self.alpha = alpha
        self.trend_gain = trend_gain
        self._ewma = 0.0
        self._prev_ewma = 0.0
        self._seen = False

    def observe(self, t: float, demand: float) -> None:
        if demand < 0:
            raise ValueError("demand must be non-negative")
        if not self._seen:
            self._ewma = self._prev_ewma = demand
            self._seen = True
            return
        self._prev_ewma = self._ewma
        self._ewma = self.alpha * demand + (1.0 - self.alpha) * self._ewma

    def predict(self) -> float:
        trend = self._ewma - self._prev_ewma
        return max(0.0, self._ewma + self.trend_gain * max(trend, 0.0))


class PeakWindowPredictor(DemandPredictor):
    """Predicts the peak observed inside a sliding look-back window.

    The conservative choice: capacity follows recent *peaks*, not means —
    appropriate when wake latency is long (S5) and under-provisioning is
    expensive.
    """

    def __init__(self, window_s: float = 3600.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._obs: Deque[Tuple[float, float]] = deque()

    def observe(self, t: float, demand: float) -> None:
        if demand < 0:
            raise ValueError("demand must be non-negative")
        self._obs.append((t, demand))
        cutoff = t - self.window_s
        while self._obs and self._obs[0][0] < cutoff:
            self._obs.popleft()

    def predict(self) -> float:
        if not self._obs:
            return 0.0
        return max(d for _, d in self._obs)


class HistoryPredictor(DemandPredictor):
    """Time-of-day history: blend of recent demand and same-slot-yesterday.

    Enterprise demand is strongly diurnal; the best cheap forecast for
    "the next half hour" is usually "this time yesterday, adjusted by how
    today is running relative to yesterday".  The predictor bins the day
    into ``slots`` buckets, keeps an EWMA per bucket across days, and
    predicts ``max(last, history[next slot])`` — conservative in both
    directions.
    """

    def __init__(
        self,
        slots: int = 48,
        period_s: float = 86_400.0,
        alpha: float = 0.5,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.slots = slots
        self.period_s = period_s
        self.alpha = alpha
        self._history: List[Optional[float]] = [None] * slots
        self._last = 0.0
        self._last_t = 0.0

    def _slot(self, t: float) -> int:
        return int((t % self.period_s) / self.period_s * self.slots) % self.slots

    def observe(self, t: float, demand: float) -> None:
        if demand < 0:
            raise ValueError("demand must be non-negative")
        slot = self._slot(t)
        prev = self._history[slot]
        if prev is None:
            self._history[slot] = demand
        else:
            self._history[slot] = self.alpha * demand + (1 - self.alpha) * prev
        self._last = demand
        self._last_t = t

    def predict(self) -> float:
        next_slot = (self._slot(self._last_t) + 1) % self.slots
        remembered = self._history[next_slot]
        if remembered is None:
            return self._last
        return max(self._last, remembered)


def make_predictor(name: str, **kwargs: Any) -> DemandPredictor:
    """Factory keyed by short name:
    ``reactive`` | ``ewma`` | ``peak`` | ``history``."""
    factories: Dict[str, Callable[..., DemandPredictor]] = {
        "reactive": ReactivePredictor,
        "ewma": EwmaPredictor,
        "peak": PeakWindowPredictor,
        "history": HistoryPredictor,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            "unknown predictor {!r}; choose from {}".format(name, sorted(factories))
        ) from None
    return factory(**kwargs)
