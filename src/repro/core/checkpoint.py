"""Crash-safe checkpoint/restore of a running scenario.

Long-horizon runs (the month-scale fleet scenarios behind the paper's
headline numbers) must survive crashes, OOM kills and preemption.  This
module snapshots the *complete* simulation state — cluster, management
plane, RNG streams, trace buffer, and every pending simulated event —
and restores it so the resumed run produces a trace **byte-identical**
to the uninterrupted one (enforced by the differential suite and the
SIGKILL crash-injection harness in ``tests/test_checkpoint*.py``).

Why this is not just ``pickle.dump(env)``
-----------------------------------------
CPython cannot pickle generator frames, and every simulation process is
a generator.  The kernel therefore checkpoints only at **quiescent
points**: instants where every live process is a registered long-lived
loop parked on a ``Timeout``/``SharedTimeout``.  Each such loop declares
a :class:`~repro.sim.ResumeSpec` at spawn — a picklable recipe that
rebuilds an equivalent generator positioned at its wait.  The capture
walks the event heap, records ``(when, priority, eid, cb_index)`` for
every resumable waiter, and **vetoes** the snapshot (raising
:class:`CheckpointVeto`) if anything else is in flight — migrations,
power transitions, evacuations.  The coordinator simply retries a bit
later; transient activity delays a checkpoint, it is never dropped.

Restore re-creates the processes in record order.  Because fresh events
are numbered in that same order, every heap tie ``(when, priority)``
resolves exactly as it would have in the uninterrupted run, and
coalesced shared timeouts reassemble their waiter lists in the original
callback order.  Absolute-instant scheduling (``timeout_at``) avoids the
``now + (t - now)`` float round-trip that would shift re-armed waits by
one ulp.

File format (schema 1)
----------------------
::

    REPROCKPT1\\n
    {manifest JSON, one line}\\n
    <pickle payload>

The manifest carries the schema version, the writing repro version, the
payload byte count and its sha256.  Loads reject anything torn, stale or
corrupted with a clear :class:`CheckpointError` — a bad checkpoint is
never silently resumed.  Files are written through
:func:`repro.core.atomicio.atomic_write` (tmp + fsync + rename), so a
crash mid-save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.atomicio import atomic_write
from repro.sim.environment import Environment
from repro.sim.events import SharedTimeout, Timeout
from repro.sim.process import Process, ResumeSpec

if TYPE_CHECKING:
    from repro.core.config import ManagerConfig
    from repro.core.plane.arbiter import PowerAwareManager

#: Bump on any incompatible change to the manifest or payload layout.
CHECKPOINT_SCHEMA = 1

_MAGIC = b"REPROCKPT1\n"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or safely loaded."""


class CheckpointVeto(CheckpointError):
    """The simulation is not at a quiescent point; retry later.

    Raised during capture when some live process is not a registered
    resumable loop (e.g. a migration or power transition is in flight).
    Transient by construction — the activity drains and a later attempt
    succeeds.
    """


@dataclass(frozen=True)
class ResumeRecord:
    """One resumable process's position in the pending-event heap.

    ``when``/``priority``/``eid`` locate the event the process waits on;
    ``cb_index`` is the waiter's position in that event's callback list
    (shared timeouts carry several waiters whose resume order matters).
    Sorting records by this 4-tuple is exactly the order the original
    heap would have fired them in.
    """

    when: float
    priority: int
    eid: int
    cb_index: int
    spec: ResumeSpec


def capture_resume_records(env: Environment) -> List[ResumeRecord]:
    """Prove quiescence and record every pending resumable wait.

    Walks the event heap applying the capture rules (see module
    docstring); raises :class:`CheckpointVeto` on the first event — or
    live process — the checkpoint protocol cannot account for.
    """
    records: List[ResumeRecord] = []
    covered: set = set()
    for when, priority, eid, event in env._queue:
        callbacks = event.callbacks
        if callbacks is None:
            continue  # already processed; stale heap reference
        if (
            priority == -1
            and len(callbacks) == 1
            and callbacks[0] == env._stop_callback
        ):
            # The run-horizon stop event: env.run(until=...) re-creates
            # it on resume at the exact same instant and priority.
            continue
        if not callbacks and event.triggered and event._ok:
            # Inert notification: a finished process (or similar) nobody
            # waits on.  Popping it only advances the event counter.
            continue
        if isinstance(event, (Timeout, SharedTimeout)):
            for index, callback in enumerate(callbacks):
                if callback == env._purge_shared:
                    continue
                waiter = getattr(callback, "__self__", None)
                if (
                    getattr(callback, "__name__", "") == "_resume"
                    and isinstance(waiter, Process)
                    and waiter.is_alive
                    and waiter.ckpt is not None
                ):
                    records.append(
                        ResumeRecord(when, priority, eid, index, waiter.ckpt)
                    )
                    covered.add(id(waiter))
                    continue
                raise CheckpointVeto(
                    "non-resumable waiter on {!r} at t={}: {!r}".format(
                        event, when, callback
                    )
                )
            continue
        raise CheckpointVeto(
            "pending {} at t={} cannot be checkpointed".format(
                type(event).__name__, when
            )
        )
    # Completeness: every live process must be parked on a recorded wait.
    # The active process is the checkpoint coordinator itself (capture
    # runs inside its step) and is re-created fresh on resume.
    for proc in env._live:
        if proc is env._active_process:
            continue
        if id(proc) not in covered:
            raise CheckpointVeto(
                "live process {!r} is not parked on a resumable wait".format(
                    proc
                )
            )
    return records


def restore_processes(env: Environment, records: List[ResumeRecord]) -> None:
    """Re-create every checkpointed process at its recorded wait.

    Records are replayed in heap-fire order ``(when, priority, eid,
    cb_index)``; fresh events are therefore numbered in that order and
    every tie resolves as the uninterrupted run's heap would have.
    """
    for record in sorted(
        records, key=lambda r: (r.when, r.priority, r.eid, r.cb_index)
    ):
        if record.when < env.now:
            raise CheckpointError(
                "resume record at t={} predates checkpoint time {}".format(
                    record.when, env.now
                )
            )
        env.process(
            record.spec.make_generator(record.when), ckpt=record.spec
        )


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------


def save_checkpoint(
    path: Union[str, Path],
    state: Any,
    records: List[ResumeRecord],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write ``state`` + ``records`` atomically; returns the manifest.

    ``state`` is the runner's live-scenario bundle (it must contain the
    environment the records reference, so pickling preserves shared
    identity between record specs and the object graph).
    """
    from repro import __version__

    payload = pickle.dumps(
        {"state": state, "records": records}, protocol=pickle.HIGHEST_PROTOCOL
    )
    manifest: Dict[str, Any] = dict(meta or {})
    manifest.update(
        {
            "schema": CHECKPOINT_SCHEMA,
            "repro_version": __version__,
            "payload_bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
    )
    header = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    atomic_write(path, _MAGIC + header.encode("utf-8") + b"\n" + payload)
    return manifest


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and validate a checkpoint's manifest without unpickling."""
    target = Path(path)
    if not target.exists():
        raise CheckpointError("no such checkpoint: {}".format(target))
    data = target.read_bytes()
    manifest, _ = _split(data, target)
    return manifest


def load_checkpoint(
    path: Union[str, Path],
) -> Tuple[Any, List[ResumeRecord], Dict[str, Any]]:
    """Load and fully validate a checkpoint; never resumes a bad one.

    Returns ``(state, records, manifest)``.  Raises
    :class:`CheckpointError` naming the exact defect — bad magic,
    incompatible schema, stale writer version, truncation, or digest
    mismatch — so operators can tell a torn file from a wrong one.
    """
    from repro import __version__

    target = Path(path)
    if not target.exists():
        raise CheckpointError("no such checkpoint: {}".format(target))
    data = target.read_bytes()
    manifest, payload = _split(data, target)
    if manifest.get("repro_version") != __version__:
        raise CheckpointError(
            "stale checkpoint {}: written by repro {}, running {}".format(
                target, manifest.get("repro_version"), __version__
            )
        )
    expected = manifest.get("payload_bytes")
    if not isinstance(expected, int) or len(payload) < expected:
        raise CheckpointError(
            "truncated checkpoint {}: {} of {} payload bytes".format(
                target, len(payload), expected
            )
        )
    if len(payload) > expected:
        raise CheckpointError(
            "corrupted checkpoint {}: {} payload bytes, manifest says {}".format(
                target, len(payload), expected
            )
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("sha256"):
        raise CheckpointError(
            "corrupted checkpoint {}: payload digest mismatch".format(target)
        )
    try:
        blob = pickle.loads(payload)
        state, records = blob["state"], blob["records"]
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            "corrupted checkpoint {}: unreadable payload ({})".format(
                target, exc
            )
        ) from exc
    return state, records, manifest


def _split(data: bytes, target: Path) -> Tuple[Dict[str, Any], bytes]:
    """Separate ``data`` into (manifest, payload), validating framing."""
    if not data.startswith(_MAGIC):
        raise CheckpointError(
            "not a repro checkpoint: {} (bad magic)".format(target)
        )
    try:
        header_end = data.index(b"\n", len(_MAGIC))
    except ValueError:
        raise CheckpointError(
            "truncated checkpoint {}: manifest line incomplete".format(target)
        ) from None
    try:
        manifest = json.loads(data[len(_MAGIC):header_end].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            "corrupted checkpoint {}: unreadable manifest ({})".format(
                target, exc
            )
        ) from exc
    if manifest.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            "incompatible checkpoint schema {} in {} (this build reads {})".format(
                manifest.get("schema"), target, CHECKPOINT_SCHEMA
            )
        )
    return manifest, data[header_end + 1:]


# ----------------------------------------------------------------------
# In-simulation coordinator
# ----------------------------------------------------------------------


class CheckpointCoordinator:
    """Periodic in-simulation checkpointing at simulated-time boundaries.

    Wakes at every multiple of ``every_s``, calls the runner-provided
    ``save_fn(path)``, and on a :class:`CheckpointVeto` retries every
    ``retry_s`` until the transient activity drains (bounded by
    ``max_retries``, after which the boundary is skipped and counted).

    The coordinator deliberately uses plain (non-shared) timeouts so it
    never perturbs the waiter order of coalesced simulation events, and
    it never mutates simulation state — enabling checkpointing shifts
    event ids uniformly but leaves the decision trace byte-identical.
    The coordinator itself is *not* resumable: a resumed run simply
    starts a fresh one, which computes the same next boundary.
    """

    def __init__(
        self,
        env: Environment,
        every_s: float,
        directory: Union[str, Path],
        save_fn: Callable[[Path], Dict[str, Any]],
        retry_s: float = 1.0,
        max_retries: int = 600,
    ) -> None:
        if every_s <= 0:
            raise ValueError("every_s must be positive")
        self.env = env
        self.every_s = float(every_s)
        self.directory = Path(directory)
        self._save = save_fn
        self.retry_s = float(retry_s)
        self.max_retries = int(max_retries)
        #: ``(path, manifest)`` per successful save, in order.
        self.saved: List[Tuple[Path, Dict[str, Any]]] = []
        #: Boundaries abandoned after ``max_retries`` consecutive vetoes.
        self.skipped = 0

    def start(self) -> Process:
        return self.env.process(self._run())

    def checkpoint_path(self, sim_time_s: float) -> Path:
        """Deterministic file name for the boundary at ``sim_time_s``."""
        return self.directory / "ckpt-{:015d}.repro".format(
            int(round(sim_time_s * 1000.0))
        )

    def _run(self):
        while True:
            now = self.env.now
            boundary = (math.floor(now / self.every_s) + 1) * self.every_s
            if boundary <= now:  # float-grid edge: never re-fire in place
                boundary += self.every_s
            yield self.env.timeout_at(boundary)
            retries = 0
            while True:
                try:
                    manifest = self._save(self.checkpoint_path(self.env.now))
                except CheckpointVeto:
                    retries += 1
                    if retries > self.max_retries:
                        self.skipped += 1
                        break
                    yield self.env.timeout(self.retry_s)
                else:
                    self.saved.append(
                        (self.checkpoint_path(self.env.now), manifest)
                    )
                    break


# ----------------------------------------------------------------------
# Branching: one warm checkpoint, many policy variants
# ----------------------------------------------------------------------


def rebind_config(
    manager: "PowerAwareManager", config: "ManagerConfig"
) -> None:
    """Point a restored management plane at a different policy.

    Only *policy* parameters may change: structural knobs baked into the
    wired object graph at build time — the plane architecture and the
    DVFS model attached to every host — must match, and a mismatch is a
    :class:`CheckpointError`, not a silent half-rebind.
    """
    from repro.core.predictor import make_predictor
    from repro.placement.balancer import LoadBalancer

    old = manager.config
    if config.plane != old.plane:
        raise CheckpointError(
            "cannot branch across planes: checkpoint ran {!r}, "
            "requested {!r}".format(old.plane, config.plane)
        )
    if config.enable_dvfs != old.enable_dvfs:
        raise CheckpointError(
            "cannot branch across DVFS modes: the model is wired into "
            "every host at build time"
        )
    manager.config = config
    manager.predictor = make_predictor(config.predictor)
    manager.balancer = LoadBalancer(config.balance)
    # The governor and neat detectors read manager-owned config live.
    manager.governor.config = config
    scoreboard = manager.scoreboard
    scoreboard.backoff_base_s = config.wake_backoff_base_s
    scoreboard.backoff_max_s = config.wake_backoff_max_s
    scoreboard.blacklist_after_failures = config.blacklist_after_failures
    scoreboard.blacklist_hold_s = config.blacklist_hold_s
    detectors = getattr(manager, "detectors", None)
    if detectors is not None:
        detectors.underload_threshold = config.neat_underload_threshold
        detectors.overload_threshold = config.neat_overload_threshold
    channel = getattr(manager, "channel", None)
    if channel is not None:
        channel.delay_s = config.neat_request_delay_s
        channel.dropout_rate = config.neat_request_dropout
    sampler = manager.tick_aggregates
    if sampler is not None:
        sampler._headroom_ceiling = config.balance.dst_ceiling
    # Invalidate per-policy memos.
    manager._cap_cores_key = None
    manager._cap_cores_value = 0.0
