"""Crash-consistent artifact writes.

Every durable artifact this project produces — result-cache entries,
checkpoints, fuzz corpora, exported traces, BENCH json — goes through
:func:`atomic_write`.  The contract: after a crash at *any* instant, a
reader sees either the complete previous contents of the path or the
complete new contents, never a torn mix and never a zero-length file.

The implementation is the classic tmp + fsync + rename + dir-fsync
sequence.  ``os.replace`` is atomic on POSIX and on NTFS; the directory
fsync makes the rename itself durable so a post-rename power cut cannot
resurrect the old file with the new name missing.

Lint rule RL016 enforces that artifact-writing modules use these helpers
instead of bare ``open(..., "w")``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union


def atomic_write(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    Writes to a temp file in the same directory (same filesystem, so the
    final ``os.replace`` is a true rename), fsyncs the data, renames over
    the destination, then fsyncs the directory.  On any failure the temp
    file is removed and the destination is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(target))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(target.parent)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write(path, text.encode("utf-8"))


def atomic_write_json(path: Union[str, Path], payload: Any) -> None:
    """Atomically write ``payload`` as stable, diffable JSON.

    ``sort_keys`` plus a trailing newline keeps BENCH artifacts and
    manifests byte-stable across runs with identical content.
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write(path, text.encode("utf-8"))


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (makes renames durable).

    Best-effort: some filesystems (and all of Windows) refuse O_RDONLY
    opens of directories; the rename is still atomic there, just not
    guaranteed durable across power loss.
    """
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
