"""Configuration of the power-aware manager."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.placement.balancer import BalanceConfig
from repro.power.states import PowerState


@dataclass
class ManagerConfig:
    """All tunables of :class:`~repro.core.PowerAwareManager`.

    The ablation experiments (A1–A4) sweep individual fields; the policy
    presets in :mod:`repro.core.policies` are named bundles of these.

    Attributes:
        name: label used in reports.
        enable_power_mgmt: False gives the pure DRM baseline (balancing
            and admission only — no parking, no waking).
        period_s: consolidation-evaluation interval.
        watchdog_period_s: fast reactive loop (shortfall wake, pending
            admissions).
        headroom: capacity margin over predicted demand (0.15 = +15 %).
        cpu_target: utilization ceiling used when packing/evacuating.
        park_state: which low-power state surplus hosts are put into.
        park_delay_rounds: consecutive surplus evaluations required before
            parking (hysteresis, A1).
        max_parks_per_round: parking rate limit.
        wake_boost_hosts: extra hosts woken beyond the computed need (A4).
        min_active_hosts: never park below this floor.
        predictor: predictor short name (A3).
        enable_balancing: run the DRM load balancer each round.
        balance: DRM balancer tunables.
        deep_park_state: if set, hosts parked beyond the first
            ``warm_pool_hosts`` go into this deeper state instead of
            ``park_state`` (the Hybrid policy: a warm S3 pool backed by
            S5 cold storage).
        warm_pool_hosts: size of the fast-wake pool when
            ``deep_park_state`` is set.
    """

    name: str = "custom"
    enable_power_mgmt: bool = True
    period_s: float = 300.0
    watchdog_period_s: float = 60.0
    headroom: float = 0.15
    cpu_target: float = 0.85
    park_state: PowerState = PowerState.SLEEP
    park_delay_rounds: int = 2
    max_parks_per_round: int = 2
    wake_boost_hosts: int = 0
    min_active_hosts: int = 1
    predictor: str = "ewma"
    enable_balancing: bool = True
    balance: BalanceConfig = field(default_factory=BalanceConfig)
    deep_park_state: Optional[PowerState] = None
    warm_pool_hosts: int = 2
    #: Attach an ondemand DVFS governor to every host (A5 ablation).
    enable_dvfs: bool = False
    dvfs_target: float = 0.8
    #: Optional cluster power budget in watts: wakes that would project
    #: total power above it are deferred (peak shaving / branch-circuit
    #: limits).  None disables capping.
    power_cap_w: Optional[float] = None
    #: Park-candidate ordering: "load" (emptiest host first — fewest
    #: migrations) or "efficiency" (within a load bucket, prefer parking
    #: the host with the highest idle draw — biggest saving; matters on
    #: heterogeneous, mixed-generation clusters).
    park_preference: str = "load"
    #: Queued admissions waiting longer than this are rejected back to the
    #: requester (None = wait indefinitely).  Mirrors the provisioning
    #: SLA real clouds put on placement.
    admission_timeout_s: Optional[float] = None
    #: Fault recovery (see :mod:`repro.datacenter.recovery`): minimum wait
    #: before retrying a host whose wake failed; doubles per consecutive
    #: failure up to ``wake_backoff_max_s``.
    wake_backoff_base_s: float = 60.0
    wake_backoff_max_s: float = 900.0
    #: After this many consecutive failures a host is blacklisted for
    #: ``blacklist_hold_s`` and the manager wakes *different* hosts.
    blacklist_after_failures: int = 3
    blacklist_hold_s: float = 1800.0
    #: Watchdog escalation: when a capacity shortfall persists across this
    #: many consecutive watchdog ticks, wake ``escalation_boost_hosts``
    #: extra hosts beyond the computed need (None disables escalation).
    escalation_after_ticks: Optional[int] = 3
    escalation_boost_hosts: int = 1
    #: Migration retry policy (evacuations only; balancer moves are
    #: opportunistic and simply retried by the next balancing round): a
    #: failed mid-copy migration is retried up to this many times ...
    migration_retry_limit: int = 2
    #: ... after an exponential backoff ``base * 2^(attempt-1)`` capped at
    #: ``migration_backoff_max_s``, re-planning the destination when the
    #: original target is no longer viable.
    migration_backoff_base_s: float = 30.0
    migration_backoff_max_s: float = 300.0
    #: Total wall-clock budget for one VM's retry chain; once exceeded no
    #: further retry starts and the evacuation aborts (None = unbounded).
    migration_deadline_s: Optional[float] = 1800.0
    #: Safe-mode governor: freeze consolidation (no new evacuations or
    #: parks; in-flight evacuations drain) when the observed migration
    #: failure fraction over ``safe_mode_window_s`` reaches this threshold
    #: with at least ``safe_mode_min_failures`` failures observed, or the
    #: telemetry snapshot the manager plans against is older than
    #: ``safe_mode_telemetry_age_s``.  None disables the governor.
    safe_mode_failure_threshold: Optional[float] = 0.5
    safe_mode_min_failures: int = 3
    safe_mode_window_s: float = 1800.0
    #: Telemetry-age trigger; only meaningful when a staleness model is
    #: attached (ground-truth reads have age zero).
    safe_mode_telemetry_age_s: Optional[float] = 600.0
    #: Hysteresis: safe mode holds at least this long, and exits only once
    #: the failure rate has fallen to half the entry threshold (and the
    #: telemetry age back under its limit).
    safe_mode_hold_s: float = 900.0
    #: Management-plane architecture (see :mod:`repro.core.plane`):
    #: "centralized" plans on the telemetry view directly; "neat" runs
    #: the OpenStack-Neat-style split — per-host local detectors feeding
    #: a global arbiter through a delayed, lossy request channel.
    plane: str = "centralized"
    #: Neat-mode local detector thresholds: a host flags itself
    #: underloaded below / overloaded above these utilization fractions.
    neat_underload_threshold: float = 0.3
    neat_overload_threshold: float = 0.9
    #: Neat-mode request channel: delivery delay and i.i.d. report loss
    #: between local detectors and the global arbiter.  The zero/zero
    #: default makes fault-free neat runs byte-identical to centralized.
    neat_request_delay_s: float = 0.0
    neat_request_dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.watchdog_period_s <= 0:
            raise ValueError("periods must be positive")
        if self.headroom < 0:
            raise ValueError("headroom must be >= 0")
        if not 0.0 < self.cpu_target <= 1.0:
            raise ValueError("cpu_target must be in (0, 1]")
        if not self.park_state.is_parked:
            raise ValueError("park_state must be a parked state")
        if self.park_delay_rounds < 0:
            raise ValueError("park_delay_rounds must be >= 0")
        if self.max_parks_per_round < 1:
            raise ValueError("max_parks_per_round must be >= 1")
        if self.wake_boost_hosts < 0:
            raise ValueError("wake_boost_hosts must be >= 0")
        if self.min_active_hosts < 1:
            raise ValueError("min_active_hosts must be >= 1")
        if self.deep_park_state is not None and not self.deep_park_state.is_parked:
            raise ValueError("deep_park_state must be a parked state")
        if self.warm_pool_hosts < 0:
            raise ValueError("warm_pool_hosts must be >= 0")
        if not 0.0 < self.dvfs_target <= 1.0:
            raise ValueError("dvfs_target must be in (0, 1]")
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError("power_cap_w must be positive when set")
        if self.park_preference not in ("load", "efficiency"):
            raise ValueError("park_preference must be 'load' or 'efficiency'")
        if self.admission_timeout_s is not None and self.admission_timeout_s <= 0:
            raise ValueError("admission_timeout_s must be positive when set")
        if self.wake_backoff_base_s <= 0:
            raise ValueError("wake_backoff_base_s must be positive")
        if self.wake_backoff_max_s < self.wake_backoff_base_s:
            raise ValueError("wake_backoff_max_s must be >= wake_backoff_base_s")
        if self.blacklist_after_failures < 1:
            raise ValueError("blacklist_after_failures must be >= 1")
        if self.blacklist_hold_s <= 0:
            raise ValueError("blacklist_hold_s must be positive")
        if self.escalation_after_ticks is not None and self.escalation_after_ticks < 1:
            raise ValueError("escalation_after_ticks must be >= 1 when set")
        if self.escalation_boost_hosts < 1:
            raise ValueError("escalation_boost_hosts must be >= 1")
        if self.migration_retry_limit < 0:
            raise ValueError("migration_retry_limit must be >= 0")
        if self.migration_backoff_base_s <= 0:
            raise ValueError("migration_backoff_base_s must be positive")
        if self.migration_backoff_max_s < self.migration_backoff_base_s:
            raise ValueError(
                "migration_backoff_max_s must be >= migration_backoff_base_s"
            )
        if self.migration_deadline_s is not None and self.migration_deadline_s <= 0:
            raise ValueError("migration_deadline_s must be positive when set")
        if self.safe_mode_failure_threshold is not None and not (
            0.0 < self.safe_mode_failure_threshold <= 1.0
        ):
            raise ValueError(
                "safe_mode_failure_threshold must be in (0, 1] when set"
            )
        if self.safe_mode_min_failures < 1:
            raise ValueError("safe_mode_min_failures must be >= 1")
        if self.safe_mode_window_s <= 0:
            raise ValueError("safe_mode_window_s must be positive")
        if (
            self.safe_mode_telemetry_age_s is not None
            and self.safe_mode_telemetry_age_s <= 0
        ):
            raise ValueError("safe_mode_telemetry_age_s must be positive when set")
        if self.safe_mode_hold_s <= 0:
            raise ValueError("safe_mode_hold_s must be positive")
        if self.plane not in ("centralized", "neat"):
            raise ValueError("plane must be 'centralized' or 'neat'")
        if not 0.0 <= self.neat_underload_threshold < self.neat_overload_threshold:
            raise ValueError(
                "neat thresholds must satisfy 0 <= underload < overload"
            )
        if self.neat_request_delay_s < 0:
            raise ValueError("neat_request_delay_s must be >= 0")
        if not 0.0 <= self.neat_request_dropout < 1.0:
            raise ValueError("neat_request_dropout must be in [0, 1)")

    def with_overrides(self, **kwargs: Any) -> "ManagerConfig":
        """A copy with selected fields replaced (used by sweeps)."""
        return replace(self, **kwargs)
