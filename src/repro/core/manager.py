"""Compatibility shim for the pre-split manager module.

The power-aware manager now lives in the composable management plane
(:mod:`repro.core.plane`): observation in ``plane.observer``, the
safe-mode governor in ``plane.governor``, the single-owner wake/park
actuator in ``plane.actuator``, the global arbiter (this class's former
body) in ``plane.arbiter``, and the decentralized variant in
``plane.neat``.  This module keeps the historical import path working.
"""

from repro.core.plane.arbiter import PowerAwareManager, _EvacuationTask
from repro.core.plane.log import ManagementLog

__all__ = ["ManagementLog", "PowerAwareManager", "_EvacuationTask"]
