"""Disk-backed scenario result cache.

Benchmark modules re-run identical scenarios constantly — every
policy-comparison figure recomputes the same ``AlwaysOn`` baseline, and a
repeated sweep re-simulates every point.  This module memoizes finished
runs on disk, keyed by a *content hash* of everything that determines the
outcome:

* the policy :class:`~repro.core.config.ManagerConfig` (all fields),
* every ``run_scenario`` keyword argument (fleet spec, seed, horizon …),
* the installed package version (:data:`repro.__version__`) and a cache
  schema number.

The key is built from a canonical JSON encoding, so two configs with the
same values always hash identically regardless of construction order.
Anything that cannot be canonically encoded (e.g. a hand-built VM list
with custom trace callables) raises :class:`Uncacheable` — such scenarios
still *run*, they just skip the cache.

Invalidation rules:

* bumping ``repro.__version__`` or :data:`CACHE_SCHEMA` invalidates every
  entry (stale entries are simply never looked up again);
* ``ResultCache.clear()`` (or ``repro cache clear``) deletes everything;
* the ``REPRO_NO_CACHE`` environment variable disables lookups entirely;
* ``REPRO_CACHE_DIR`` relocates the cache (default
  ``~/.cache/repro-sim``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

#: Bump to invalidate every cached result after a format change.
#: 2: report.extra gained the fault-recovery counters (wake_retries,
#:    blacklists, escalations, hosts_repaired, retires_unknown).
#: 3: report.extra gained the degraded-plane counters (migrations_started/
#:    completed/aborted/failed, migration_retries, safe_mode_enters/exits,
#:    telemetry_dropped).
#: 4: report.extra gained the management-plane counters (wake_rejections,
#:    detector_reports, detector_reports_dropped).
#: 5: entries gained the digest-framed on-disk layout (magic + sha256
#:    over the pickle payload); pre-frame entries are unreadable.
CACHE_SCHEMA = 5

#: On-disk entry framing: magic line, sha256 hex of the payload, newline,
#: pickle payload.  A read that fails any of these checks is *quarantined*
#: (renamed aside for inspection), never trusted and never raised through
#: to the caller — a torn cache entry must degrade to a cache miss.
_ENTRY_MAGIC = b"REPROCACHE1\n"

#: Every counter key ``run_scenario`` writes into ``report.extra``.
#:
#: Cached results round-trip ``extra`` through pickle, so a counter that
#: exists in fresh runs but not in this list is exactly the kind of
#: silent schema drift the CACHE_SCHEMA bumps above exist to prevent —
#: reprolint RL013 cross-checks this list against the actual
#: ``report.extra`` writes by AST, in both directions.  Adding a counter
#: means adding it here *and* bumping :data:`CACHE_SCHEMA`.
EXTRA_FIELDS = (
    "reactive_wakes",
    "wakes_requested",
    "parks_completed",
    "evacuations_aborted",
    "balancer_moves",
    "mean_admission_wait_s",
    "pending_admissions_end",
    "wake_failures",
    "wake_retries",
    "wake_rejections",
    "blacklists",
    "escalations",
    "hosts_repaired",
    "retires_unknown",
    "hosts_out_of_service",
    "cap_deferrals",
    "migrations_started",
    "migrations_completed",
    "migrations_aborted",
    "migrations_failed",
    "migration_retries",
    "safe_mode_enters",
    "safe_mode_exits",
    "telemetry_dropped",
    "detector_reports",
    "detector_reports_dropped",
    "violation_gold",
    "violation_silver",
    "violation_bronze",
    "churn_arrived",
    "churn_rejected",
    "churn_departed",
)

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"


class Uncacheable(TypeError):
    """The scenario contains state that has no canonical encoding."""


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports repro.core, which imports
    # this module — a top-level import would be circular.
    import repro

    return repro.__version__


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Supports the building blocks scenario descriptions are made of:
    scalars, strings, lists/tuples, string-keyed dicts, enums, dataclasses
    and numpy scalars/arrays.  Raises :class:`Uncacheable` for anything
    else (bound methods, generators, custom objects …).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return {
            "__enum__": "{}.{}".format(type(obj).__module__, type(obj).__qualname__),
            "name": obj.name,
        }
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": "{}.{}".format(
                type(obj).__module__, type(obj).__qualname__
            ),
            "fields": {
                f.name: canonical(getattr(obj, f.name)) for f in fields(obj)
            },
        }
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                # Enum / tuple keys (e.g. a transition table keyed by
                # (src, dst) states) serialize via their canonical form.
                key = json.dumps(canonical(key), sort_keys=True)
            encoded[key] = canonical(value)
        return {"__dict__": encoded}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [canonical(item) for item in obj]
        if isinstance(obj, (set, frozenset)):
            items = sorted(items, key=lambda it: json.dumps(it, sort_keys=True))
        return items
    try:  # numpy scalars / arrays, without a hard numpy dependency here
        import numpy as np

        if isinstance(obj, np.generic):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return [canonical(item) for item in obj.tolist()]
    except ImportError:  # pragma: no cover
        pass
    # Pure-value objects (power models, traces without RNG state …):
    # encode class + instance dict if every attribute encodes cleanly.
    # Classes can exclude derived/memo attributes via ``__cache_ignore__``.
    state = getattr(obj, "__dict__", None)
    if isinstance(state, dict) and state:
        ignore = frozenset(getattr(type(obj), "__cache_ignore__", ()))
        try:
            return {
                "__object__": "{}.{}".format(
                    type(obj).__module__, type(obj).__qualname__
                ),
                "state": {
                    name: canonical(value)
                    for name, value in sorted(state.items())
                    if name not in ignore
                },
            }
        except Uncacheable:
            pass
    raise Uncacheable(
        "{!r} ({}) has no canonical encoding; pass picklable dataclasses, "
        "scalars and containers, or disable caching for this scenario".format(
            obj, type(obj).__name__
        )
    )


def scenario_digest(
    config: Any, kwargs: Dict[str, Any], extra: Optional[Dict[str, Any]] = None
) -> str:
    """Content hash identifying one ``run_scenario(config, **kwargs)`` call.

    ``extra`` folds additional outcome-determining flags (e.g. trace
    capture) into the key.  It is omitted from the payload when None so
    digests of plain scenarios are stable across versions that added it.
    """
    try:
        payload = {
            "schema": CACHE_SCHEMA,
            "version": _package_version(),
            "config": canonical(config),
            "kwargs": canonical(kwargs),
        }
        if extra is not None:
            payload["extra"] = canonical(extra)
    except RecursionError:
        raise Uncacheable("scenario description contains reference cycles")
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_disabled() -> bool:
    """True when the environment kill-switch is set."""
    return bool(os.environ.get(_ENV_DISABLE))


def default_cache_dir() -> Path:
    """Resolve the cache directory (``REPRO_CACHE_DIR`` overrides)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-sim"


class ResultCache:
    """Pickle-per-entry disk cache with an in-process read-through layer."""

    def __init__(self, root: Union[str, "os.PathLike[str]", None] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._memory: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "{}.pkl".format(key)

    def _quarantine(self, path: Path) -> None:
        """Move a torn/foreign entry aside so it never satisfies a read.

        Renaming (rather than deleting) keeps the evidence for post-mortem
        while guaranteeing the ``*.pkl`` glob and future ``get`` calls
        skip it.  Rename failures fall back to best-effort unlink — a bad
        entry must not survive under its original name.
        """
        self.quarantined += 1
        try:
            os.replace(path, path.with_suffix(".quarantine"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key``, or None.

        Entries whose digest frame does not verify (torn write, bit rot,
        or a pre-schema-5 file) are quarantined and reported as misses.
        """
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            self.misses += 1
            return None
        if not data.startswith(_ENTRY_MAGIC):
            self._quarantine(path)
            self.misses += 1
            return None
        frame = data[len(_ENTRY_MAGIC):]
        digest, sep, payload = frame.partition(b"\n")
        if (
            not sep
            or len(digest) != 64
            or hashlib.sha256(payload).hexdigest().encode("ascii") != digest
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ValueError, ImportError):
            # The bytes are exactly what was written (digest verified), so
            # this is a code-version skew, not corruption: quarantine it
            # all the same — it will never load here.
            self._quarantine(path)
            self.misses += 1
            return None
        self._memory[key] = value
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (digest-framed, atomic rename)."""
        from repro.core.atomicio import atomic_write

        self._memory[key] = value
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        atomic_write(self._path(key), _ENTRY_MAGIC + digest + b"\n" + payload)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def entries(self) -> Iterable[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._memory.clear()
        return removed

    def __repr__(self) -> str:
        return "<ResultCache {} entries at {}>".format(
            len(list(self.entries())), self.root
        )
