"""Delta-debugging shrinker over the fuzz spec grammar.

Given a spec whose run produces some outcome id (an invariant violation,
a behavior, or a run error — see :mod:`repro.fuzz.oracle`), the shrinker
minimizes the spec while the id keeps reproducing:

* **list-by-list** — classic ddmin (Zeller/Hildebrandt) over every tuple
  field of the grammar (chaos bursts, brownouts): remove chunks at
  doubling granularity, keep any reduction that still trips the oracle;
* **subsystem-by-subsystem** — try replacing whole sub-shapes (churn,
  faults, telemetry, the shared-demand signal) with their inert
  defaults;
* **field-by-field** — for every scalar, walk a deterministic candidate
  ladder toward the field's simplest legal value (zero / minimum /
  repeated halving of the gap), accepting the simplest candidate that
  still reproduces.

Passes repeat until a fixpoint: the result is 1-minimal with respect to
the move set — no single remaining move reproduces the outcome.  Every
candidate evaluation is memoized on the spec's canonical JSON, and the
total number of *distinct* oracle evaluations is bounded by
``max_evaluations`` (the ddmin bound tests assert convergence well under
it).  The shrinker itself draws no randomness: given the same spec,
oracle, and target id, the reduction sequence is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.cache import ResultCache
from repro.fuzz.oracle import run_spec
from repro.fuzz.spec import (
    ChurnShape,
    FaultShape,
    FuzzSpec,
    TelemetryShape,
)

#: An oracle maps a candidate spec to the outcome ids its run produces.
Oracle = Callable[[FuzzSpec], FrozenSet[str]]

#: Default cap on distinct oracle evaluations per shrink session.
DEFAULT_MAX_EVALUATIONS = 256

#: Scalar fields the field-by-field pass minimizes:
#: (path, kind, floor).  Ints shrink toward the floor by halving the
#: gap; floats additionally try 0.0 (or the floor) first.
_SCALAR_FIELDS: Tuple[Tuple[Tuple[str, ...], str, float], ...] = (
    (("cluster", "n_hosts"), "int", 1),
    (("workload", "n_vms"), "int", 1),
    (("horizon_s",), "float", 1800.0),
    (("workload", "shared_fraction"), "float", 0.0),
    (("workload", "noise_sigma"), "float", 0.0),
    (("churn", "rate_per_h"), "float", 0.0),
    (("faults", "wake_failure_rate"), "float", 0.0),
    (("faults", "permanent_fraction"), "float", 0.0),
    (("faults", "mttr_h"), "float", 0.0),
    (("faults", "migration_failure_rate"), "float", 0.0),
    (("telemetry", "delay_s"), "float", 0.0),
    (("telemetry", "dropout_rate"), "float", 0.0),
    (("policy", "park_delay_rounds"), "int", 0),
    (("policy", "max_parks_per_round"), "int", 1),
)

#: Whole-subsystem simplifications tried before scalar minimization:
#: (path, replacement factory).
_SUBSYSTEM_RESETS: Tuple[Tuple[Tuple[str, ...], Callable[[], Any]], ...] = (
    (("churn",), ChurnShape),
    (("telemetry",), TelemetryShape),
    (("faults",), FaultShape),
)


class ShrinkBudgetExhausted(RuntimeError):
    """The oracle evaluation budget ran out before reaching a fixpoint."""


@dataclass
class ShrinkResult:
    """Outcome of one shrink session."""

    spec: FuzzSpec
    target: str
    evaluations: int
    reductions: int
    converged: bool
    #: Human-readable reduction journal ("removed faults.bursts[1]", ...).
    steps: List[str] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "evaluations": self.evaluations,
            "reductions": self.reductions,
            "converged": self.converged,
            "steps": list(self.steps),
            "spec": self.spec.to_json_dict(),
        }


def _get_path(spec: FuzzSpec, path: Tuple[str, ...]) -> Any:
    value: Any = spec
    for name in path:
        value = getattr(value, name)
    return value


def _set_path(spec: FuzzSpec, path: Tuple[str, ...], value: Any) -> FuzzSpec:
    """A copy of ``spec`` with the (possibly nested) field replaced."""
    if len(path) == 1:
        return replace(spec, **{path[0]: value})
    inner = replace(getattr(spec, path[0]), **{path[1]: value})
    return replace(spec, **{path[0]: inner})


def _scalar_candidates(kind: str, current: Any, floor: float) -> List[Any]:
    """The candidate ladder for one scalar, simplest first."""
    candidates: List[Any] = []
    if kind == "int":
        lo, cur = int(floor), int(current)
        if cur <= lo:
            return []
        candidates.append(lo)
        gap = cur - lo
        while gap > 1:
            gap //= 2
            value = lo + gap
            if value not in candidates and value != cur:
                candidates.append(value)
    else:
        lo, cur = float(floor), float(current)
        if cur <= lo:
            return []
        candidates.append(lo)
        gap = cur - lo
        for _ in range(4):
            gap /= 2.0
            value = round(lo + gap, 6)
            if value not in candidates and value != cur:
                candidates.append(value)
    return candidates


class _Session:
    """One shrink run: memoized oracle + budget accounting."""

    def __init__(self, oracle: Oracle, target: str, max_evaluations: int) -> None:
        self._oracle = oracle
        self._target = target
        self._memo: Dict[str, bool] = {}
        self.evaluations = 0
        self.max_evaluations = max_evaluations

    def trips(self, spec: FuzzSpec) -> bool:
        key = spec.dumps()
        if key in self._memo:
            return self._memo[key]
        if self.evaluations >= self.max_evaluations:
            raise ShrinkBudgetExhausted(
                "shrink exceeded {} oracle evaluations".format(self.max_evaluations)
            )
        self.evaluations += 1
        result = self._target in self._oracle(spec)
        self._memo[key] = result
        return result


def _ddmin_tuple(
    session: _Session,
    spec: FuzzSpec,
    path: Tuple[str, ...],
    steps: List[str],
) -> Tuple[FuzzSpec, int]:
    """Classic ddmin over one tuple field; returns (spec, reductions)."""
    items: Tuple[Any, ...] = _get_path(spec, path)
    reductions = 0
    dotted = ".".join(path)
    # Fast path: the whole list may be unnecessary.
    if items:
        candidate = _set_path(spec, path, ())
        if session.trips(candidate):
            steps.append("cleared {} ({} item(s))".format(dotted, len(items)))
            return candidate, 1
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            remainder = items[:start] + items[start + chunk:]
            if not remainder:
                continue
            candidate = _set_path(spec, path, remainder)
            if session.trips(candidate):
                steps.append(
                    "removed {}[{}:{}]".format(dotted, start, start + chunk)
                )
                spec, items = candidate, remainder
                reductions += 1
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break
            n = min(len(items), n * 2)
    # Single remaining item: try dropping it outright.
    if len(items) == 1:
        candidate = _set_path(spec, path, ())
        if session.trips(candidate):
            steps.append("cleared {} (last item)".format(dotted))
            spec = candidate
            reductions += 1
    return spec, reductions


def _try_candidate(
    session: _Session,
    spec: FuzzSpec,
    path: Tuple[str, ...],
    value: Any,
) -> Optional[FuzzSpec]:
    """Build and test one candidate; None when illegal or non-reproducing."""
    try:
        candidate = _set_path(spec, path, value)
    except ValueError:
        return None
    if candidate == spec:
        return None
    return candidate if session.trips(candidate) else None


def shrink_spec(
    spec: FuzzSpec,
    target: str,
    oracle: Optional[Oracle] = None,
    max_evaluations: int = DEFAULT_MAX_EVALUATIONS,
    cache: Any = True,
) -> ShrinkResult:
    """Minimize ``spec`` while its run keeps producing ``target``.

    Args:
        spec: the reproducing spec to minimize.
        target: the outcome id that must keep reproducing — an invariant
            family id (``"residency"``), a behavior (``"extra:..."``), or
            a run-error id (``"error:RuntimeError"``).
        oracle: outcome-id function; defaults to the real runner
            (:func:`repro.fuzz.oracle.run_spec` with ``cache``).
        max_evaluations: hard cap on distinct oracle evaluations.
        cache: result-cache setting for the default oracle (True uses the
            shared disk cache; pass a :class:`ResultCache` to relocate).

    Raises:
        ValueError: the starting spec does not reproduce ``target``.
    """
    if oracle is None:
        store = cache if isinstance(cache, (bool, ResultCache)) else True

        def oracle(candidate: FuzzSpec) -> FrozenSet[str]:
            return run_spec(candidate, cache=store).outcome_ids()

    session = _Session(oracle, target, max_evaluations)
    if not session.trips(spec):
        raise ValueError(
            "spec does not reproduce outcome {!r}; nothing to shrink".format(target)
        )

    steps: List[str] = []
    total_reductions = 0
    converged = True
    try:
        changed = True
        while changed:
            changed = False
            # 1. list-by-list: ddmin over every tuple field.
            for path in ((("faults", "bursts")), (("faults", "brownouts"))):
                spec, reductions = _ddmin_tuple(session, spec, path, steps)
                if reductions:
                    total_reductions += reductions
                    changed = True
            # 2. subsystem-by-subsystem: inert defaults.
            for path, factory in _SUBSYSTEM_RESETS:
                default = factory()
                if _get_path(spec, path) == default:
                    continue
                candidate = _try_candidate(session, spec, path, default)
                if candidate is not None:
                    steps.append("reset {} to defaults".format(".".join(path)))
                    spec = candidate
                    total_reductions += 1
                    changed = True
            # 3. field-by-field: scalar candidate ladders.
            for path, kind, floor in _SCALAR_FIELDS:
                current = _get_path(spec, path)
                for value in _scalar_candidates(kind, current, floor):
                    candidate = _try_candidate(session, spec, path, value)
                    if candidate is not None:
                        steps.append(
                            "lowered {} {} -> {}".format(
                                ".".join(path), current, value
                            )
                        )
                        spec = candidate
                        total_reductions += 1
                        changed = True
                        break
    except ShrinkBudgetExhausted:
        converged = False

    return ShrinkResult(
        spec=spec,
        target=target,
        evaluations=session.evaluations,
        reductions=total_reductions,
        converged=converged,
        steps=steps,
    )


def ddmin_evaluation_bound(spec: FuzzSpec) -> int:
    """Worst-case distinct-evaluation bound for one full pass over ``spec``.

    Classic ddmin over a list of *n* items is O(n² + 3n) tests; the
    scalar ladders contribute at most ``len(candidates)`` each (≤ 6) and
    subsystem resets one each.  The convergence tests assert sessions
    stay within a small multiple of this (passes repeat only while they
    keep reducing).
    """
    bound = 0
    for path in ((("faults", "bursts")), (("faults", "brownouts"))):
        n = len(_get_path(spec, path))
        bound += n * n + 3 * n + 2
    bound += len(_SUBSYSTEM_RESETS)
    bound += 6 * len(_SCALAR_FIELDS)
    return bound


def minimal_moves(spec: FuzzSpec) -> Sequence[Tuple[str, ...]]:
    """The move-set paths (for documentation/tests of 1-minimality)."""
    return tuple(path for path, _kind, _floor in _SCALAR_FIELDS) + (
        ("faults", "bursts"),
        ("faults", "brownouts"),
    )
