"""Seeded scenario generation over the fuzz spec grammar.

Every draw flows through the registered ``fuzz`` RNG stream
(:func:`repro.core.seeding.stream_rng` with label ``"fuzz"``, qualified
by the campaign seed and the scenario index), so ``generate_spec(seed,
i)`` is a pure function: the same (seed, index) pair yields a
byte-identical spec in any process, and generating scenario *i* never
perturbs scenario *j*.

Feasibility: the generator sizes the host inventory against the *exact*
fleet the spec will materialize (``build_fleet`` is deterministic given
the fleet spec and the scenario seed), keeping ≥ 25 % memory slack so
initial placement always succeeds.  Overload is still reachable — demand
shapes, churn and faults are unconstrained — but a generated spec never
dies in setup.  The delta-debugging shrinker may of course produce
infeasible intermediate specs; the oracle classifies those as run
errors rather than invariant violations.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.policies import POLICIES
from repro.core.seeding import stream_rng
from repro.fuzz.spec import (
    BrownoutWindow,
    BurstWindow,
    ChurnShape,
    ClusterShape,
    FaultShape,
    FuzzSpec,
    PolicyShape,
    TelemetryShape,
    WorkloadShape,
)
from repro.workload.fleet import build_fleet

#: Host shapes the generator draws from (cores, mem_gb).
_HOST_SHAPES: Tuple[Tuple[float, float], ...] = (
    (8.0, 64.0),
    (16.0, 128.0),
    (32.0, 256.0),
)

#: Telemetry/demand refresh intervals worth exploring.
_EPOCH_CHOICES: Tuple[float, ...] = (30.0, 60.0, 120.0, 300.0)

#: Memory headroom kept over the exact fleet footprint at generation.
_MEM_SLACK = 1.25


def _weights(rng: np.random.Generator, n: int) -> List[float]:
    """``n`` non-degenerate mixture weights, rounded for tidy JSON."""
    raw = rng.random(n) + 0.05
    raw /= raw.sum()
    return [round(float(w), 4) for w in raw]


def _windows(
    rng: np.random.Generator, horizon_s: float, kind: str
) -> List[Tuple[float, float, float]]:
    """Up to two non-degenerate chaos windows inside the horizon."""
    count = int(rng.integers(0, 3))
    windows = []
    for _ in range(count):
        start = round(float(rng.uniform(0.0, horizon_s * 0.8)), 1)
        duration = round(float(rng.uniform(600.0, 3600.0)), 1)
        if kind == "burst":
            value = round(float(rng.uniform(0.3, 0.9)), 4)
        else:
            value = round(float(rng.uniform(2.0, 10.0)), 4)
        windows.append((start, start + duration, value))
    return windows


def generate_spec(campaign_seed: int, index: int) -> FuzzSpec:
    """Draw scenario ``index`` of the campaign seeded ``campaign_seed``."""
    rng = stream_rng("fuzz", campaign_seed, index)

    # -- policy ---------------------------------------------------------
    preset = str(rng.choice(sorted(POLICIES)))
    policy = PolicyShape(
        preset=preset,
        headroom=round(float(rng.uniform(0.05, 0.30)), 4),
        park_delay_rounds=int(rng.integers(0, 5)),
        max_parks_per_round=int(rng.integers(1, 5)),
        # Sample both management-plane architectures so the nightly
        # campaign exercises the decentralized plane too.
        plane="neat" if rng.random() < 0.5 else "centralized",
    )

    # -- horizon / epoch ------------------------------------------------
    horizon_s = round(float(rng.uniform(2.0, 8.0)) * 3600.0, 1)
    epoch_s = float(rng.choice(_EPOCH_CHOICES))

    # -- workload heterogeneity -----------------------------------------
    n_vms = int(rng.integers(4, 25))
    vcpu_weights = _weights(rng, 4)
    mem_gb_per_vcpu = float(rng.choice((2.0, 4.0, 8.0)))
    arch = _weights(rng, 4)
    shared_fraction = (
        round(float(rng.uniform(0.1, 0.6)), 4) if rng.random() < 0.5 else 0.0
    )
    shared_kind = str(rng.choice(("bursty", "diurnal")))
    priority = _weights(rng, 3)
    workload = WorkloadShape(
        n_vms=n_vms,
        vcpu_choices=(1, 2, 4, 8),
        vcpu_weights=tuple(vcpu_weights),
        mem_gb_per_vcpu=mem_gb_per_vcpu,
        diurnal_weight=arch[0],
        bursty_weight=arch[1],
        flat_weight=arch[2],
        spiky_weight=arch[3],
        shared_fraction=shared_fraction,
        shared_kind=shared_kind,
        gold_weight=priority[0],
        silver_weight=priority[1],
        bronze_weight=priority[2],
        noise_sigma=round(float(rng.uniform(0.0, 0.08)), 4),
    )

    # -- churn ----------------------------------------------------------
    if rng.random() < 0.5:
        churn = ChurnShape(
            rate_per_h=round(float(rng.uniform(0.5, 6.0)), 4),
            lifetime_s=round(float(rng.uniform(0.5, 6.0)) * 3600.0, 1),
        )
    else:
        churn = ChurnShape()

    # -- faults / chaos -------------------------------------------------
    wake_rate = (
        round(float(rng.uniform(0.01, 0.30)), 4) if rng.random() < 0.5 else 0.0
    )
    permanent = (
        round(float(rng.uniform(0.05, 0.5)), 4)
        if wake_rate > 0 and rng.random() < 0.5
        else 0.0
    )
    mttr_h = (
        round(float(rng.uniform(0.5, 4.0)), 4)
        if permanent > 0 and rng.random() < 0.7
        else 0.0
    )
    bursts = tuple(
        BurstWindow(start_s=s, end_s=e, rate=v)
        for s, e, v in _windows(rng, horizon_s, "burst")
    )
    brownouts = tuple(
        BrownoutWindow(start_s=s, end_s=e, scale=v)
        for s, e, v in _windows(rng, horizon_s, "brownout")
    )
    migration_rate = (
        round(float(rng.uniform(0.05, 0.40)), 4) if rng.random() < 0.5 else 0.0
    )
    faults = FaultShape(
        wake_failure_rate=wake_rate,
        permanent_fraction=permanent,
        mttr_h=mttr_h,
        bursts=bursts,
        brownouts=brownouts,
        migration_failure_rate=migration_rate,
    )

    # -- telemetry staleness --------------------------------------------
    if rng.random() < 0.5:
        telemetry = TelemetryShape(
            delay_s=round(float(rng.uniform(0.0, 300.0)), 1),
            dropout_rate=round(float(rng.uniform(0.0, 0.3)), 4),
        )
    else:
        telemetry = TelemetryShape()

    # -- cluster sized against the exact fleet --------------------------
    scenario_seed = int(rng.integers(0, 2**31 - 1))
    host_cores, host_mem_gb = _HOST_SHAPES[int(rng.integers(0, len(_HOST_SHAPES)))]
    while workload.mem_gb_per_vcpu * max(workload.vcpu_choices) > host_mem_gb:
        host_cores, host_mem_gb = host_cores * 2, host_mem_gb * 2
    fleet = build_fleet(workload.fleet_spec(horizon_s), seed=scenario_seed)
    total_mem = sum(vm.mem_gb for vm in fleet)
    min_hosts = max(1, int(np.ceil(total_mem * _MEM_SLACK / host_mem_gb)))
    cluster = ClusterShape(
        n_hosts=min_hosts + int(rng.integers(0, 4)),
        host_cores=host_cores,
        host_mem_gb=host_mem_gb,
    )

    return FuzzSpec(
        seed=scenario_seed,
        horizon_s=horizon_s,
        epoch_s=epoch_s,
        policy=policy,
        cluster=cluster,
        workload=workload,
        churn=churn,
        faults=faults,
        telemetry=telemetry,
    )


def generate_campaign(campaign_seed: int, count: int) -> List[FuzzSpec]:
    """The first ``count`` specs of the campaign, in index order."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [generate_spec(campaign_seed, i) for i in range(count)]
