"""The shrunk-reproducer corpus: minimal specs replayed by tier-1 forever.

Each file under ``tests/corpus/`` is one delta-debugged spec together
with the oracle that certified it::

    {
      "format": "repro-fuzz-corpus-v1",
      "note":   "why this spec is interesting",
      "origin": "campaign seed 20260808, scenario 137, shrunk in 23 evals",
      "oracle": {"kind": "behavior", "target": "extra:migrations_failed"},
      "spec":   { ...canonical FuzzSpec JSON... }
    }

``oracle.kind`` records what the replay test asserts:

* ``"behavior"`` — the run must certify clean **and** still exhibit the
  target behavior (``target`` stays in the outcome-id set);
* ``"invariant"`` — the spec once tripped this validator invariant; the
  replay asserts the target **still reproduces**, so the corpus entry
  is a living bug report — when the bug is fixed, the test flags the
  entry for promotion to a fixed-regression assertion.

Entries are canonical JSON (sorted keys, 2-space indent) so corpus
diffs stay reviewable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

from repro.fuzz.spec import FuzzSpec, SpecError

#: Schema tag every corpus file must carry.
CORPUS_FORMAT = "repro-fuzz-corpus-v1"

#: The oracle kinds a corpus entry may declare.
ORACLE_KINDS = ("behavior", "invariant")


@dataclass(frozen=True)
class CorpusEntry:
    """One checked-in reproducer: a minimal spec plus its oracle."""

    spec: FuzzSpec
    kind: str
    target: str
    note: str = ""
    origin: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ORACLE_KINDS:
            raise ValueError(
                "oracle kind must be one of {}, got {!r}".format(
                    ", ".join(ORACLE_KINDS), self.kind
                )
            )
        if not self.target:
            raise ValueError("oracle target must be non-empty")

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": CORPUS_FORMAT,
            "note": self.note,
            "origin": self.origin,
            "oracle": {"kind": self.kind, "target": self.target},
            "spec": self.spec.to_json_dict(),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"


def load_corpus_entry(path: Union[str, Path]) -> CorpusEntry:
    """Read and strictly validate one corpus file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError("{}: unparsable corpus JSON: {}".format(path, exc)) from exc
    if not isinstance(data, dict):
        raise SpecError("{}: corpus entry must be an object".format(path))
    if data.get("format") != CORPUS_FORMAT:
        raise SpecError(
            "{}: format {!r} is not the supported {!r}".format(
                path, data.get("format"), CORPUS_FORMAT
            )
        )
    oracle = data.get("oracle")
    if not isinstance(oracle, dict):
        raise SpecError("{}: missing 'oracle' object".format(path))
    try:
        return CorpusEntry(
            spec=FuzzSpec.from_json_dict(data.get("spec")),
            kind=str(oracle.get("kind", "")),
            target=str(oracle.get("target", "")),
            note=str(data.get("note", "")),
            origin=str(data.get("origin", "")),
        )
    except ValueError as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError("{}: {}".format(path, exc)) from exc


def write_corpus_entry(path: Union[str, Path], entry: CorpusEntry) -> None:
    from repro.core.atomicio import atomic_write_text

    atomic_write_text(Path(path), entry.dumps())
