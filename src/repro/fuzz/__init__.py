"""Grammar-driven scenario fuzzing: generate, certify, shrink.

The fuzzing campaign closes the loop the ROADMAP calls "adversarial
coverage": a versioned spec grammar (:mod:`repro.fuzz.spec`) composes
every simulator feature — workload shapes, churn, heterogeneous fleets,
priority mixes, fault/chaos schedules, migration faults, telemetry
staleness — into one picklable :class:`FuzzSpec`; a seeded generator
(:mod:`repro.fuzz.generate`) draws specs through the registered
``fuzz`` RNG stream; every run is trace-certified by the validation
oracle (:mod:`repro.fuzz.oracle`); and violating specs are minimized by
a delta-debugging shrinker (:mod:`repro.fuzz.shrink`) into the
checked-in reproducer corpus under ``tests/corpus/``.
"""

from repro.fuzz.campaign import CampaignSummary, run_campaign
from repro.fuzz.generate import generate_campaign, generate_spec
from repro.fuzz.oracle import SpecOutcome, classify_artifacts, run_spec
from repro.fuzz.shrink import ShrinkResult, shrink_spec
from repro.fuzz.spec import (
    SPEC_VERSION,
    BrownoutWindow,
    BurstWindow,
    ChurnShape,
    ClusterShape,
    FaultShape,
    FuzzSpec,
    PolicyShape,
    SpecError,
    TelemetryShape,
    WorkloadShape,
)

__all__ = [
    "SPEC_VERSION",
    "BrownoutWindow",
    "BurstWindow",
    "CampaignSummary",
    "ChurnShape",
    "ClusterShape",
    "FaultShape",
    "FuzzSpec",
    "PolicyShape",
    "ShrinkResult",
    "SpecError",
    "SpecOutcome",
    "TelemetryShape",
    "WorkloadShape",
    "classify_artifacts",
    "generate_campaign",
    "generate_spec",
    "run_campaign",
    "run_spec",
    "shrink_spec",
]
