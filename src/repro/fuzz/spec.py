"""The fuzz spec grammar: a compact, versioned scenario description.

A :class:`FuzzSpec` composes every axis the simulator exposes — workload
shape, VM churn, fleet heterogeneity, priority mixes, fault/chaos
schedules, migration faults, telemetry staleness, policy knobs — into one
frozen, picklable value with a canonical JSON encoding.  The grammar is
the shared language of the whole fuzzing subsystem:

* the seeded generator (:mod:`repro.fuzz.generate`) draws specs from it,
* the campaign runner materializes each spec into a
  :class:`~repro.core.ScenarioSpec` via :meth:`FuzzSpec.scenario_spec`
  and runs it through the existing process pool + result cache,
* the delta-debugging shrinker (:mod:`repro.fuzz.shrink`) minimizes a
  violating spec field-by-field and list-by-list over this grammar,
* the regression corpus (``tests/corpus/*.json``) stores shrunk specs in
  the canonical JSON form, replayed by tier-1 forever.

Round-trip contract: ``loads(dumps(spec)) == spec`` for every valid
spec, and ``dumps`` output is canonical (sorted keys, fixed indentation)
so corpus diffs stay reviewable.  ``SPEC_VERSION`` is bumped on any
grammar change that alters the meaning of an encoded spec; decoding a
spec with a different version is an error, not a guess.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Dict, Optional, Tuple, Type, TypeVar, get_type_hints

from repro.core.config import ManagerConfig
from repro.core.parallel import ScenarioSpec
from repro.core.policies import POLICIES, policy_by_name
from repro.datacenter.faults import (
    Brownout,
    ChaosSchedule,
    FailureBurst,
    FaultModel,
    MigrationFaultModel,
    RepairModel,
)
from repro.telemetry.view import StalenessModel
from repro.workload.fleet import FleetSpec

#: Grammar version; bumped whenever the JSON encoding changes meaning.
#: 2: PolicyShape gained the management-plane axis (``plane``).
SPEC_VERSION = 2

_T = TypeVar("_T")


class SpecError(ValueError):
    """A spec document failed to decode (wrong version, shape, or value)."""


# ----------------------------------------------------------------------
# Canonical JSON codec (shared by every shape dataclass)
# ----------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode_value(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecError(
        "value {!r} ({}) has no spec encoding".format(value, type(value).__name__)
    )


def _decode_value(hint: Any, value: Any, where: str) -> Any:
    origin = getattr(hint, "__origin__", None)
    if origin is tuple:
        if not isinstance(value, list):
            raise SpecError("{}: expected a list, got {!r}".format(where, value))
        item_hint = hint.__args__[0]
        return tuple(
            _decode_value(item_hint, item, "{}[{}]".format(where, i))
            for i, item in enumerate(value)
        )
    if is_dataclass(hint):
        return _decode_dataclass(hint, value, where)
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError("{}: expected a number, got {!r}".format(where, value))
        return float(value)
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError("{}: expected an integer, got {!r}".format(where, value))
        return value
    if hint is str:
        if not isinstance(value, str):
            raise SpecError("{}: expected a string, got {!r}".format(where, value))
        return value
    if hint is bool:
        if not isinstance(value, bool):
            raise SpecError("{}: expected a boolean, got {!r}".format(where, value))
        return value
    raise SpecError("{}: unsupported field type {!r}".format(where, hint))


def _decode_dataclass(cls: Type[_T], data: Any, where: str) -> _T:
    if not isinstance(data, dict):
        raise SpecError("{}: expected an object, got {!r}".format(where, data))
    hints = get_type_hints(cls)
    known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            "{}: unknown key(s) {}".format(where, ", ".join(sorted(unknown)))
        )
    missing = known - set(data)
    if missing:
        raise SpecError(
            "{}: missing key(s) {}".format(where, ", ".join(sorted(missing)))
        )
    kwargs = {
        name: _decode_value(hints[name], data[name], "{}.{}".format(where, name))
        for name in sorted(known)
    }
    try:
        return cls(**kwargs)
    except ValueError as exc:
        raise SpecError("{}: {}".format(where, exc)) from exc


# ----------------------------------------------------------------------
# The grammar
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyShape:
    """Management policy: a preset plus the fuzzed aggressiveness knobs."""

    preset: str = "S3-PM"
    headroom: float = 0.10
    park_delay_rounds: int = 1
    max_parks_per_round: int = 2
    plane: str = "centralized"

    def __post_init__(self) -> None:
        if self.preset not in POLICIES:
            raise ValueError(
                "unknown policy preset {!r} (choose from {})".format(
                    self.preset, ", ".join(sorted(POLICIES))
                )
            )
        if self.headroom < 0:
            raise ValueError("headroom must be >= 0")
        if self.park_delay_rounds < 0:
            raise ValueError("park_delay_rounds must be >= 0")
        if self.max_parks_per_round < 1:
            raise ValueError("max_parks_per_round must be >= 1")
        if self.plane not in ("centralized", "neat"):
            raise ValueError("plane must be 'centralized' or 'neat'")

    def manager_config(self) -> ManagerConfig:
        return policy_by_name(self.preset).with_overrides(
            headroom=self.headroom,
            park_delay_rounds=self.park_delay_rounds,
            max_parks_per_round=self.max_parks_per_round,
            plane=self.plane,
        )


@dataclass(frozen=True)
class ClusterShape:
    """Homogeneous host inventory."""

    n_hosts: int = 4
    host_cores: float = 16.0
    host_mem_gb: float = 128.0

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if self.host_cores <= 0 or self.host_mem_gb <= 0:
            raise ValueError("host capacity must be positive")


@dataclass(frozen=True)
class WorkloadShape:
    """VM fleet heterogeneity: sizes, demand archetypes, priority mix."""

    n_vms: int = 8
    vcpu_choices: Tuple[int, ...] = (1, 2, 4, 8)
    vcpu_weights: Tuple[float, ...] = (0.35, 0.35, 0.2, 0.1)
    mem_gb_per_vcpu: float = 4.0
    diurnal_weight: float = 0.55
    bursty_weight: float = 0.2
    flat_weight: float = 0.15
    spiky_weight: float = 0.1
    shared_fraction: float = 0.0
    shared_kind: str = "bursty"
    gold_weight: float = 0.2
    silver_weight: float = 0.3
    bronze_weight: float = 0.5
    noise_sigma: float = 0.04

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ValueError("n_vms must be >= 1")
        if not self.vcpu_choices or len(self.vcpu_choices) != len(self.vcpu_weights):
            raise ValueError("vcpu choices/weights length mismatch")
        if any(c < 1 for c in self.vcpu_choices):
            raise ValueError("vcpu choices must be >= 1")
        if any(w < 0 for w in self.vcpu_weights) or sum(self.vcpu_weights) <= 0:
            raise ValueError("vcpu weights must be >= 0 and sum to > 0")
        if self.mem_gb_per_vcpu <= 0:
            raise ValueError("mem_gb_per_vcpu must be positive")
        archetypes = (
            self.diurnal_weight, self.bursty_weight,
            self.flat_weight, self.spiky_weight,
        )
        if any(w < 0 for w in archetypes) or sum(archetypes) <= 0:
            raise ValueError("archetype weights must be >= 0 and sum to > 0")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if self.shared_kind not in ("bursty", "diurnal"):
            raise ValueError("shared_kind must be 'bursty' or 'diurnal'")
        priorities = (self.gold_weight, self.silver_weight, self.bronze_weight)
        if any(w < 0 for w in priorities) or sum(priorities) <= 0:
            raise ValueError("priority weights must be >= 0 and sum to > 0")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")

    def fleet_spec(self, horizon_s: float) -> FleetSpec:
        return FleetSpec(
            n_vms=self.n_vms,
            vcpu_choices=tuple(self.vcpu_choices),
            vcpu_weights=tuple(self.vcpu_weights),
            mem_gb_per_vcpu=self.mem_gb_per_vcpu,
            archetype_weights={
                "diurnal": self.diurnal_weight,
                "bursty": self.bursty_weight,
                "flat": self.flat_weight,
                "spiky": self.spiky_weight,
            },
            horizon_s=min(horizon_s, 7 * 86_400.0),
            noise_sigma=self.noise_sigma,
            shared_fraction=self.shared_fraction,
            shared_kind=self.shared_kind,
            priority_weights={
                "gold": self.gold_weight,
                "silver": self.silver_weight,
                "bronze": self.bronze_weight,
            },
        )


@dataclass(frozen=True)
class ChurnShape:
    """VM arrival/departure churn (rate 0 disables the generator)."""

    rate_per_h: float = 0.0
    lifetime_s: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.rate_per_h < 0:
            raise ValueError("rate_per_h must be >= 0")
        if self.lifetime_s <= 0:
            raise ValueError("lifetime_s must be positive")


@dataclass(frozen=True)
class BurstWindow:
    """A correlated wake-failure burst (maps to FailureBurst)."""

    start_s: float
    end_s: float
    rate: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("burst window must satisfy 0 <= start < end")
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("burst rate must be in [0, 1)")


@dataclass(frozen=True)
class BrownoutWindow:
    """A wake-latency brownout window (maps to Brownout)."""

    start_s: float
    end_s: float
    scale: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("brownout window must satisfy 0 <= start < end")
        if self.scale < 1.0:
            raise ValueError("brownout scale must be >= 1.0")


@dataclass(frozen=True)
class FaultShape:
    """Wake faults, repair, chaos schedule, and migration faults."""

    wake_failure_rate: float = 0.0
    permanent_fraction: float = 0.0
    mttr_h: float = 0.0
    bursts: Tuple[BurstWindow, ...] = ()
    brownouts: Tuple[BrownoutWindow, ...] = ()
    migration_failure_rate: float = 0.0
    min_fail_fraction: float = 0.1
    max_fail_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.wake_failure_rate < 1.0:
            raise ValueError("wake_failure_rate must be in [0, 1)")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in [0, 1]")
        if self.mttr_h < 0:
            raise ValueError("mttr_h must be >= 0")
        if not 0.0 <= self.migration_failure_rate < 1.0:
            raise ValueError("migration_failure_rate must be in [0, 1)")
        if not 0.0 < self.min_fail_fraction <= self.max_fail_fraction < 1.0:
            raise ValueError(
                "fail fractions must satisfy 0 < min <= max < 1"
            )

    @property
    def enabled(self) -> bool:
        return bool(
            self.wake_failure_rate > 0
            or self.bursts
            or self.brownouts
            or self.migration_failure_rate > 0
        )

    def fault_model(self) -> Optional[FaultModel]:
        if not self.enabled:
            return None
        chaos = None
        if self.bursts or self.brownouts:
            chaos = ChaosSchedule(
                bursts=tuple(
                    FailureBurst(b.start_s, b.end_s, b.rate) for b in self.bursts
                ),
                brownouts=tuple(
                    Brownout(b.start_s, b.end_s, b.scale) for b in self.brownouts
                ),
            )
        migration = None
        if self.migration_failure_rate > 0:
            migration = MigrationFaultModel(
                failure_rate=self.migration_failure_rate,
                min_fail_fraction=self.min_fail_fraction,
                max_fail_fraction=self.max_fail_fraction,
            )
        repair = RepairModel(mttr_s=self.mttr_h * 3600.0) if self.mttr_h > 0 else None
        return FaultModel(
            wake_failure_rate=self.wake_failure_rate,
            permanent_fraction=self.permanent_fraction,
            repair=repair,
            chaos=chaos,
            migration=migration,
        )


@dataclass(frozen=True)
class TelemetryShape:
    """Telemetry-pipeline staleness between the sampler and the manager."""

    delay_s: float = 0.0
    dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")

    @property
    def enabled(self) -> bool:
        return self.delay_s > 0 or self.dropout_rate > 0

    def staleness_model(self) -> Optional[StalenessModel]:
        if not self.enabled:
            return None
        return StalenessModel(delay_s=self.delay_s, dropout_rate=self.dropout_rate)


@dataclass(frozen=True)
class FuzzSpec:
    """One complete generated scenario, as data.

    ``seed`` drives every RNG stream of the materialized scenario (fleet
    generation, churn, fault draws, telemetry dropout); the spec plus the
    package version fully determine the simulated outcome.
    """

    seed: int = 0
    horizon_s: float = 4 * 3600.0
    epoch_s: float = 60.0
    policy: PolicyShape = PolicyShape()
    cluster: ClusterShape = ClusterShape()
    workload: WorkloadShape = WorkloadShape()
    churn: ChurnShape = ChurnShape()
    faults: FaultShape = FaultShape()
    telemetry: TelemetryShape = TelemetryShape()
    spec_version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if self.spec_version != SPEC_VERSION:
            raise ValueError(
                "spec_version {} is not the supported {}".format(
                    self.spec_version, SPEC_VERSION
                )
            )

    # ------------------------------------------------------------------
    # Canonical JSON round-trip
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            f.name: _encode_value(getattr(self, f.name)) for f in fields(self)
        }

    @classmethod
    def from_json_dict(cls, data: Any) -> "FuzzSpec":
        if isinstance(data, dict):
            version = data.get("spec_version")
            if version != SPEC_VERSION:
                raise SpecError(
                    "spec_version {!r} is not the supported {} (re-generate "
                    "the spec with this package version)".format(
                        version, SPEC_VERSION
                    )
                )
        return _decode_dataclass(cls, data, "spec")

    def dumps(self) -> str:
        """Canonical JSON text (sorted keys, 2-space indent, newline)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FuzzSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("unparsable spec JSON: {}".format(exc)) from exc
        return cls.from_json_dict(data)

    def replaced(self, **kwargs: Any) -> "FuzzSpec":
        """A copy with selected top-level fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # The spec -> scenario bridge
    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        return "fuzz-{:08x}-{}".format(self.seed, self.policy.preset)

    def scenario_kwargs(self) -> Dict[str, Any]:
        """The ``run_scenario`` keyword arguments this spec describes."""
        kwargs: Dict[str, Any] = dict(
            n_hosts=self.cluster.n_hosts,
            host_cores=self.cluster.host_cores,
            host_mem_gb=self.cluster.host_mem_gb,
            horizon_s=self.horizon_s,
            seed=self.seed,
            epoch_s=self.epoch_s,
            fleet_spec=self.workload.fleet_spec(self.horizon_s),
            churn_rate_per_h=self.churn.rate_per_h,
            churn_lifetime_s=self.churn.lifetime_s,
        )
        fault_model = self.faults.fault_model()
        if fault_model is not None:
            kwargs["fault_model"] = fault_model
        staleness = self.telemetry.staleness_model()
        if staleness is not None:
            kwargs["telemetry_model"] = staleness
        return kwargs

    def scenario_spec(self) -> ScenarioSpec:
        """Materialize into a traced, cacheable :class:`ScenarioSpec`.

        The spec grammar version is folded into the cache digest
        (``digest_extra``) so cached fuzz artifacts are invalidated
        whenever the grammar semantics change.
        """
        return ScenarioSpec(
            self.policy.manager_config(),
            kwargs=self.scenario_kwargs(),
            label=self.label,
            trace=True,
            digest_extra={"fuzz_spec_version": self.spec_version},
        )
