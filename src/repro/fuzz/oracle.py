"""Certification oracle: run a fuzz spec and classify what happened.

One spec run yields a :class:`SpecOutcome` — the scenario's trace hash,
the validator's structured findings, and a uniform *outcome-id* set the
shrinker minimizes against:

* ``"<invariant>"`` — the trace replay tripped that validator invariant
  family (e.g. ``"residency"``, ``"safe-mode"``);
* ``"extra:<counter>"`` — the run exercised that management behavior
  (``report.extra[counter] > 0``, e.g. ``"extra:migrations_failed"``) —
  used to shrink *behavioral* reproducers for the regression corpus;
* ``"error:<Type>"`` — the run itself raised (e.g. an infeasible
  intermediate spec the shrinker produced: ``"error:RuntimeError"``).

The oracle goes through :func:`repro.core.run_scenarios`, so campaign
re-runs hit the disk result cache and a shrink session never simulates
the same candidate twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Union

from repro.core.cache import ResultCache
from repro.core.parallel import ScenarioArtifacts, run_scenarios
from repro.fuzz.spec import FuzzSpec
from repro.telemetry.trace import TraceError, parse_trace
from repro.telemetry.validate import validate_trace

#: Outcome-id prefix for behavioral (report.extra counter) findings.
EXTRA_PREFIX = "extra:"
#: Outcome-id prefix for run failures (setup/simulation exceptions).
ERROR_PREFIX = "error:"


@dataclass
class SpecOutcome:
    """Everything the campaign and the shrinker need from one spec run."""

    label: str
    status: str  # "certified" | "violating" | "error"
    trace_hash: Optional[str] = None
    events_checked: int = 0
    invariants: List[str] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    behaviors: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "certified"

    def outcome_ids(self) -> FrozenSet[str]:
        """The uniform id set shrink oracles test membership against."""
        ids = set(self.invariants)
        ids.update(EXTRA_PREFIX + name for name in self.behaviors)
        if self.error is not None:
            ids.add(ERROR_PREFIX + self.error.split(":", 1)[0])
        return frozenset(ids)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "status": self.status,
            "trace_hash": self.trace_hash,
            "events_checked": self.events_checked,
            "invariants": list(self.invariants),
            "violations": list(self.violations),
            "behaviors": list(self.behaviors),
            "error": self.error,
        }


def classify_artifacts(label: str, artifacts: ScenarioArtifacts) -> SpecOutcome:
    """Replay a finished run's trace through the validator and classify."""
    behaviors = sorted(
        name
        for name, value in artifacts.report.extra.items()
        if isinstance(value, (int, float)) and value > 0
    )
    if artifacts.trace_jsonl is None:
        return SpecOutcome(
            label=label,
            status="error",
            behaviors=behaviors,
            error="TraceError: scenario produced no trace",
        )
    try:
        log = parse_trace(artifacts.trace_jsonl)
    except TraceError as exc:
        return SpecOutcome(
            label=label,
            status="error",
            behaviors=behaviors,
            error="TraceError: {}".format(exc),
        )
    outcome = validate_trace(log, report=artifacts.report)
    return SpecOutcome(
        label=label,
        status="certified" if outcome.ok else "violating",
        trace_hash=artifacts.trace_hash,
        events_checked=outcome.events_checked,
        invariants=outcome.invariants_violated(),
        violations=[
            {
                "invariant": v.invariant,
                "seq": v.seq,
                "t": v.t,
                "message": v.message,
            }
            for v in outcome.violations
        ],
        behaviors=behaviors,
    )


def run_spec(
    spec: FuzzSpec,
    cache: Union[None, bool, ResultCache] = True,
) -> SpecOutcome:
    """Run one spec in-process (read-through cached) and classify it.

    Run failures become ``error`` outcomes instead of propagating: the
    shrinker routinely produces infeasible candidates (e.g. a cluster
    too small for its fleet) and must observe them as non-reproducing,
    not crash.
    """
    try:
        scenario = spec.scenario_spec()
        artifacts = run_scenarios([scenario], workers=1, cache=cache)[0]
    # The oracle's contract is to *classify* arbitrary run failures as
    # outcomes (shrink candidates are allowed to be infeasible), so the
    # broad catch is the feature here, not an accident.
    except Exception as exc:  # reprolint: disable=RL006
        return SpecOutcome(
            label=spec.label,
            status="error",
            error="{}: {}".format(type(exc).__name__, exc),
        )
    return classify_artifacts(spec.label, artifacts)
