"""Campaign orchestration: generate N specs, run, certify, shrink.

A campaign is a pure function of ``(package version, campaign seed,
count)``: specs are drawn index-by-index from the seeded generator, run
through the existing scenario process pool (read-through result cache —
re-running a campaign is nearly free), trace-certified by the oracle,
and every violating spec is minimized by the delta-debugging shrinker.
The summary's JSON form is canonical and wall-clock-free, so the same
seed yields byte-identical output on every machine — the acceptance
contract the CLI and the nightly CI job both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

import repro
from repro.core.cache import ResultCache
from repro.core.parallel import run_scenarios
from repro.fuzz.generate import generate_campaign
from repro.fuzz.oracle import SpecOutcome, classify_artifacts, run_spec
from repro.fuzz.shrink import ShrinkResult, shrink_spec
from repro.fuzz.spec import SPEC_VERSION, FuzzSpec

#: Schema version of the campaign summary JSON.
SUMMARY_FORMAT = "repro-fuzz-summary-v1"


@dataclass
class CampaignSummary:
    """Everything one campaign produced, in canonical JSON-able form."""

    seed: int
    campaign: int
    outcomes: List[SpecOutcome] = field(default_factory=list)
    reproducers: List[ShrinkResult] = field(default_factory=list)
    #: Violating specs whose shrink did not converge within budget.
    unshrinkable: List[str] = field(default_factory=list)

    @property
    def certified(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "certified")

    @property
    def violating(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "violating")

    @property
    def errored(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "error")

    @property
    def ok(self) -> bool:
        """Campaign health: no violations and no run errors."""
        return self.violating == 0 and self.errored == 0

    def invariant_histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for invariant in outcome.invariants:
                counts[invariant] = counts.get(invariant, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": SUMMARY_FORMAT,
            "version": repro.__version__,
            "spec_version": SPEC_VERSION,
            "seed": self.seed,
            "campaign": self.campaign,
            "counts": {
                "certified": self.certified,
                "violating": self.violating,
                "error": self.errored,
            },
            "invariants": self.invariant_histogram(),
            "outcomes": [o.to_json_dict() for o in self.outcomes],
            "reproducers": [r.to_json_dict() for r in self.reproducers],
            "unshrinkable": list(self.unshrinkable),
        }


def _run_batch(
    specs: List[FuzzSpec],
    workers: Optional[int],
    cache: Union[None, bool, ResultCache],
) -> List[SpecOutcome]:
    """Pool-run a batch; on any worker failure fall back to serial.

    ``run_scenarios`` propagates the first worker exception and discards
    the batch, so a single infeasible spec would otherwise take down the
    whole campaign.  The serial path (:func:`run_spec`) classifies each
    failure as an ``error`` outcome instead.
    """
    try:
        artifacts = run_scenarios(
            [s.scenario_spec() for s in specs], workers=workers, cache=cache
        )
    # Deliberately broad: any worker failure (infeasible placement, a
    # pickling edge, a simulation bug under fuzzed inputs) must degrade
    # to per-spec classification, not abort the campaign.
    except Exception:  # reprolint: disable=RL006
        return [run_spec(spec, cache=cache) for spec in specs]
    return [
        classify_artifacts(spec.label, art)
        for spec, art in zip(specs, artifacts)
    ]


def run_campaign(
    campaign: int,
    seed: int,
    workers: Optional[int] = None,
    cache: Union[None, bool, ResultCache] = True,
    shrink: bool = True,
    max_shrink_evaluations: int = 128,
    batch_size: int = 32,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignSummary:
    """Run a ``campaign``-scenario fuzzing campaign seeded ``seed``.

    Every generated spec is simulated with tracing on, its trace replayed
    through the validator, and — when ``shrink`` is set — every
    non-certified spec is delta-debugged down to a minimal reproducer for
    the *same* outcome id (the first violated invariant, or the error
    id).  Shrinks that exhaust their budget are reported in
    ``unshrinkable`` rather than silently dropped.
    """
    if campaign < 1:
        raise ValueError("campaign size must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")

    specs = generate_campaign(seed, campaign)
    summary = CampaignSummary(seed=seed, campaign=campaign)
    for start in range(0, len(specs), batch_size):
        batch = specs[start:start + batch_size]
        summary.outcomes.extend(_run_batch(batch, workers, cache))
        if progress is not None:
            progress(
                "ran {}/{} scenarios ({} violating, {} error)".format(
                    len(summary.outcomes), campaign,
                    summary.violating, summary.errored,
                )
            )

    if shrink:
        for spec, outcome in zip(specs, summary.outcomes):
            if outcome.ok:
                continue
            target = _shrink_target(outcome)
            if target is None:
                summary.unshrinkable.append(outcome.label)
                continue
            if progress is not None:
                progress(
                    "shrinking {} (target {})".format(outcome.label, target)
                )
            result = shrink_spec(
                spec,
                target,
                max_evaluations=max_shrink_evaluations,
                cache=cache,
            )
            if result.converged:
                summary.reproducers.append(result)
            else:
                summary.unshrinkable.append(outcome.label)
    return summary


def _shrink_target(outcome: SpecOutcome) -> Optional[str]:
    """The outcome id a failed spec should be minimized against.

    Prefer the first violated invariant (sorted — deterministic across
    runs); fall back to the error id for specs that died before
    producing a trace.
    """
    if outcome.invariants:
        return sorted(outcome.invariants)[0]
    ids = sorted(i for i in outcome.outcome_ids() if i.startswith("error:"))
    return ids[0] if ids else None
