"""Wall-clock-free streaming metrics: one JSONL record per sample window.

Long-horizon service mode cannot afford to accumulate a whole report in
RAM and write it at the end — a crash at hour 700 of 720 would lose
everything, and the series arrays alone grow without bound.  The
:class:`StreamingMetricsSink` instead emits each sampler window as one
JSON line the moment it closes, keyed by simulated time only (no
wall-clock reads, so output is reproducible byte for byte).

Crash consistency works with the checkpoint layer, not atomic renames:
appends to a live stream are inherently incremental, so at every
checkpoint the sink flushes + fsyncs and records its byte offset and
window count in the checkpoint manifest.  Resume truncates the file back
to that offset and continues numbering from the recorded count — any
window the crashed run re-emitted past the checkpoint is deduplicated,
and the final file is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bump on any incompatible change to the header or record layout.
STREAM_SCHEMA_VERSION = 1


class StreamingMetricsSink:
    """Incremental per-window JSONL metrics writer (bounded RAM).

    Fresh start: truncates ``path`` and writes a one-line header.
    Resume: pass the checkpoint's ``resume_offset``/``resume_windows`` —
    the file is truncated back to the fsynced offset and emission
    continues exactly where the checkpointed run stood.
    """

    def __init__(
        self,
        path: Union[str, Path],
        label: str = "",
        resume_offset: Optional[int] = None,
        resume_windows: int = 0,
    ) -> None:
        self.path = Path(path)
        self.windows = 0
        if resume_offset is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A live stream is append-structured by design; torn tails are
            # healed by the truncate-to-checkpoint-offset resume protocol,
            # not by whole-file replacement.
            self._handle = open(  # reprolint: disable=RL016
                self.path, "wb"
            )
            header = {
                "kind": "repro-stream",
                "schema": STREAM_SCHEMA_VERSION,
                "label": label,
            }
            self._handle.write(
                json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
            )
        else:
            if not self.path.exists():
                raise FileNotFoundError(
                    "cannot resume stream: {} does not exist".format(self.path)
                )
            self._handle = open(  # reprolint: disable=RL016
                self.path, "r+b"
            )
            self._handle.truncate(resume_offset)
            self._handle.seek(resume_offset)
            self.windows = int(resume_windows)

    def emit_window(self, t: float, metrics: Dict[str, Any]) -> None:
        """Append one closed sample window as a JSON line."""
        record: Dict[str, Any] = {"window": self.windows, "t": t}
        record.update(metrics)
        self._handle.write(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        )
        self.windows += 1

    def flush_offset(self) -> int:
        """Make everything emitted so far durable; return the byte offset.

        Called at each checkpoint: the returned offset (plus
        :attr:`windows`) goes into the checkpoint manifest and is the
        truncation point a resumed run rolls back to.
        """
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return self._handle.tell()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "StreamingMetricsSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
