"""The sampling heartbeat: demand refresh + series collection."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.datacenter.cluster import Cluster
from repro.datacenter.vm import Priority
from repro.sim import ResumeSpec
from repro.power.states import PowerState
from repro.telemetry.timeseries import BoundedTimeSeries, TimeSeries
from repro.telemetry.view import ClusterView, TelemetryFeed
from repro.workload.traces import trace_grid


class ClusterSampler:
    """Periodically refreshes demand and records cluster-level series.

    Each epoch (default 60 s) it:

    1. re-evaluates every VM's demand and pushes host utilizations into
       the power machines (this *is* the simulation's workload dynamics);
    2. appends one sample to each recorded series;
    3. accumulates shortfall (demand not delivered) integrals for the
       performance-violation metrics.
    """

    SERIES = (
        "demand_cores",
        "active_capacity_cores",
        "committed_capacity_cores",
        "power_w",
        "active_hosts",
        "parked_hosts",
        "transitioning_hosts",
        "shortfall_cores",
        "vm_count",
        "shortfall_gold",
        "shortfall_silver",
        "shortfall_bronze",
    )

    #: Hoisted (priority, series-name) pairs: the per-tick loop binds both
    #: directly instead of doing dict lookups keyed on the enum.
    _CLASS_COLUMNS = (
        (Priority.GOLD, "shortfall_gold"),
        (Priority.SILVER, "shortfall_silver"),
        (Priority.BRONZE, "shortfall_bronze"),
    )

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        cluster: Cluster,
        epoch_s: float = 60.0,
        feed: Optional[TelemetryFeed] = None,
        headroom_ceiling: Optional[float] = None,
        bounded: bool = False,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        self.env = env
        self.cluster = cluster
        self.epoch_s = epoch_s
        #: Optional staleness pipeline: each tick publishes one
        #: :class:`~repro.telemetry.view.ClusterView` through it (see
        #: :mod:`repro.telemetry.view`); None keeps the manager on ground
        #: truth exactly as before.
        self.feed = feed
        #: Bounded mode (service runs): series keep O(1) incremental
        #: aggregates instead of every sample, so RAM stays flat over
        #: arbitrary horizons.  The report statistics remain available;
        #: raw sample access does not (stream them via ``attach_sink``).
        self.bounded = bounded
        series_cls = BoundedTimeSeries if bounded else TimeSeries
        self.series: Dict[str, TimeSeries] = {
            name: series_cls(name) for name in self.SERIES
        }
        #: Optional per-window streaming sink (service mode); explicitly
        #: not pickled — the runner reattaches it on checkpoint resume.
        self._sink = None
        self.shortfall_core_s = 0.0
        self.demand_core_s = 0.0
        self.class_shortfall_core_s: Dict[Priority, float] = {
            p: 0.0 for p in Priority
        }
        self.class_demand_core_s: Dict[Priority, float] = {p: 0.0 for p in Priority}
        self.samples = 0
        self._process = None
        # ------------------------------------------------------------------
        # Batched demand grids: every ``_grid_chunk_ticks`` epochs one
        # vectorized pass (see :func:`repro.workload.traces.trace_grid`)
        # precomputes each VM's demand at the upcoming tick instants plus
        # the registry-order class aggregates, so the per-tick walk reads
        # flat lists instead of dispatching into per-VM trace objects.
        # Values are bit-identical to the scalar path by construction;
        # the scalar walk remains the fallback for off-grid instants,
        # VMs admitted mid-chunk, and registries that changed since the
        # aggregates were built.
        # ------------------------------------------------------------------
        self._grid_chunk_ticks = 128
        self._grid_chunk_id = 0
        self._grid_i0 = 0
        self._grid_n = 0
        self._grid_gold: List[float] = []
        self._grid_silver: List[float] = []
        self._grid_bronze: List[float] = []
        self._grid_total: List[float] = []
        self._grid_vm_epoch: Optional[int] = None
        #: Manager's balancer destination ceiling, when wired by the
        #: scenario runner: lets the tick walk accumulate the watchdog's
        #: overload / free-headroom sums as it goes, so
        #: ``react_to_shortfall`` at the same instant skips its own
        #: full-inventory scans (see PowerAwareManager.tick_aggregates).
        self._headroom_ceiling = headroom_ceiling
        self._agg_now: Optional[float] = None
        self._agg_overload = 0.0
        self._agg_headroom = 0.0
        # The host inventory is fixed at construction, and so are each
        # host's machine, meter, core count, and DVFS model: prebinding
        # them drops four attribute hops per host per tick.
        self._host_rows = [
            (h, h.machine, h.machine.meter, h.cores, h.dvfs)
            for h in cluster.hosts
        ]

    def _build_grids(self, i0: int) -> None:
        """Precompute demand grids for ticks ``[i0, i0 + chunk)``.

        One vectorized pass per VM (shared sub-traces deduplicated via
        the cache), accumulating the per-class and registry-order totals
        elementwise in registry order — the identical IEEE-754 operation
        sequence, per element, as the scalar registry walk.
        """
        epoch = self.epoch_s
        n = self._grid_chunk_ticks
        ticks = [j * epoch for j in range(i0, i0 + n)]
        cache: dict = {}
        cluster = self.cluster
        self._grid_chunk_id += 1
        chunk = self._grid_chunk_id
        gold = np.zeros(n)
        silver = np.zeros(n)
        bronze = np.zeros(n)
        total = np.zeros(n)
        complete = True
        arrs: Dict[int, np.ndarray] = {}
        for vm in cluster.iter_vms():
            arr = trace_grid(vm.trace, ticks, cache)
            if arr.min() < 0.0:
                # A negative demand must raise from the scalar path at
                # the exact instant it is reached — leave this VM off
                # the grid rather than erroring early here.
                vm._demand_grid = None
                vm._demand_grid_chunk = -1
                complete = False
                continue
            g = np.minimum(arr, 1.0) * vm.vcpus
            arrs[id(vm)] = g
            vm._demand_grid = g.tolist()
            vm._demand_grid_chunk = chunk
            vm._demand_grid_i0 = i0
            vm._demand_grid_epoch = epoch
            total += g
            p = vm.priority
            if p == 0:
                gold += g
            elif p == 1:
                silver += g
            else:
                bronze += g
        self._grid_i0 = i0
        self._grid_n = n
        self._grid_gold = gold.tolist()
        self._grid_silver = silver.tolist()
        self._grid_bronze = bronze.tolist()
        self._grid_total = total.tolist()
        self._grid_vm_epoch = cluster._vm_epoch if complete else None
        # Per-host aggregates: the resident sum (elementwise, in the
        # host's VM dict order — the identical accumulation as the
        # scalar walk), plus the clamped utilization and interpolated
        # active wattage derived from it with the same per-element
        # operation sequence as the per-tick scalar expressions.  Tagged
        # with the host's demand epoch: any placement or migration-tax
        # change invalidates the grids until the next chunk.
        for host in cluster.hosts:
            vms = host.vms
            if not vms:
                host._grid_chunk = -1
                continue
            acc = np.zeros(n)
            ok = True
            for vm in vms.values():
                a = arrs.get(id(vm))
                if a is None:
                    ok = False
                    break
                acc += a
            if not ok:
                host._grid_chunk = -1
                continue
            util = np.minimum(acc / host.cores, 1.0)
            host._grid_resident = acc.tolist()
            host._grid_util = util.tolist()
            host._grid_power = (
                host.machine.profile.active_model.power_at_grid(util).tolist()
            )
            host._grid_chunk = chunk
            host._grid_tag = host._demand_epoch
            host._grid_i0 = i0
            host._grid_eps = epoch
        # Let ``Cluster.demand_cores`` itself serve lattice instants from
        # the registry totals (manager reads at instants that pop before
        # the tick — consolidation — miss the single-slot cache).
        cluster._demand_grid = self._grid_total
        cluster._demand_grid_i0 = i0
        cluster._demand_grid_eps = epoch
        cluster._demand_grid_tag = self._grid_vm_epoch

    def start(self) -> "Process":  # noqa: F821
        if self._process is not None:
            raise RuntimeError("sampler already started")
        # ``bind`` re-points ``_process`` at the re-created process on
        # checkpoint restore (the pickled handle is an inert husk).
        self._process = self.env.process(
            self._run(), ckpt=ResumeSpec(self, "_run", bind="_process")
        )
        return self._process

    def sample_once(self) -> float:  # reprolint: hot
        """Take one sample immediately; returns the epoch's shortfall cores.

        This is the simulation's per-instant hot path, so the whole tick
        is one fused walk over the host inventory: each host's VM demands
        are read once (populating the per-VM memo) and its utilization
        refresh plus per-class strict-priority shortfall arithmetic run
        inline.  The accumulation order — hosts in inventory order, VMs in
        per-host dict order, classes GOLD→SILVER→BRONZE, then the cluster
        VM registry for class demand — is exactly the order of the
        separate walks this replaces, so every series value stays
        bit-identical.
        """
        now = self.env.now
        cluster = self.cluster
        epoch = self.epoch_s
        # Grid index for this instant: usable only when ``now`` sits
        # exactly on the tick lattice (event times are accumulated sums,
        # so the exactness guard keeps the grid bit-faithful).
        i = int(now / epoch + 0.5)
        if i * epoch == now:
            if not (
                self._grid_n and self._grid_i0 <= i < self._grid_i0 + self._grid_n
            ):
                self._build_grids(i)
            gi = i - self._grid_i0
        else:
            gi = -1
        chunk = self._grid_chunk_id
        shortfall = 0.0
        gold_sf = silver_sf = bronze_sf = 0.0
        ceiling = self._headroom_ceiling
        overload_sum = 0.0
        headroom_sum = 0.0
        power_total = 0.0

        def class_split(vms: dict, gi: int):
            # Per-class demand from the VM grids, accumulated in the
            # host's VM dict order — the same order (and floats) as the
            # fused walk's inline accumulation.  Only called on the
            # host-grid fast path, where every member VM is guaranteed a
            # current-chunk grid.
            g = sv = b = 0.0
            for vm in vms.values():
                v = vm._demand_grid[gi]
                p = vm.priority
                if p == 0:
                    g += v
                elif p == 1:
                    sv += v
                else:
                    b += v
            return g, sv, b

        for host, machine, meter, cores, dvfs in self._host_rows:
            vms = host.vms
            tax = host._migration_tax_cores
            # Inline machine.is_active (a property + method chain):
            active = (
                machine._state is PowerState.ACTIVE
                and machine._transition is None
            )
            # Host-grid fast path: valid only while the host's demand
            # epoch still matches the chunk build (no placement or tax
            # change since), so the precomputed aggregates are exactly
            # what the per-VM walk would re-derive.
            hg = (
                gi >= 0
                and host._grid_chunk == chunk
                and host._grid_tag == host._demand_epoch
            )
            if vms:
                if hg:
                    vm_sum = host._grid_resident[gi]
                    g = sv = b = 0.0
                    classes_done = False
                else:
                    vm_sum = 0.0
                    g = sv = b = 0.0
                    classes_done = True
                    for vm in vms.values():
                        # No memo write on the grid branch:
                        # ``demand_cores`` itself is grid-aware, so any
                        # later reader at this instant resolves the same
                        # value in O(1).
                        if gi >= 0 and vm._demand_grid_chunk == chunk:
                            v = vm._demand_grid[gi]
                        else:
                            v = vm.demand_cores(now)
                        vm_sum += v
                        p = vm.priority
                        if p == 0:
                            g += v
                        elif p == 1:
                            sv += v
                        else:
                            b += v
                demand = vm_sum + tax
            else:
                g = sv = b = 0.0
                vm_sum = 0.0
                classes_done = True
                demand = 0 + tax
            # Serve the same-instant planning reads from the host cache
            # (both the taxed total and the resident sum — lockstep with
            # Host.demand_cores / Host.resident_demand_cores).
            host._demand_key = (now, host._demand_epoch)
            host._demand_value = demand
            host._resident_value = vm_sum
            # Inline Host.refresh_utilization(now):
            if dvfs is not None:
                if active:
                    host.frequency = dvfs.level_for(
                        demand / cores, target=host.dvfs_target
                    )
                else:
                    host.frequency = dvfs.levels[0]
                capacity = cores * host.frequency
            else:
                capacity = cores
            # ``d if d > 0.0 else 0.0`` is ``max(0.0, d)`` without the
            # call: identical result (the difference never rounds to
            # ``-0.0``), and adding a zero term to a non-negative
            # accumulator is the identity, so zero terms are skipped.
            d = demand - capacity
            sf = d if d > 0.0 else 0.0
            if ceiling is not None and active:
                # Watchdog pre-aggregation: the same expressions, host
                # order, and zero-start accumulation as the manager's
                # overload / free-headroom scans (active hosts for the
                # former, placement-available hosts for the latter).
                d = demand - cores
                if d > 0.0:
                    overload_sum += d
                if not (host._evacuating or host._in_maintenance):
                    d = cores * ceiling - demand
                    if d > 0.0:
                        headroom_sum += d
            if active:
                # Lockstep inline of PowerMachine.set_utilization for the
                # stably-ACTIVE case (the validations are vacuous here:
                # ``min(demand / cores, 1.0)`` is always in range and the
                # DVFS power scale is positive).  ``_active_power`` is
                # unrolled with the same operation order.  With no
                # migration tax, ``demand == vm_sum`` bitwise (x + 0.0),
                # so the precomputed utilization/wattage grids hold
                # exactly the values the scalar expressions produce.
                if hg and tax == 0.0:
                    u = host._grid_util[gi]
                    pa = host._grid_power[gi]
                else:
                    u = min(demand / cores, 1.0)
                    pa = machine._power_at(u)
                dscale = (
                    dvfs.power_scale(host.frequency)
                    if dvfs is not None
                    else 1.0
                )
                machine._utilization = u
                machine._dynamic_scale = dscale
                idle = machine._idle_w
                meter.set_power(now, idle + (pa - idle) * dscale)
            else:
                # ``set_utilization(0.0)`` on a non-active machine only
                # writes ``_utilization``/``_dynamic_scale`` (no meter
                # update), so it is a pure no-op once both already hold
                # their reset values — the common case for parked hosts.
                if machine._utilization != 0.0 or machine._dynamic_scale != 1.0:
                    machine.set_utilization(0.0)
                if vms:
                    sf = demand
            # Fleet power accumulated in the same host (== meter) order
            # as ``Cluster.power_w``'s scan, after this host's meter
            # write — the identical IEEE-754 sum without the extra walk.
            power_total += meter._power_w
            if sf > 0.0:
                shortfall += sf
            # Inline Host.shortfall_by_class(now) accumulation:
            if vms:
                if not active:
                    if not classes_done:
                        g, sv, b = class_split(vms, gi)
                    gold_sf += g
                    silver_sf += sv
                    bronze_sf += b
                else:
                    if dvfs is not None:
                        capacity_left = max(0.0, cores * host.frequency - tax)
                    else:
                        capacity_left = max(0.0, cores - tax)
                    if classes_done or vm_sum > capacity_left - 1.0:
                        # The slack guard makes skipping exact: per-class
                        # sums differ from ``vm_sum`` and the running
                        # ``capacity_left`` from true remainders only by
                        # accumulated rounding (≪ 1 core), so with a full
                        # core of headroom every ``min`` resolves to the
                        # class demand and each contribution is exactly
                        # ``d - d == 0.0``.  Anything closer to the edge
                        # recomputes the split and runs the arithmetic.
                        if not classes_done:
                            g, sv, b = class_split(vms, gi)
                        delivered = min(g, capacity_left)
                        capacity_left -= delivered
                        gold_sf += g - delivered
                        delivered = min(sv, capacity_left)
                        capacity_left -= delivered
                        silver_sf += sv - delivered
                        bronze_sf += b - min(b, capacity_left)
        if gi >= 0 and self._grid_vm_epoch == cluster._vm_epoch:
            # Registry unchanged since the chunk was built: the class
            # demand totals are precomputed flat lists.
            gold_d = self._grid_gold[gi]
            silver_d = self._grid_silver[gi]
            bronze_d = self._grid_bronze[gi]
            registry_total = self._grid_total[gi]
        else:
            gold_d = silver_d = bronze_d = 0.0
            registry_total = 0.0
            for vm in cluster.iter_vms():
                # Memo hit for every placed VM (populated by the host
                # walk above); the inline check skips the method call.
                v = (
                    vm._demand_value
                    if now == vm._demand_at_t
                    else vm.demand_cores(now)
                )
                registry_total += v
                p = vm.priority
                if p == 0:
                    gold_d += v
                elif p == 1:
                    silver_d += v
                else:
                    bronze_d += v
        demand = gold_d + silver_d + bronze_d
        # ``registry_total`` accumulates in registry order starting from
        # zero — exactly ``Cluster.demand_cores``'s own sum — so the
        # cluster-level cache can be pre-seeded here.  Manager reads at
        # coincident instants (watchdog, consolidation) then skip their
        # own registry walk entirely.
        cluster._demand_key = (now, cluster._vm_epoch)
        cluster._demand_value = registry_total
        if ceiling is not None:
            self._agg_now = now
            self._agg_overload = overload_sum
            self._agg_headroom = headroom_sum
        committed = cluster.committed_capacity_cores()
        n_active = cluster.n_active_hosts()
        vm_count = cluster.vm_count
        s = self.series
        s["demand_cores"].append(now, demand)
        s["active_capacity_cores"].append(now, cluster.active_capacity_cores())
        s["committed_capacity_cores"].append(now, committed)
        s["power_w"].append(now, power_total)
        s["active_hosts"].append(now, n_active)
        s["parked_hosts"].append(now, cluster.n_parked_hosts())
        s["transitioning_hosts"].append(now, cluster.n_transitioning_hosts())
        s["shortfall_cores"].append(now, shortfall)
        s["vm_count"].append(now, vm_count)
        epoch_s = self.epoch_s
        class_sf = (gold_sf, silver_sf, bronze_sf)
        class_d = (gold_d, silver_d, bronze_d)
        for (priority, name), sf_value, d_value in zip(
            self._CLASS_COLUMNS, class_sf, class_d
        ):
            s[name].append(now, sf_value)
            self.class_shortfall_core_s[priority] += sf_value * epoch_s
            self.class_demand_core_s[priority] += d_value * epoch_s
        self.shortfall_core_s += shortfall * epoch_s
        self.demand_core_s += demand * epoch_s
        self.samples += 1
        sink = self._sink
        if sink is not None:
            sink.emit_window(
                now,
                {
                    "demand_cores": demand,
                    "power_w": power_total,
                    "active_hosts": n_active,
                    "parked_hosts": cluster.n_parked_hosts(),
                    "committed_capacity_cores": committed,
                    "shortfall_cores": shortfall,
                    "vm_count": vm_count,
                },
            )
        if self.feed is not None:
            self.feed.publish(
                ClusterView(
                    taken_at=now,
                    demand_cores=demand,
                    committed_capacity_cores=committed,
                    active_hosts=n_active,
                    vm_count=vm_count,
                )
            )
        return shortfall

    def _run(self, resume_at: Optional[float] = None):
        if resume_at is not None:
            # Checkpoint restore: the interrupted loop had already sampled
            # and was waiting — wait out the remainder, then resume the
            # sample-first cadence.
            yield self.env.shared_timeout_at(resume_at)
        while True:
            self.sample_once()
            # Coalesced: the manager watchdog ticks at the same instants
            # (both periods divide each other in the default configs), so
            # the two loops share one heap entry.  Safe because
            # ``sample_once`` spawns no processes a later same-instant
            # waiter would need to observe.
            yield self.env.shared_timeout(self.epoch_s)

    # ------------------------------------------------------------------
    # Streaming / checkpoint support
    # ------------------------------------------------------------------

    def attach_sink(self, sink) -> None:
        """Attach (or re-attach, after resume) a streaming metrics sink."""
        self._sink = sink

    def __getstate__(self) -> dict:
        """Checkpoint without the sink: it wraps an open file handle.

        The runner re-attaches a resume-mode sink after restore (see
        :class:`repro.telemetry.stream.StreamingMetricsSink`).
        """
        state = self.__dict__.copy()
        state["_sink"] = None
        return state

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def violation_fraction(self) -> float:
        """Share of demanded core-seconds that were not delivered."""
        if self.demand_core_s <= 0:
            return 0.0
        return self.shortfall_core_s / self.demand_core_s

    @property
    def violation_time_fraction(self) -> float:
        """Share of time with any undelivered demand."""
        return self.series["shortfall_cores"].fraction_above(1e-9)

    def violation_fraction_by_class(self) -> Dict[Priority, float]:
        """Per-class share of demanded core-seconds not delivered."""
        result = {}
        for priority in Priority:
            demanded = self.class_demand_core_s[priority]
            if demanded <= 0:
                result[priority] = 0.0
            else:
                result[priority] = (
                    self.class_shortfall_core_s[priority] / demanded
                )
        return result

    def energy_kwh(self) -> float:
        return self.cluster.energy_j() / 3.6e6
