"""The sampling heartbeat: demand refresh + series collection."""

from __future__ import annotations

from typing import Dict, Optional

from repro.datacenter.cluster import Cluster
from repro.datacenter.vm import Priority
from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.view import ClusterView, TelemetryFeed


class ClusterSampler:
    """Periodically refreshes demand and records cluster-level series.

    Each epoch (default 60 s) it:

    1. re-evaluates every VM's demand and pushes host utilizations into
       the power machines (this *is* the simulation's workload dynamics);
    2. appends one sample to each recorded series;
    3. accumulates shortfall (demand not delivered) integrals for the
       performance-violation metrics.
    """

    SERIES = (
        "demand_cores",
        "active_capacity_cores",
        "committed_capacity_cores",
        "power_w",
        "active_hosts",
        "parked_hosts",
        "transitioning_hosts",
        "shortfall_cores",
        "vm_count",
        "shortfall_gold",
        "shortfall_silver",
        "shortfall_bronze",
    )

    _CLASS_SERIES = {
        Priority.GOLD: "shortfall_gold",
        Priority.SILVER: "shortfall_silver",
        Priority.BRONZE: "shortfall_bronze",
    }

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        cluster: Cluster,
        epoch_s: float = 60.0,
        feed: Optional[TelemetryFeed] = None,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        self.env = env
        self.cluster = cluster
        self.epoch_s = epoch_s
        #: Optional staleness pipeline: each tick publishes one
        #: :class:`~repro.telemetry.view.ClusterView` through it (see
        #: :mod:`repro.telemetry.view`); None keeps the manager on ground
        #: truth exactly as before.
        self.feed = feed
        self.series: Dict[str, TimeSeries] = {
            name: TimeSeries(name) for name in self.SERIES
        }
        self.shortfall_core_s = 0.0
        self.demand_core_s = 0.0
        self.class_shortfall_core_s: Dict[Priority, float] = {
            p: 0.0 for p in Priority
        }
        self.class_demand_core_s: Dict[Priority, float] = {p: 0.0 for p in Priority}
        self.samples = 0
        self._process = None

    def start(self) -> "Process":  # noqa: F821
        if self._process is not None:
            raise RuntimeError("sampler already started")
        self._process = self.env.process(self._run())
        return self._process

    def sample_once(self) -> float:
        """Take one sample immediately; returns the epoch's shortfall cores.

        The walk order matters for speed: ``refresh_utilization`` evaluates
        every VM trace once (each VM memoizes its demand at the current
        instant), so the per-class demand/shortfall loops below reuse those
        values instead of re-walking every trace three more times.
        """
        now = self.env.now
        shortfall = self.cluster.refresh_utilization(now)
        class_shortfall = {p: 0.0 for p in Priority}
        for host in self.cluster.hosts:
            if not host.vms:
                continue
            for priority, cores in host.shortfall_by_class(now).items():
                class_shortfall[priority] += cores
        class_demand = {p: 0.0 for p in Priority}
        for vm in self.cluster.iter_vms():
            class_demand[vm.priority] += vm.demand_cores(now)
        demand = sum(class_demand.values())
        s = self.series
        s["demand_cores"].append(now, demand)
        s["active_capacity_cores"].append(now, self.cluster.active_capacity_cores())
        s["committed_capacity_cores"].append(
            now, self.cluster.committed_capacity_cores()
        )
        s["power_w"].append(now, self.cluster.power_w())
        s["active_hosts"].append(now, len(self.cluster.active_hosts()))
        s["parked_hosts"].append(now, len(self.cluster.parked_hosts()))
        s["transitioning_hosts"].append(
            now, len(self.cluster.transitioning_hosts())
        )
        s["shortfall_cores"].append(now, shortfall)
        s["vm_count"].append(now, self.cluster.vm_count)
        for priority, name in self._CLASS_SERIES.items():
            s[name].append(now, class_shortfall[priority])
            self.class_shortfall_core_s[priority] += (
                class_shortfall[priority] * self.epoch_s
            )
            self.class_demand_core_s[priority] += class_demand[priority] * self.epoch_s
        self.shortfall_core_s += shortfall * self.epoch_s
        self.demand_core_s += demand * self.epoch_s
        self.samples += 1
        if self.feed is not None:
            self.feed.publish(
                ClusterView(
                    taken_at=now,
                    demand_cores=demand,
                    committed_capacity_cores=self.cluster.committed_capacity_cores(),
                    active_hosts=len(self.cluster.active_hosts()),
                    vm_count=self.cluster.vm_count,
                )
            )
        return shortfall

    def _run(self):
        while True:
            self.sample_once()
            yield self.env.timeout(self.epoch_s)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def violation_fraction(self) -> float:
        """Share of demanded core-seconds that were not delivered."""
        if self.demand_core_s <= 0:
            return 0.0
        return self.shortfall_core_s / self.demand_core_s

    @property
    def violation_time_fraction(self) -> float:
        """Share of time with any undelivered demand."""
        return self.series["shortfall_cores"].fraction_above(1e-9)

    def violation_fraction_by_class(self) -> Dict[Priority, float]:
        """Per-class share of demanded core-seconds not delivered."""
        result = {}
        for priority in Priority:
            demanded = self.class_demand_core_s[priority]
            if demanded <= 0:
                result[priority] = 0.0
            else:
                result[priority] = (
                    self.class_shortfall_core_s[priority] / demanded
                )
        return result

    def energy_kwh(self) -> float:
        return self.cluster.energy_j() / 3.6e6
