"""Telemetry: time series, the sampling loop, and SLA accounting.

The :class:`ClusterSampler` is the simulation's measurement heartbeat — it
re-samples every VM's demand each epoch, pushes utilization into the host
power machines, and accumulates the series and integrals every experiment
reads (power, capacity, shortfall, host counts).
"""

from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.sampler import ClusterSampler
from repro.telemetry.metrics import SimReport, build_report
from repro.telemetry.trace import (
    TRACE_SCHEMA_VERSION,
    TraceBuffer,
    TraceError,
    TraceEvent,
    TraceLog,
    parse_trace,
    read_trace,
)
from repro.telemetry.validate import (
    TraceValidationReport,
    Violation,
    validate_trace,
)
from repro.telemetry.view import ClusterView, StalenessModel, TelemetryFeed

__all__ = [
    "ClusterSampler",
    "ClusterView",
    "SimReport",
    "StalenessModel",
    "TelemetryFeed",
    "TimeSeries",
    "TRACE_SCHEMA_VERSION",
    "TraceBuffer",
    "TraceError",
    "TraceEvent",
    "TraceLog",
    "TraceValidationReport",
    "Violation",
    "build_report",
    "parse_trace",
    "read_trace",
    "validate_trace",
]
