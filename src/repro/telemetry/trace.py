"""Structured decision tracing: a typed, schema-versioned event stream.

End-of-run aggregates (:class:`~repro.telemetry.SimReport`) say *what* a
run cost, but not *why* the manager acted — a regression that swaps a
park for a wake can land on similar energy numbers and slip through
aggregate-level tests.  This module records every decision and state
change as a typed event:

* power-state transitions (begin/end, sampled latency, failures) from
  :class:`~repro.power.machine.HostPowerStateMachine`;
* migration lifecycle (start and exactly one finish/abort per start)
  from :class:`~repro.migration.engine.MigrationEngine`;
* manager decisions (park, wake, evacuation lifecycle, balancing,
  cap deferrals, maintenance) from
  :class:`~repro.core.manager.PowerAwareManager`;
* watchdog interventions with the triggering shortfall in the payload;
* admission-queue activity and VM retirement;
* fault injection from :class:`~repro.datacenter.faults.FaultInjector`;
* fault-recovery activity — wake retries with their enforced backoff,
  blacklist hold-downs, operator repairs, and watchdog escalation (see
  :mod:`repro.datacenter.recovery`);
* degraded-plane activity — injected mid-copy migration failures with
  their rollback, the manager's migration retries, and safe-mode
  enter/exit from the degradation governor (see
  :class:`~repro.datacenter.faults.MigrationFaultModel` and
  :mod:`repro.telemetry.view`).

Producers hold an ``Optional[TraceBuffer]`` and emit through its typed
factory methods behind an ``if trace is not None`` guard, so tracing is
zero-cost when disabled and the low-level packages never import this
module at runtime (no import cycles).

The buffer is bounded (overflow is *counted*, never silently ignored —
the validator refuses truncated traces) and exports deterministic JSONL:
a header line carrying the schema version, then one sorted-key JSON
object per event.  Identical simulations produce byte-identical JSONL,
which is what the golden-trace and differential (serial vs. parallel,
cold vs. warm cache) test suites diff and hash.

Schema versioning policy: ``TRACE_SCHEMA_VERSION`` bumps whenever an
event type is removed or a field changes meaning; adding a new event
type or a new field with a default is backward compatible and does not
bump.  The validator rejects traces from unknown schema versions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Dict, Iterator, List, Optional, Tuple, Type, Union

#: Bump on any backward-incompatible change to the event schema.
TRACE_SCHEMA_VERSION = 1

#: Default event capacity of one buffer; overflow increments ``dropped``.
DEFAULT_TRACE_MAXLEN = 1_000_000


class TraceError(ValueError):
    """A trace file or stream could not be parsed."""


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEvent:
    """Base event: simulated timestamp plus a per-type ``event`` tag."""

    event: ClassVar[str] = ""

    t: float

    def to_record(self, seq: int) -> Dict[str, Any]:
        """Flat JSON-ready dict; ``seq`` is assigned by the buffer."""
        record: Dict[str, Any] = {"seq": seq, "event": self.event}
        for f in fields(self):
            record[f.name] = getattr(self, f.name)
        return record


@dataclass(frozen=True)
class HostInit(TraceEvent):
    """A host joined the simulation in ``state``."""

    event = "host-init"

    host: str
    state: str
    cores: float
    mem_gb: float


@dataclass(frozen=True)
class TransitionStart(TraceEvent):
    """A power-state transition began; ``latency_s`` is the sampled value."""

    event = "transition-start"

    host: str
    src: str
    dst: str
    latency_s: float
    power_w: float


@dataclass(frozen=True)
class TransitionEnd(TraceEvent):
    """A power-state transition finished; ``state`` is the resulting state."""

    event = "transition-end"

    host: str
    src: str
    dst: str
    state: str
    failed: bool


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The fault model drew a wake failure for ``host``."""

    event = "fault-injected"

    host: str
    permanent: bool


@dataclass(frozen=True)
class MigrationStart(TraceEvent):
    """A live migration was admitted by the engine."""

    event = "migration-start"

    migration_id: str
    vm: str
    src: str
    dst: str


@dataclass(frozen=True)
class MigrationEnd(TraceEvent):
    """The matching finish (or abort) of one migration start."""

    event = "migration-end"

    migration_id: str
    vm: str
    src: str
    dst: str
    aborted: bool
    duration_s: float
    downtime_s: float
    transferred_gb: float


@dataclass(frozen=True)
class MigrationFailed(TraceEvent):
    """An injected mid-copy fault aborted one migration start.

    Like ``migration-end``, this closes the matching ``migration-start``;
    the VM stayed on ``src`` and the destination reservation was rolled
    back (the validator's rollback-conservation family replays that).
    """

    event = "migration-failed"

    migration_id: str
    vm: str
    src: str
    dst: str
    elapsed_s: float
    fail_fraction: float


@dataclass(frozen=True)
class MigrationRetry(TraceEvent):
    """The manager re-attempted a failed evacuation migration.

    ``attempt`` is the 1-based migration attempt for this VM within one
    evacuation (so always >= 2 here); ``backoff_s`` is the enforced delay
    since the failure — the validator checks the chain is monotone.
    """

    event = "migration-retry"

    vm: str
    host: str
    dst: str
    attempt: int
    backoff_s: float


@dataclass(frozen=True)
class SafeModeEnter(TraceEvent):
    """The degradation governor froze consolidation."""

    event = "safe-mode-enter"

    reason: str
    failure_rate: float
    telemetry_age_s: float


@dataclass(frozen=True)
class SafeModeExit(TraceEvent):
    """The degradation governor re-enabled consolidation (hysteresis met)."""

    event = "safe-mode-exit"

    dwell_s: float


@dataclass(frozen=True)
class EvacuationPlanned(TraceEvent):
    """The evacuation planner ran for ``host`` (``ok`` = plan found)."""

    event = "evacuation-planned"

    host: str
    vms: int
    ok: bool


@dataclass(frozen=True)
class EvacuationEnd(TraceEvent):
    """An evacuate-then-park task ended: complete, cancelled, or aborted."""

    event = "evacuation-end"

    host: str
    outcome: str


@dataclass(frozen=True)
class ManagerDecision(TraceEvent):
    """One manager action (park, wake, evac-start, balance, cap-defer …)."""

    event = "decision"

    action: str
    host: str = ""
    detail: str = ""


@dataclass(frozen=True)
class WatchdogWake(TraceEvent):
    """A watchdog-triggered reactive wake, with the shortfall that caused it."""

    event = "watchdog-wake"

    trigger: str
    shortfall_cores: float
    demand_cores: float
    committed_cores: float
    cap_cores: float


@dataclass(frozen=True)
class WakeRetry(TraceEvent):
    """The manager re-attempted a host whose previous wake(s) failed.

    ``attempt`` is the 1-based wake attempt number (so always >= 2 here)
    and ``backoff_s`` is the enforced minimum delay since the last failed
    attempt — the validator checks it never shrinks within a retry chain.
    """

    event = "wake-retry"

    host: str
    attempt: int
    backoff_s: float


@dataclass(frozen=True)
class HostBlacklisted(TraceEvent):
    """Repeated failures put ``host`` in a hold-down until ``until_t``."""

    event = "host-blacklisted"

    host: str
    failures: int
    until_t: float


@dataclass(frozen=True)
class HostRepaired(TraceEvent):
    """An out-of-service host returned to the pool after operator repair."""

    event = "host-repaired"

    host: str
    downtime_s: float


@dataclass(frozen=True)
class Escalation(TraceEvent):
    """Persistent watchdog shortfall escalated to waking extra hosts."""

    event = "escalation"

    ticks: int
    extra_hosts: int
    shortfall_cores: float


@dataclass(frozen=True)
class AdmissionEvent(TraceEvent):
    """Admission-queue activity (admit, queue, place, reject, time out)."""

    event = "admission"

    action: str
    vm: str
    host: str = ""
    wait_s: float = 0.0


@dataclass(frozen=True)
class VmRetired(TraceEvent):
    """A VM departed the cluster (``host`` empty if it was still queued)."""

    event = "vm-retired"

    vm: str
    host: str = ""


@dataclass(frozen=True)
class HostFinal(TraceEvent):
    """End-of-run per-host reconciliation facts."""

    event = "host-final"

    host: str
    state: str
    energy_j: float
    wake_failures: int
    out_of_service: bool


@dataclass(frozen=True)
class RunEnd(TraceEvent):
    """End-of-run totals the validator reconciles against."""

    event = "run-end"

    horizon_s: float
    energy_kwh: float
    hosts: int
    vms: int
    migrations_unfinished: int


EVENT_TYPES: Tuple[Type[TraceEvent], ...] = (
    HostInit,
    TransitionStart,
    TransitionEnd,
    FaultInjected,
    MigrationStart,
    MigrationEnd,
    MigrationFailed,
    MigrationRetry,
    SafeModeEnter,
    SafeModeExit,
    EvacuationPlanned,
    EvacuationEnd,
    ManagerDecision,
    WatchdogWake,
    WakeRetry,
    HostBlacklisted,
    HostRepaired,
    Escalation,
    AdmissionEvent,
    VmRetired,
    HostFinal,
    RunEnd,
)

EVENTS_BY_TAG: Dict[str, Type[TraceEvent]] = {cls.event: cls for cls in EVENT_TYPES}


def event_from_record(record: Dict[str, Any]) -> TraceEvent:
    """Revive one JSONL record into its typed event."""
    tag = record.get("event")
    cls = EVENTS_BY_TAG.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise TraceError("unknown event type {!r}".format(tag))
    kwargs = {}
    for f in fields(cls):
        if f.name not in record:
            raise TraceError(
                "event {!r} record is missing field {!r}".format(tag, f.name)
            )
        kwargs[f.name] = record[f.name]
    return cls(**kwargs)


# ----------------------------------------------------------------------
# The buffer
# ----------------------------------------------------------------------


class TraceBuffer:
    """Bounded in-memory event collector with typed emit helpers.

    Producers call the factory methods (``transition_start`` …) so they
    never import the event classes; everything else (export, hashing,
    parsing) lives on this class too.
    """

    def __init__(
        self, maxlen: int = DEFAULT_TRACE_MAXLEN, label: str = ""
    ) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self.label = label
        self.events: List[TraceEvent] = []
        #: Events discarded because the buffer was full.  A non-zero count
        #: marks the trace as truncated; the validator refuses to certify it.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.maxlen:
            self.dropped += 1
            return
        self.events.append(event)

    # -- typed factories (producer-facing API) --------------------------

    def host_init(
        self, t: float, host: str, state: str, cores: float, mem_gb: float
    ) -> None:
        self.emit(HostInit(t=t, host=host, state=state, cores=cores, mem_gb=mem_gb))

    def transition_start(
        self,
        t: float,
        host: str,
        src: str,
        dst: str,
        latency_s: float,
        power_w: float,
    ) -> None:
        self.emit(
            TransitionStart(
                t=t, host=host, src=src, dst=dst, latency_s=latency_s, power_w=power_w
            )
        )

    def transition_end(
        self, t: float, host: str, src: str, dst: str, state: str, failed: bool
    ) -> None:
        self.emit(
            TransitionEnd(t=t, host=host, src=src, dst=dst, state=state, failed=failed)
        )

    def fault_injected(self, t: float, host: str, permanent: bool) -> None:
        self.emit(FaultInjected(t=t, host=host, permanent=permanent))

    def migration_start(
        self, t: float, migration_id: str, vm: str, src: str, dst: str
    ) -> None:
        self.emit(MigrationStart(t=t, migration_id=migration_id, vm=vm, src=src, dst=dst))

    def migration_end(
        self,
        t: float,
        migration_id: str,
        vm: str,
        src: str,
        dst: str,
        aborted: bool,
        duration_s: float,
        downtime_s: float,
        transferred_gb: float,
    ) -> None:
        self.emit(
            MigrationEnd(
                t=t,
                migration_id=migration_id,
                vm=vm,
                src=src,
                dst=dst,
                aborted=aborted,
                duration_s=duration_s,
                downtime_s=downtime_s,
                transferred_gb=transferred_gb,
            )
        )

    def migration_failed(
        self,
        t: float,
        migration_id: str,
        vm: str,
        src: str,
        dst: str,
        elapsed_s: float,
        fail_fraction: float,
    ) -> None:
        self.emit(
            MigrationFailed(
                t=t,
                migration_id=migration_id,
                vm=vm,
                src=src,
                dst=dst,
                elapsed_s=elapsed_s,
                fail_fraction=fail_fraction,
            )
        )

    def migration_retry(
        self, t: float, vm: str, host: str, dst: str, attempt: int, backoff_s: float
    ) -> None:
        self.emit(
            MigrationRetry(
                t=t, vm=vm, host=host, dst=dst, attempt=attempt, backoff_s=backoff_s
            )
        )

    def safe_mode_enter(
        self, t: float, reason: str, failure_rate: float, telemetry_age_s: float
    ) -> None:
        self.emit(
            SafeModeEnter(
                t=t,
                reason=reason,
                failure_rate=failure_rate,
                telemetry_age_s=telemetry_age_s,
            )
        )

    def safe_mode_exit(self, t: float, dwell_s: float) -> None:
        self.emit(SafeModeExit(t=t, dwell_s=dwell_s))

    def evacuation_planned(self, t: float, host: str, vms: int, ok: bool) -> None:
        self.emit(EvacuationPlanned(t=t, host=host, vms=vms, ok=ok))

    def evacuation_end(self, t: float, host: str, outcome: str) -> None:
        self.emit(EvacuationEnd(t=t, host=host, outcome=outcome))

    def decision(self, t: float, action: str, host: str = "", detail: str = "") -> None:
        self.emit(ManagerDecision(t=t, action=action, host=host, detail=detail))

    def watchdog_wake(
        self,
        t: float,
        trigger: str,
        shortfall_cores: float,
        demand_cores: float,
        committed_cores: float,
        cap_cores: float,
    ) -> None:
        self.emit(
            WatchdogWake(
                t=t,
                trigger=trigger,
                shortfall_cores=shortfall_cores,
                demand_cores=demand_cores,
                committed_cores=committed_cores,
                cap_cores=cap_cores,
            )
        )

    def wake_retry(self, t: float, host: str, attempt: int, backoff_s: float) -> None:
        self.emit(WakeRetry(t=t, host=host, attempt=attempt, backoff_s=backoff_s))

    def host_blacklisted(
        self, t: float, host: str, failures: int, until_t: float
    ) -> None:
        self.emit(
            HostBlacklisted(t=t, host=host, failures=failures, until_t=until_t)
        )

    def host_repaired(self, t: float, host: str, downtime_s: float) -> None:
        self.emit(HostRepaired(t=t, host=host, downtime_s=downtime_s))

    def escalation(
        self, t: float, ticks: int, extra_hosts: int, shortfall_cores: float
    ) -> None:
        self.emit(
            Escalation(
                t=t,
                ticks=ticks,
                extra_hosts=extra_hosts,
                shortfall_cores=shortfall_cores,
            )
        )

    def admission(
        self, t: float, action: str, vm: str, host: str = "", wait_s: float = 0.0
    ) -> None:
        self.emit(AdmissionEvent(t=t, action=action, vm=vm, host=host, wait_s=wait_s))

    def vm_retired(self, t: float, vm: str, host: str = "") -> None:
        self.emit(VmRetired(t=t, vm=vm, host=host))

    def host_final(
        self,
        t: float,
        host: str,
        state: str,
        energy_j: float,
        wake_failures: int,
        out_of_service: bool,
    ) -> None:
        self.emit(
            HostFinal(
                t=t,
                host=host,
                state=state,
                energy_j=energy_j,
                wake_failures=wake_failures,
                out_of_service=out_of_service,
            )
        )

    def run_end(
        self,
        t: float,
        horizon_s: float,
        energy_kwh: float,
        hosts: int,
        vms: int,
        migrations_unfinished: int,
    ) -> None:
        self.emit(
            RunEnd(
                t=t,
                horizon_s=horizon_s,
                energy_kwh=energy_kwh,
                hosts=hosts,
                vms=vms,
                migrations_unfinished=migrations_unfinished,
            )
        )

    # -- export ---------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {
            "trace": TRACE_SCHEMA_VERSION,
            "label": self.label,
            "events": len(self.events),
            "dropped": self.dropped,
        }

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        for seq, event in enumerate(self.events):
            yield event.to_record(seq)

    def to_jsonl(self) -> str:
        """Deterministic JSONL: header line, then one line per event."""
        lines = [_dumps(self.header())]
        lines.extend(_dumps(record) for record in self.iter_records())
        return "\n".join(lines) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSONL stream to ``path`` atomically; returns the path.

        Traces feed differential byte-comparisons; a torn trace would
        produce a baffling hash mismatch, so the write goes through the
        tmp + fsync + rename helper.
        """
        from repro.core.atomicio import atomic_write

        target = Path(path)
        atomic_write(target, self.to_jsonl().encode("utf-8"))
        return target

    def trace_hash(self) -> str:
        """SHA-256 of the JSONL byte stream — the differential-test key."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------


@dataclass
class TraceLog:
    """A parsed trace: the header plus raw records (``events()`` revives)."""

    header: Dict[str, Any]
    records: List[Dict[str, Any]]

    @property
    def schema(self) -> Optional[int]:
        value = self.header.get("trace")
        return value if isinstance(value, int) else None

    @property
    def dropped(self) -> int:
        value = self.header.get("dropped", 0)
        return value if isinstance(value, int) else 0

    @property
    def label(self) -> str:
        return str(self.header.get("label", ""))

    def __len__(self) -> int:
        return len(self.records)

    def events(self) -> List[TraceEvent]:
        return [event_from_record(record) for record in self.records]


def parse_trace(text: str) -> TraceLog:
    """Parse a JSONL trace stream produced by :meth:`TraceBuffer.to_jsonl`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceError("empty trace stream")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError("unparsable trace header: {}".format(exc)) from exc
    if not isinstance(header, dict) or "trace" not in header:
        raise TraceError("first line is not a trace header (missing 'trace' key)")
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError("line {}: unparsable record: {}".format(lineno, exc)) from exc
        if not isinstance(record, dict) or "event" not in record:
            raise TraceError("line {}: record has no 'event' tag".format(lineno))
        records.append(record)
    return TraceLog(header=header, records=records)


def read_trace(path: Union[str, Path]) -> TraceLog:
    """Read and parse one JSONL trace file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError("cannot read trace {}: {}".format(path, exc)) from exc
    return parse_trace(text)
