"""Append-only sampled time series with integral/statistic helpers."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class TimeSeries:
    """(time, value) samples with monotonically non-decreasing time.

    Values are interpreted as piecewise-constant (sample-and-hold) for
    integration, matching how the sampler produces them.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ValueError(
                "non-monotonic time {} after {}".format(t, self._times[-1])
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def last(self) -> Tuple[float, float]:
        if not self._times:
            raise IndexError("empty series")
        return self._times[-1], self._values[-1]

    def mean(self) -> float:
        """Time-weighted mean over the sampled span (simple mean if <2 pts)."""
        if not self._values:
            raise ValueError("empty series")
        if len(self._values) < 2:
            return self._values[0]
        return self.integral() / (self._times[-1] - self._times[0])

    def max(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return max(self._values)

    def min(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return min(self._values)

    def integral(self) -> float:
        """Sample-and-hold integral of value over time."""
        if len(self._times) < 2:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        return float(np.sum(values[:-1] * np.diff(times)))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of (held) time the value exceeded ``threshold``."""
        if len(self._times) < 2:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        span = times[-1] - times[0]
        if span <= 0:
            return 0.0
        above = (values[:-1] > threshold).astype(float)
        return float(np.sum(above * np.diff(times)) / span)

    def percentile(self, q: float) -> float:
        """Sample percentile (unweighted) — adequate for uniform sampling."""
        if not self._values:
            raise ValueError("empty series")
        return float(np.percentile(np.asarray(self._values), q))

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def downsample(self, stride: int) -> "TimeSeries":
        """Every ``stride``-th sample (for compact figure output)."""
        if stride < 1:
            raise ValueError("stride must be >= 1")
        out = TimeSeries(self.name)
        for i in range(0, len(self._times), stride):
            out.append(self._times[i], self._values[i])
        return out

    def __repr__(self) -> str:
        return "<TimeSeries {} n={}>".format(self.name, len(self))


class BoundedTimeSeries(TimeSeries):
    """A :class:`TimeSeries` that keeps O(1) state instead of samples.

    Long-horizon service mode appends millions of points per series; the
    end-of-run report only ever reads ``mean``/``max``/``min``/
    ``integral``/``fraction_above`` — all computable incrementally under
    the same sample-and-hold semantics.  This subclass maintains exactly
    those aggregates (identical accumulation order to the array math on
    the full series, numpy's pairwise ``np.sum`` aside) and refuses the
    sample-reading accessors, so memory stays flat no matter the horizon.

    ``fraction_above`` needs its threshold *before* the samples stream
    by, so it is fixed at construction; asking for a different one is an
    error rather than a silently wrong answer.
    """

    def __init__(self, name: str, threshold: float = 1e-9) -> None:
        super().__init__(name)
        self._count = 0
        self._first_t = 0.0
        self._first_v = 0.0
        self._last_t = 0.0
        self._last_v = 0.0
        self._max = float("-inf")
        self._min = float("inf")
        self._integral = 0.0
        self._threshold = threshold
        self._above_time = 0.0

    def append(self, t: float, value: float) -> None:
        t = float(t)
        value = float(value)
        if self._count and t < self._last_t:
            raise ValueError(
                "non-monotonic time {} after {}".format(t, self._last_t)
            )
        if self._count == 0:
            self._first_t, self._first_v = t, value
        else:
            dt = t - self._last_t
            self._integral += self._last_v * dt
            if self._last_v > self._threshold:
                self._above_time += dt
        self._last_t, self._last_v = t, value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def last(self) -> Tuple[float, float]:
        if not self._count:
            raise IndexError("empty series")
        return self._last_t, self._last_v

    def mean(self) -> float:
        if not self._count:
            raise ValueError("empty series")
        if self._count < 2:
            return self._first_v
        return self._integral / (self._last_t - self._first_t)

    def max(self) -> float:
        if not self._count:
            raise ValueError("empty series")
        return self._max

    def min(self) -> float:
        if not self._count:
            raise ValueError("empty series")
        return self._min

    def integral(self) -> float:
        return self._integral if self._count >= 2 else 0.0

    def fraction_above(self, threshold: float) -> float:
        if threshold != self._threshold:
            raise ValueError(
                "bounded series {} tracks threshold {}, not {}".format(
                    self.name, self._threshold, threshold
                )
            )
        if self._count < 2:
            return 0.0
        span = self._last_t - self._first_t
        if span <= 0:
            return 0.0
        return self._above_time / span

    def _no_samples(self, what: str) -> "RuntimeError":
        return RuntimeError(
            "bounded series {} keeps no samples ({} unavailable)".format(
                self.name, what
            )
        )

    @property
    def times(self) -> np.ndarray:
        raise self._no_samples("times")

    @property
    def values(self) -> np.ndarray:
        raise self._no_samples("values")

    def percentile(self, q: float) -> float:
        raise self._no_samples("percentile")

    def points(self) -> List[Tuple[float, float]]:
        raise self._no_samples("points")

    def downsample(self, stride: int) -> "TimeSeries":
        raise self._no_samples("downsample")

    def __repr__(self) -> str:
        return "<BoundedTimeSeries {} n={}>".format(self.name, len(self))
