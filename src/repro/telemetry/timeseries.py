"""Append-only sampled time series with integral/statistic helpers."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class TimeSeries:
    """(time, value) samples with monotonically non-decreasing time.

    Values are interpreted as piecewise-constant (sample-and-hold) for
    integration, matching how the sampler produces them.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ValueError(
                "non-monotonic time {} after {}".format(t, self._times[-1])
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def last(self) -> Tuple[float, float]:
        if not self._times:
            raise IndexError("empty series")
        return self._times[-1], self._values[-1]

    def mean(self) -> float:
        """Time-weighted mean over the sampled span (simple mean if <2 pts)."""
        if not self._values:
            raise ValueError("empty series")
        if len(self._values) < 2:
            return self._values[0]
        return self.integral() / (self._times[-1] - self._times[0])

    def max(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return max(self._values)

    def min(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return min(self._values)

    def integral(self) -> float:
        """Sample-and-hold integral of value over time."""
        if len(self._times) < 2:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        return float(np.sum(values[:-1] * np.diff(times)))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of (held) time the value exceeded ``threshold``."""
        if len(self._times) < 2:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        span = times[-1] - times[0]
        if span <= 0:
            return 0.0
        above = (values[:-1] > threshold).astype(float)
        return float(np.sum(above * np.diff(times)) / span)

    def percentile(self, q: float) -> float:
        """Sample percentile (unweighted) — adequate for uniform sampling."""
        if not self._values:
            raise ValueError("empty series")
        return float(np.percentile(np.asarray(self._values), q))

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def downsample(self, stride: int) -> "TimeSeries":
        """Every ``stride``-th sample (for compact figure output)."""
        if stride < 1:
            raise ValueError("stride must be >= 1")
        out = TimeSeries(self.name)
        for i in range(0, len(self._times), stride):
            out.append(self._times[i], self._values[i])
        return out

    def __repr__(self) -> str:
        return "<TimeSeries {} n={}>".format(self.name, len(self))
