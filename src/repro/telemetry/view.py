"""Stale telemetry: the manager's (possibly outdated) view of the cluster.

The manager does not get to read the simulation's ground truth for free.
In a real control plane, demand observations flow through a metrics
pipeline that adds publication delay and loses samples; the controller
plans against the last snapshot that actually arrived.  This module
models exactly that:

* :class:`ClusterView` — one immutable aggregate snapshot with the
  instant it was *taken* (its age is measured against that, not against
  when it became visible);
* :class:`StalenessModel` — the pipeline's pathology: a constant
  publication delay plus an i.i.d. per-tick dropout probability, drawn
  from a dedicated ``telemetry:{seed}:{tick}`` RNG stream so enabling
  dropout never perturbs any other stream;
* :class:`TelemetryFeed` — the buffer between the sampler (producer)
  and the manager (consumer).  The sampler publishes a snapshot each
  epoch; the manager asks for the newest snapshot *visible* at planning
  time and falls back to ground truth only before the first snapshot
  lands (cold start).

With no model attached the feed is never constructed, the manager reads
ground truth exactly as before, and fault-free runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.seeding import stream_rng


@dataclass(frozen=True)
class ClusterView:
    """One aggregate telemetry snapshot the manager can plan against."""

    #: Instant the snapshot was taken (staleness is ``now - taken_at``).
    taken_at: float
    demand_cores: float
    committed_capacity_cores: float
    active_hosts: int
    vm_count: int

    def age_s(self, now: float) -> float:
        """Seconds between the snapshot and ``now`` (never negative)."""
        return max(0.0, now - self.taken_at)


@dataclass(frozen=True)
class StalenessModel:
    """Telemetry-pipeline pathology: publication delay plus tick dropout."""

    #: Every snapshot becomes visible ``delay_s`` after it was taken.
    delay_s: float = 0.0
    #: Probability an individual sampler tick is lost entirely.
    dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")


class TelemetryFeed:
    """Snapshot buffer between the sampler and the manager.

    Dropout draws come from a per-tick RNG stream keyed
    ``telemetry:{seed}:{tick}``, so whether tick *n* is lost depends only
    on the seed and *n* — never on how many other random draws the
    simulation made before it.
    """

    def __init__(self, model: StalenessModel, seed: int = 0) -> None:
        self.model = model
        self._seed = seed
        self._tick = 0
        self.published = 0
        self.dropped = 0
        #: Snapshots in publication order as ``(visible_at, view)``.
        self._snapshots: List[Tuple[float, ClusterView]] = []

    def _tick_dropped(self, tick: int) -> bool:
        if self.model.dropout_rate <= 0:
            return False
        rng = stream_rng("telemetry", self._seed, tick)
        return bool(rng.random() < self.model.dropout_rate)

    def publish(self, view: ClusterView) -> bool:
        """Offer one sampler snapshot; returns False if the tick was lost."""
        tick = self._tick
        self._tick += 1
        if self._tick_dropped(tick):
            self.dropped += 1
            return False
        self.published += 1
        self._snapshots.append((view.taken_at + self.model.delay_s, view))
        return True

    def view(self, now: float) -> Optional[ClusterView]:
        """Newest snapshot visible at ``now`` (None before the first lands).

        Snapshots are published in ``taken_at`` order with a constant
        delay, so visibility order equals publication order and a single
        backward scan finds the newest visible one; everything older is
        discarded to keep the buffer bounded.
        """
        visible: Optional[ClusterView] = None
        index = len(self._snapshots) - 1
        while index >= 0:
            visible_at, candidate = self._snapshots[index]
            if visible_at <= now + 1e-12:
                visible = candidate
                break
            index -= 1
        if index > 0:
            del self._snapshots[:index]
        return visible
