"""Trace invariant checker: replay a decision trace and certify it.

The checker replays a trace (live :class:`~repro.telemetry.trace.TraceBuffer`
or a parsed :class:`~repro.telemetry.trace.TraceLog`) and asserts the
behavioural invariants the paper's claims rest on.  Every invariant has a
stable id so tests and CI output can pinpoint which property broke:

``truncated``
    The bounded buffer overflowed; an incomplete trace certifies nothing.
``schema``
    Unknown schema version, unknown event type, or malformed record.
``sequence``
    Sequence numbers must be contiguous and timestamps non-decreasing.
``state-machine``
    Host power-state continuity: every transition starts from the tracked
    state, begin/end events pair up (no overlap), the resulting state is
    consistent with the failure flag, and the final state matches the
    end-of-run ``host-final`` record.
``wake-from-active``
    A transition to ACTIVE may only start from a parked state.
``wake-exclusivity``
    At most one open ``*->active`` transition per host at any instant:
    a second wake dispatched while one is in flight is exactly the
    overlapping-wake race the WakeArbiter rejects structurally.
``transition-latency``
    A transition's wall-clock span must equal its *sampled* latency —
    the resume latency is sampled exactly once per wake.
``untraced-park`` / ``untraced-wake``
    Every park/wake transition must be announced by a manager decision at
    the same instant; transitions that bypass the traced decision API are
    exactly the regressions this layer exists to catch (see lint RL009).
``park-after-evacuation``
    A park may begin only after the host's evacuation completed (at the
    same instant), and ``park-occupied`` flags any VM still resident.
``evacuation-lifecycle``
    Every evacuation end matches exactly one open evacuation start.
``migration-conservation``
    Every migration start has exactly one finish/abort/failure; unmatched
    starts must equal the ``run-end`` in-flight count.
``migration-rollback``
    A failed (mid-copy fault) migration must leave the world as it was:
    the VM stays resident on its source, and the failure payload is sane
    (fail fraction strictly inside (0, 1), non-negative elapsed time).
``migration-retry``
    Retry chains must be monotone: each ``migration-retry`` for a VM
    follows a failed migration, the attempt number strictly increases
    within one chain, the backoff never shrinks, and no retry lands
    inside the backoff window opened by the previous failure.  A fresh
    migration start without a same-instant retry event opens a new chain.
``safe-mode``
    Safe-mode windows must pair up (no nested enters, no exit without an
    enter, exit dwell matching the replayed window), carry sane payloads,
    and admit no park decisions while open.
``residency``
    VM placement bookkeeping (admissions, retirements, migration
    switch-overs) must stay consistent, and the end-of-run VM count must
    reconcile.
``fault-accounting``
    Every injected wake fault must surface as a failed wake transition,
    and the ``host-final`` out-of-service flag must match the replayed
    permanent-failure/repair history.
``wake-backoff``
    Retry backoff must be monotone: between successive ``wake-retry``
    events for a host (no successful wake in between) the attempt number
    strictly increases and the backoff never shrinks, and no retry may
    land inside the backoff window opened by the previous failure.
``blacklist-hold``
    A blacklisted host must not be woken again before its hold-down
    expires (operator maintenance-end wakes are exempt).
``repair-reentry``
    A host taken out of service by a permanent failure may re-enter
    management only via a traced ``host-repaired`` event whose downtime
    matches the replay.
``escalation-payload``
    Escalations must carry a sane payload (ticks and extra hosts >= 1,
    positive shortfall) and land at the same instant as a reactive wake.
``energy``
    Per-host trace energy must sum to the run total, which must match the
    ``SimReport`` when one is supplied.
``watchdog-payload``
    Reactive wakes must carry the positive triggering shortfall.
``run-end``
    A complete scenario trace ends with per-host finals and one run-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.telemetry.trace import (
    TRACE_SCHEMA_VERSION,
    AdmissionEvent,
    Escalation,
    EvacuationEnd,
    EvacuationPlanned,
    FaultInjected,
    HostBlacklisted,
    HostFinal,
    HostInit,
    HostRepaired,
    ManagerDecision,
    MigrationEnd,
    MigrationFailed,
    MigrationRetry,
    MigrationStart,
    RunEnd,
    SafeModeEnter,
    SafeModeExit,
    TraceBuffer,
    TraceError,
    TraceEvent,
    TraceLog,
    TransitionEnd,
    TransitionStart,
    VmRetired,
    WakeRetry,
    WatchdogWake,
    event_from_record,
)

_ACTIVE = "active"

#: Trace event tag -> validator invariant families that consume it.
#:
#: This is the coverage contract reprolint RL013 audits by AST: every
#: event type a producer defines must appear here mapped to at least one
#: family this module actually flags, so no event can be emitted into a
#: trace that no invariant ever examines.  Adding a trace event without
#: extending the checker (or mapping it to an existing family that reads
#: it) is a lint failure, not a silent coverage hole.
EVENT_COVERAGE = {
    "host-init": ("sequence", "state-machine"),
    "transition-start": (
        "state-machine", "transition-latency", "wake-exclusivity",
    ),
    "transition-end": ("state-machine", "transition-latency"),
    "fault-injected": ("fault-accounting",),
    "migration-start": ("migration-conservation",),
    "migration-end": ("migration-conservation", "residency"),
    "migration-failed": ("migration-rollback",),
    "migration-retry": ("migration-retry",),
    "safe-mode-enter": ("safe-mode",),
    "safe-mode-exit": ("safe-mode",),
    "evacuation-planned": ("evacuation-lifecycle",),
    "evacuation-end": ("evacuation-lifecycle", "park-after-evacuation"),
    "decision": ("untraced-park", "untraced-wake", "safe-mode"),
    "watchdog-wake": ("watchdog-payload", "escalation-payload"),
    "wake-retry": ("wake-backoff",),
    "host-blacklisted": ("blacklist-hold",),
    "host-repaired": ("repair-reentry",),
    "escalation": ("escalation-payload",),
    "admission": ("residency",),
    "vm-retired": ("residency",),
    "host-final": ("state-machine", "energy", "run-end"),
    "run-end": ("run-end", "migration-conservation"),
}

#: Admission actions that bind a VM to a host.
_PLACING_ACTIONS = frozenset({"admit", "admit-placed", "initial-place"})

#: Absolute tolerance for transition wall-clock vs. sampled latency.
_LATENCY_TOL_S = 1e-6

#: Relative tolerance for energy reconciliation.
_ENERGY_REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant at one trace position."""

    invariant: str
    seq: int
    t: float
    message: str

    def render(self) -> str:
        return "seq {:>6} t={:>12.1f}  [{}] {}".format(
            self.seq, self.t, self.invariant, self.message
        )


@dataclass
class TraceValidationReport:
    """Outcome of one validation pass."""

    violations: List[Violation] = field(default_factory=list)
    events_checked: int = 0
    hosts_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants_violated(self) -> List[str]:
        return sorted({v.invariant for v in self.violations})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "events_checked": self.events_checked,
            "hosts_seen": self.hosts_seen,
            "violations": [
                {
                    "invariant": v.invariant,
                    "seq": v.seq,
                    "t": v.t,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.append(
            "trace check: {} violation(s) over {} event(s), {} host(s)".format(
                len(self.violations), self.events_checked, self.hosts_seen
            )
        )
        return "\n".join(lines)


class _HostState:
    """Per-host replay state."""

    __slots__ = (
        "state", "open_transition", "faults", "failed_wakes", "finalized",
        "last_failure_t", "last_retry_attempt", "last_retry_backoff",
        "pending_retry_t", "blacklisted_until", "pending_permanent",
        "oos", "oos_t",
    )

    def __init__(self, state: str) -> None:
        self.state = state
        self.open_transition: Optional[Tuple[int, TransitionStart]] = None
        self.faults = 0
        self.failed_wakes = 0
        self.finalized = False
        # -- recovery replay state --
        self.last_failure_t: Optional[float] = None
        self.last_retry_attempt = 0
        self.last_retry_backoff = 0.0
        self.pending_retry_t: Optional[float] = None
        self.blacklisted_until: Optional[float] = None
        self.pending_permanent = False
        self.oos = False
        self.oos_t = 0.0

    def reset_retry_history(self) -> None:
        self.last_failure_t = None
        self.last_retry_attempt = 0
        self.last_retry_backoff = 0.0


class _MigrationChain:
    """Per-VM retry-chain replay state (migration-retry invariant)."""

    __slots__ = ("last_failure_t", "last_attempt", "last_backoff",
                 "last_retry_t")

    def __init__(self) -> None:
        self.last_failure_t: Optional[float] = None
        self.last_attempt = 0
        self.last_backoff = 0.0
        self.last_retry_t: Optional[float] = None


def _sequenced(
    trace: Union[TraceBuffer, TraceLog, List[TraceEvent]],
    out: TraceValidationReport,
) -> Tuple[List[Tuple[int, TraceEvent]], int]:
    """Normalize the input into ``[(seq, event)]`` plus the dropped count."""
    if isinstance(trace, TraceBuffer):
        return list(enumerate(trace.events)), trace.dropped
    if isinstance(trace, list):
        return list(enumerate(trace)), 0
    if trace.schema != TRACE_SCHEMA_VERSION:
        out.violations.append(
            Violation(
                "schema",
                -1,
                0.0,
                "unsupported trace schema {!r} (checker speaks {})".format(
                    trace.schema, TRACE_SCHEMA_VERSION
                ),
            )
        )
        return [], trace.dropped
    events: List[Tuple[int, TraceEvent]] = []
    for record in trace.records:
        seq = record.get("seq", -1)
        try:
            events.append((int(seq), event_from_record(record)))
        except (TraceError, TypeError, ValueError) as exc:
            out.violations.append(
                Violation("schema", int(seq) if isinstance(seq, int) else -1,
                          0.0, str(exc))
            )
    return events, trace.dropped


def validate_trace(
    trace: Union[TraceBuffer, TraceLog, List[TraceEvent]],
    report: Optional[Any] = None,
    require_run_end: bool = True,
) -> TraceValidationReport:
    """Replay ``trace`` and check every invariant.

    Args:
        trace: a live buffer, a parsed JSONL log, or a bare event list.
        report: optional :class:`~repro.telemetry.SimReport` to reconcile
            energy and horizon against.
        require_run_end: demand the end-of-run reconciliation records
            (disable for partial/synthetic traces in unit tests).
    """
    out = TraceValidationReport()
    events, dropped = _sequenced(trace, out)
    out.events_checked = len(events)
    if dropped:
        out.violations.append(
            Violation(
                "truncated",
                -1,
                0.0,
                "{} event(s) were dropped by the bounded buffer; an "
                "incomplete trace cannot be certified".format(dropped),
            )
        )
        return out

    def flag(invariant: str, seq: int, t: float, message: str) -> None:
        out.violations.append(Violation(invariant, seq, t, message))

    hosts: Dict[str, _HostState] = {}
    residency: Dict[str, str] = {}
    open_evacs: Set[str] = set()
    last_evac_end: Dict[str, EvacuationEnd] = {}
    last_decision: Dict[Tuple[str, str], float] = {}
    open_migrations: Dict[str, MigrationStart] = {}
    finished_migrations: Set[str] = set()
    retry_chains: Dict[str, _MigrationChain] = {}
    safe_mode_since: Optional[float] = None
    maintenance_hosts: Set[str] = set()
    host_finals: Dict[str, HostFinal] = {}
    run_end: Optional[RunEnd] = None
    prev_seq: Optional[int] = None
    prev_t: Optional[float] = None
    last_watchdog_t: Optional[float] = None

    for seq, ev in events:
        if prev_seq is not None and seq != prev_seq + 1:
            flag("sequence", seq, ev.t,
                 "sequence jumped from {} to {}".format(prev_seq, seq))
        elif prev_seq is None and seq != 0:
            flag("sequence", seq, ev.t, "trace does not start at seq 0")
        prev_seq = seq
        if prev_t is not None and ev.t < prev_t - 1e-12:
            flag("sequence", seq, ev.t,
                 "time went backwards ({} after {})".format(ev.t, prev_t))
        prev_t = ev.t

        if run_end is not None and not isinstance(ev, (HostFinal, RunEnd)):
            flag("run-end", seq, ev.t,
                 "{} event after run-end".format(ev.event))

        if isinstance(ev, HostInit):
            if ev.host in hosts:
                flag("state-machine", seq, ev.t,
                     "duplicate host-init for {}".format(ev.host))
            hosts[ev.host] = _HostState(ev.state)
        elif isinstance(ev, TransitionStart):
            state = hosts.get(ev.host)
            if state is None:
                flag("state-machine", seq, ev.t,
                     "transition on unknown host {}".format(ev.host))
                hosts[ev.host] = state = _HostState(ev.src)
            if state.open_transition is not None:
                flag("state-machine", seq, ev.t,
                     "{}: transition {}->{} started while {}->{} still "
                     "running".format(ev.host, ev.src, ev.dst,
                                      state.open_transition[1].src,
                                      state.open_transition[1].dst))
                if ev.dst == _ACTIVE and state.open_transition[1].dst == _ACTIVE:
                    flag("wake-exclusivity", seq, ev.t,
                         "{}: second {}->{} wake started while one is "
                         "in flight".format(ev.host, ev.src, ev.dst))
            if ev.src != state.state:
                flag("state-machine", seq, ev.t,
                     "{}: transition claims src {} but tracked state is "
                     "{}".format(ev.host, ev.src, state.state))
            if state.oos:
                flag("repair-reentry", seq, ev.t,
                     "{}: transition while out of service (no host-repaired "
                     "event)".format(ev.host))
            if ev.dst == _ACTIVE:
                if state.state == _ACTIVE:
                    flag("wake-from-active", seq, ev.t,
                         "{}: wake requested while already active".format(ev.host))
                if last_decision.get((ev.host, "wake")) != ev.t:
                    flag("untraced-wake", seq, ev.t,
                         "{}: wake transition without a same-instant wake "
                         "decision".format(ev.host))
                if (
                    state.blacklisted_until is not None
                    and ev.t < state.blacklisted_until - 1e-9
                    and last_decision.get((ev.host, "maintenance-end")) != ev.t
                ):
                    flag("blacklist-hold", seq, ev.t,
                         "{}: woken at t={:.1f} inside blacklist hold-down "
                         "(until t={:.1f})".format(
                             ev.host, ev.t, state.blacklisted_until))
            else:
                if last_decision.get((ev.host, "park")) != ev.t:
                    flag("untraced-park", seq, ev.t,
                         "{}: park transition without a same-instant park "
                         "decision".format(ev.host))
                evac = last_evac_end.get(ev.host)
                if evac is None or evac.outcome != "complete" or evac.t != ev.t:
                    flag("park-after-evacuation", seq, ev.t,
                         "{}: park began without a completed evacuation at "
                         "the same instant".format(ev.host))
                resident = sorted(
                    vm for vm, host in residency.items() if host == ev.host
                )
                if resident:
                    flag("park-occupied", seq, ev.t,
                         "{}: parking with {} resident VM(s): {}".format(
                             ev.host, len(resident), ", ".join(resident[:5])))
            state.open_transition = (seq, ev)
        elif isinstance(ev, TransitionEnd):
            state = hosts.get(ev.host)
            if state is None or state.open_transition is None:
                flag("state-machine", seq, ev.t,
                     "{}: transition-end without a matching start".format(ev.host))
                if state is not None:
                    state.state = ev.state
                continue
            start_seq, start = state.open_transition
            state.open_transition = None
            if (start.src, start.dst) != (ev.src, ev.dst):
                flag("state-machine", seq, ev.t,
                     "{}: transition-end {}->{} does not match start "
                     "{}->{}".format(ev.host, ev.src, ev.dst, start.src, start.dst))
            span = ev.t - start.t
            if abs(span - start.latency_s) > _LATENCY_TOL_S:
                flag("transition-latency", seq, ev.t,
                     "{}: transition took {:.6f}s but sampled latency was "
                     "{:.6f}s (latency must be sampled exactly once)".format(
                         ev.host, span, start.latency_s))
            expected = ev.src if ev.failed else ev.dst
            if ev.state != expected:
                flag("state-machine", seq, ev.t,
                     "{}: transition-end reports state {} but {} transition "
                     "{}->{} implies {}".format(
                         ev.host, ev.state,
                         "failed" if ev.failed else "completed",
                         ev.src, ev.dst, expected))
            if ev.failed and ev.dst == _ACTIVE:
                state.failed_wakes += 1
                if state.pending_permanent:
                    state.oos = True
                    state.oos_t = ev.t
                    state.pending_permanent = False
            elif not ev.failed and ev.dst == _ACTIVE:
                state.reset_retry_history()
            state.state = ev.state
        elif isinstance(ev, FaultInjected):
            state = hosts.get(ev.host)
            if state is None:
                flag("fault-accounting", seq, ev.t,
                     "fault injected on unknown host {}".format(ev.host))
            elif not ev.permanent:
                state.faults += 1
            else:
                state.pending_permanent = True
        elif isinstance(ev, WakeRetry):
            state = hosts.get(ev.host)
            if state is None:
                flag("wake-backoff", seq, ev.t,
                     "wake-retry for unknown host {}".format(ev.host))
            else:
                if ev.attempt < 2:
                    flag("wake-backoff", seq, ev.t,
                         "{}: retry attempt {} implies no prior "
                         "failure".format(ev.host, ev.attempt))
                if state.last_retry_attempt and ev.attempt <= state.last_retry_attempt:
                    flag("wake-backoff", seq, ev.t,
                         "{}: retry attempt did not increase ({} after "
                         "{})".format(ev.host, ev.attempt,
                                      state.last_retry_attempt))
                if ev.backoff_s + 1e-9 < state.last_retry_backoff:
                    flag("wake-backoff", seq, ev.t,
                         "{}: backoff shrank ({:.1f}s after {:.1f}s)".format(
                             ev.host, ev.backoff_s, state.last_retry_backoff))
                if (
                    state.last_failure_t is not None
                    and ev.t < state.last_failure_t + ev.backoff_s - 1e-9
                ):
                    flag("wake-backoff", seq, ev.t,
                         "{}: retried {:.1f}s after failure, inside the "
                         "{:.1f}s backoff window".format(
                             ev.host, ev.t - state.last_failure_t,
                             ev.backoff_s))
                state.last_retry_attempt = ev.attempt
                state.last_retry_backoff = ev.backoff_s
                state.pending_retry_t = ev.t
        elif isinstance(ev, HostBlacklisted):
            state = hosts.get(ev.host)
            if state is None:
                flag("blacklist-hold", seq, ev.t,
                     "blacklist for unknown host {}".format(ev.host))
            else:
                if ev.failures < 1 or ev.until_t <= ev.t:
                    flag("blacklist-hold", seq, ev.t,
                         "{}: malformed blacklist (failures={}, until "
                         "t={:.1f} at t={:.1f})".format(
                             ev.host, ev.failures, ev.until_t, ev.t))
                state.blacklisted_until = ev.until_t
        elif isinstance(ev, HostRepaired):
            state = hosts.get(ev.host)
            if state is None:
                flag("repair-reentry", seq, ev.t,
                     "host-repaired for unknown host {}".format(ev.host))
            elif not state.oos:
                flag("repair-reentry", seq, ev.t,
                     "{}: host-repaired but replay never saw a permanent "
                     "failure".format(ev.host))
            else:
                if abs((ev.t - state.oos_t) - ev.downtime_s) > 1e-6:
                    flag("repair-reentry", seq, ev.t,
                         "{}: repair reports {:.1f}s downtime but replay "
                         "measured {:.1f}s".format(
                             ev.host, ev.downtime_s, ev.t - state.oos_t))
                state.oos = False
                state.blacklisted_until = None
                state.reset_retry_history()
        elif isinstance(ev, Escalation):
            if ev.ticks < 1 or ev.extra_hosts < 1 or ev.shortfall_cores <= 0:
                flag("escalation-payload", seq, ev.t,
                     "malformed escalation (ticks={}, extra_hosts={}, "
                     "shortfall={:.3f})".format(
                         ev.ticks, ev.extra_hosts, ev.shortfall_cores))
            if last_watchdog_t != ev.t:
                flag("escalation-payload", seq, ev.t,
                     "escalation without a same-instant reactive wake")
        elif isinstance(ev, ManagerDecision):
            last_decision[(ev.host, ev.action)] = ev.t
            if ev.action == "wake-failed":
                state = hosts.get(ev.host)
                if state is not None:
                    state.last_failure_t = ev.t
            if ev.action == "wake":
                state = hosts.get(ev.host)
                if state is not None and state.pending_retry_t == ev.t:
                    state.pending_retry_t = None
            if ev.action == "evac-start":
                if ev.host in open_evacs:
                    flag("evacuation-lifecycle", seq, ev.t,
                         "{}: evacuation started twice".format(ev.host))
                open_evacs.add(ev.host)
            if ev.action == "maintenance-start":
                maintenance_hosts.add(ev.host)
            elif ev.action in ("maintenance-end", "maintenance-abort"):
                maintenance_hosts.discard(ev.host)
            if (
                ev.action == "park"
                and safe_mode_since is not None
                and ev.host not in maintenance_hosts
            ):
                flag("safe-mode", seq, ev.t,
                     "{}: park decision inside the safe-mode window opened "
                     "at t={:.1f}".format(ev.host, safe_mode_since))
        elif isinstance(ev, EvacuationEnd):
            if ev.host not in open_evacs:
                flag("evacuation-lifecycle", seq, ev.t,
                     "{}: evacuation-end ({}) without an open "
                     "evacuation".format(ev.host, ev.outcome))
            open_evacs.discard(ev.host)
            last_evac_end[ev.host] = ev
        elif isinstance(ev, EvacuationPlanned):
            pass
        elif isinstance(ev, WatchdogWake):
            last_watchdog_t = ev.t
            if ev.shortfall_cores <= 0:
                flag("watchdog-payload", seq, ev.t,
                     "reactive wake with non-positive shortfall "
                     "({:.3f} cores)".format(ev.shortfall_cores))
        elif isinstance(ev, MigrationStart):
            if ev.migration_id in open_migrations or (
                ev.migration_id in finished_migrations
            ):
                flag("migration-conservation", seq, ev.t,
                     "duplicate migration id {}".format(ev.migration_id))
            open_migrations[ev.migration_id] = ev
            chain = retry_chains.get(ev.vm)
            if chain is not None and chain.last_retry_t != ev.t:
                # A start without a same-instant retry event is a fresh
                # migration (e.g. a later evacuation), not a continuation
                # of the old chain — its attempts count from one again.
                del retry_chains[ev.vm]
        elif isinstance(ev, MigrationEnd):
            start_ev = open_migrations.pop(ev.migration_id, None)
            if start_ev is None:
                flag("migration-conservation", seq, ev.t,
                     "migration-end {} without a start (or ended "
                     "twice)".format(ev.migration_id))
            else:
                finished_migrations.add(ev.migration_id)
                if (start_ev.vm, start_ev.src, start_ev.dst) != (
                    ev.vm, ev.src, ev.dst
                ):
                    flag("migration-conservation", seq, ev.t,
                         "migration {} end ({}:{}->{}) does not match start "
                         "({}:{}->{})".format(
                             ev.migration_id, ev.vm, ev.src, ev.dst,
                             start_ev.vm, start_ev.src, start_ev.dst))
                if not ev.aborted:
                    retry_chains.pop(ev.vm, None)
                    tracked = residency.get(ev.vm)
                    if tracked is not None and tracked != ev.src:
                        flag("residency", seq, ev.t,
                             "{} migrated from {} but was tracked on "
                             "{}".format(ev.vm, ev.src, tracked))
                    if tracked is not None:
                        residency[ev.vm] = ev.dst
        elif isinstance(ev, MigrationFailed):
            start_ev = open_migrations.pop(ev.migration_id, None)
            if start_ev is None:
                flag("migration-conservation", seq, ev.t,
                     "migration-failed {} without a start (or ended "
                     "twice)".format(ev.migration_id))
            else:
                finished_migrations.add(ev.migration_id)
                if (start_ev.vm, start_ev.src, start_ev.dst) != (
                    ev.vm, ev.src, ev.dst
                ):
                    flag("migration-conservation", seq, ev.t,
                         "migration {} failure ({}:{}->{}) does not match "
                         "start ({}:{}->{})".format(
                             ev.migration_id, ev.vm, ev.src, ev.dst,
                             start_ev.vm, start_ev.src, start_ev.dst))
            if not 0.0 < ev.fail_fraction < 1.0:
                flag("migration-rollback", seq, ev.t,
                     "migration {} failed with fail fraction {:.3f} outside "
                     "(0, 1)".format(ev.migration_id, ev.fail_fraction))
            if ev.elapsed_s < 0:
                flag("migration-rollback", seq, ev.t,
                     "migration {} failed with negative elapsed time "
                     "{:.3f}s".format(ev.migration_id, ev.elapsed_s))
            tracked = residency.get(ev.vm)
            if tracked is not None and tracked != ev.src:
                flag("migration-rollback", seq, ev.t,
                     "{} failed migrating from {} but is tracked on {} — "
                     "rollback did not leave the VM on its source".format(
                         ev.vm, ev.src, tracked))
            chain = retry_chains.setdefault(ev.vm, _MigrationChain())
            chain.last_failure_t = ev.t
        elif isinstance(ev, MigrationRetry):
            if ev.attempt < 2:
                flag("migration-retry", seq, ev.t,
                     "{}: retry attempt {} implies no prior failure".format(
                         ev.vm, ev.attempt))
            chain = retry_chains.get(ev.vm)
            if chain is None or chain.last_failure_t is None:
                flag("migration-retry", seq, ev.t,
                     "{}: migration-retry without a prior failed "
                     "migration".format(ev.vm))
                chain = retry_chains.setdefault(ev.vm, _MigrationChain())
            else:
                if chain.last_attempt and ev.attempt <= chain.last_attempt:
                    flag("migration-retry", seq, ev.t,
                         "{}: retry attempt did not increase ({} after "
                         "{})".format(ev.vm, ev.attempt, chain.last_attempt))
                if ev.backoff_s + 1e-9 < chain.last_backoff:
                    flag("migration-retry", seq, ev.t,
                         "{}: backoff shrank ({:.1f}s after {:.1f}s)".format(
                             ev.vm, ev.backoff_s, chain.last_backoff))
                if ev.t < chain.last_failure_t + ev.backoff_s - 1e-9:
                    flag("migration-retry", seq, ev.t,
                         "{}: retried {:.1f}s after failure, inside the "
                         "{:.1f}s backoff window".format(
                             ev.vm, ev.t - chain.last_failure_t,
                             ev.backoff_s))
            chain.last_attempt = ev.attempt
            chain.last_backoff = ev.backoff_s
            chain.last_retry_t = ev.t
        elif isinstance(ev, SafeModeEnter):
            if safe_mode_since is not None:
                flag("safe-mode", seq, ev.t,
                     "safe-mode-enter at t={:.1f} while already in safe "
                     "mode since t={:.1f}".format(ev.t, safe_mode_since))
            if ev.reason not in ("migration-failures", "telemetry-stale"):
                flag("safe-mode", seq, ev.t,
                     "unknown safe-mode reason {!r}".format(ev.reason))
            if not 0.0 <= ev.failure_rate <= 1.0 or ev.telemetry_age_s < 0:
                flag("safe-mode", seq, ev.t,
                     "malformed safe-mode payload (rate={:.3f}, "
                     "age={:.1f}s)".format(ev.failure_rate,
                                           ev.telemetry_age_s))
            safe_mode_since = ev.t
        elif isinstance(ev, SafeModeExit):
            if safe_mode_since is None:
                flag("safe-mode", seq, ev.t,
                     "safe-mode-exit without a matching enter")
            elif abs((ev.t - safe_mode_since) - ev.dwell_s) > 1e-6:
                flag("safe-mode", seq, ev.t,
                     "safe-mode-exit reports {:.1f}s dwell but the window "
                     "opened {:.1f}s ago".format(
                         ev.dwell_s, ev.t - safe_mode_since))
            safe_mode_since = None
        elif isinstance(ev, AdmissionEvent):
            if ev.action in _PLACING_ACTIONS:
                if residency.get(ev.vm) is not None:
                    flag("residency", seq, ev.t,
                         "{} placed on {} but already tracked on {}".format(
                             ev.vm, ev.host, residency[ev.vm]))
                if not ev.host:
                    flag("residency", seq, ev.t,
                         "{}: placement without a host".format(ev.vm))
                residency[ev.vm] = ev.host
        elif isinstance(ev, VmRetired):
            tracked = residency.pop(ev.vm, None)
            if ev.host and tracked is None:
                flag("residency", seq, ev.t,
                     "{} retired from {} but was not tracked as "
                     "placed".format(ev.vm, ev.host))
            elif ev.host and tracked != ev.host:
                flag("residency", seq, ev.t,
                     "{} retired from {} but was tracked on {}".format(
                         ev.vm, ev.host, tracked))
        elif isinstance(ev, HostFinal):
            state = hosts.get(ev.host)
            if state is None:
                flag("run-end", seq, ev.t,
                     "host-final for unknown host {}".format(ev.host))
                continue
            if state.finalized:
                flag("run-end", seq, ev.t,
                     "duplicate host-final for {}".format(ev.host))
            state.finalized = True
            host_finals[ev.host] = ev
            if ev.state != state.state:
                flag("state-machine", seq, ev.t,
                     "{}: host-final state {} but replay tracked {}".format(
                         ev.host, ev.state, state.state))
            if ev.out_of_service != state.oos:
                flag("fault-accounting", seq, ev.t,
                     "{}: host-final out_of_service={} but replay tracked "
                     "{}".format(ev.host, ev.out_of_service, state.oos))
        elif isinstance(ev, RunEnd):
            if run_end is not None:
                flag("run-end", seq, ev.t, "duplicate run-end")
            run_end = ev

    out.hosts_seen = len(hosts)
    final_seq = prev_seq if prev_seq is not None else -1
    final_t = prev_t if prev_t is not None else 0.0

    # -- per-host fault accounting (open wakes at horizon are excusable) --
    for name in sorted(hosts):
        state = hosts[name]
        slack = 0
        if state.open_transition is not None:
            _, open_start = state.open_transition
            if open_start.dst == _ACTIVE:
                slack = 1
        gap = state.faults - state.failed_wakes
        if gap < 0 or gap > slack:
            flag("fault-accounting", final_seq, final_t,
                 "{}: {} injected wake fault(s) but {} failed wake "
                 "transition(s)".format(name, state.faults, state.failed_wakes))
        if state.pending_retry_t is not None:
            flag("wake-backoff", final_seq, final_t,
                 "{}: wake-retry at t={:.1f} without a same-instant wake "
                 "decision".format(name, state.pending_retry_t))

    # -- end-of-run reconciliation ---------------------------------------
    if run_end is None:
        if require_run_end:
            flag("run-end", final_seq, final_t, "trace has no run-end record")
        return out

    if run_end.hosts != len(hosts):
        flag("run-end", final_seq, final_t,
             "run-end reports {} host(s) but trace initialized {}".format(
                 run_end.hosts, len(hosts)))
    unfinalized = sorted(n for n, s in hosts.items() if not s.finalized)
    if unfinalized:
        flag("run-end", final_seq, final_t,
             "missing host-final for: {}".format(", ".join(unfinalized)))

    if len(residency) != run_end.vms:
        flag("residency", final_seq, final_t,
             "run-end reports {} resident VM(s) but replay tracked "
             "{}".format(run_end.vms, len(residency)))

    unmatched = len(open_migrations)
    if unmatched != run_end.migrations_unfinished:
        flag("migration-conservation", final_seq, final_t,
             "{} migration start(s) without finish/abort, but run-end "
             "reports {} in flight".format(
                 unmatched, run_end.migrations_unfinished))

    if host_finals and len(host_finals) == len(hosts):
        total_kwh = math.fsum(f.energy_j for f in host_finals.values()) / 3.6e6
        if not math.isclose(
            total_kwh, run_end.energy_kwh,
            rel_tol=_ENERGY_REL_TOL, abs_tol=1e-9,
        ):
            flag("energy", final_seq, final_t,
                 "per-host trace energy sums to {:.9f} kWh but run-end "
                 "reports {:.9f} kWh".format(total_kwh, run_end.energy_kwh))
    if report is not None:
        if not math.isclose(
            run_end.energy_kwh, report.energy_kwh,
            rel_tol=_ENERGY_REL_TOL, abs_tol=1e-9,
        ):
            flag("energy", final_seq, final_t,
                 "trace energy {:.9f} kWh does not reconcile with "
                 "SimReport energy {:.9f} kWh".format(
                     run_end.energy_kwh, report.energy_kwh))
        if not math.isclose(run_end.horizon_s, report.horizon_s,
                            rel_tol=1e-12, abs_tol=1e-9):
            flag("run-end", final_seq, final_t,
                 "trace horizon {} does not match SimReport horizon "
                 "{}".format(run_end.horizon_s, report.horizon_s))
    return out
