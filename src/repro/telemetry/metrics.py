"""End-of-run report: the numbers every experiment table is built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.datacenter.cluster import Cluster
from repro.migration.engine import MigrationEngine
from repro.telemetry.sampler import ClusterSampler


@dataclass
class SimReport:
    """Summary of one simulated management run."""

    policy: str
    horizon_s: float
    energy_kwh: float
    mean_power_w: float
    peak_power_w: float
    mean_demand_cores: float
    mean_active_hosts: float
    violation_fraction: float
    violation_time_fraction: float
    migrations: int
    migrations_aborted: int
    migrations_per_hour: float
    migration_downtime_s: float
    park_transitions: int
    wake_transitions: int
    transitions_per_host_per_day: float
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready flat dict (extra metrics inlined under ``extra.``)."""
        payload: Dict[str, object] = {
            "policy": self.policy,
            "horizon_s": self.horizon_s,
            "energy_kwh": self.energy_kwh,
            "mean_power_w": self.mean_power_w,
            "peak_power_w": self.peak_power_w,
            "mean_demand_cores": self.mean_demand_cores,
            "mean_active_hosts": self.mean_active_hosts,
            "violation_fraction": self.violation_fraction,
            "violation_time_fraction": self.violation_time_fraction,
            "migrations": self.migrations,
            "migrations_aborted": self.migrations_aborted,
            "migrations_per_hour": self.migrations_per_hour,
            "migration_downtime_s": self.migration_downtime_s,
            "park_transitions": self.park_transitions,
            "wake_transitions": self.wake_transitions,
            "transitions_per_host_per_day": self.transitions_per_host_per_day,
        }
        for key, value in self.extra.items():
            payload["extra.{}".format(key)] = value
        return payload

    def normalized_energy(self, baseline_kwh: float) -> float:
        """Energy relative to a baseline run (1.0 = no savings)."""
        if baseline_kwh <= 0:
            raise ValueError("baseline energy must be positive")
        return self.energy_kwh / baseline_kwh

    def row(self) -> str:
        """One formatted table row (see ``header()``)."""
        return (
            "{:<14} {:>10.2f} {:>10.1f} {:>8.4f} {:>8.4f} "
            "{:>7d} {:>8.2f} {:>7d} {:>7d}"
        ).format(
            self.policy,
            self.energy_kwh,
            self.mean_active_hosts,
            self.violation_fraction,
            self.violation_time_fraction,
            self.migrations,
            self.migrations_per_hour,
            self.park_transitions,
            self.wake_transitions,
        )

    @staticmethod
    def header() -> str:
        return (
            "{:<14} {:>10} {:>10} {:>8} {:>8} {:>7} {:>8} {:>7} {:>7}"
        ).format(
            "policy",
            "kWh",
            "hosts",
            "viol",
            "violT",
            "migs",
            "migs/h",
            "parks",
            "wakes",
        )


def build_report(
    policy: str,
    cluster: Cluster,
    sampler: ClusterSampler,
    engine: Optional[MigrationEngine] = None,
    horizon_s: Optional[float] = None,
) -> SimReport:
    """Assemble a :class:`SimReport` from a finished run's artifacts."""
    span = horizon_s if horizon_s is not None else cluster.env.now
    if span <= 0:
        raise ValueError("horizon must be positive")
    power = sampler.series["power_w"]
    parks = 0
    wakes = 0
    for host in cluster.hosts:
        for (src, dst), count in host.machine.transition_counts.items():
            if dst.is_parked:
                parks += count
            else:
                wakes += count
    migrations = engine.completed if engine else 0
    aborted = engine.aborted if engine else 0
    downtime = engine.total_downtime_s() if engine else 0.0
    days = span / 86_400.0
    return SimReport(
        policy=policy,
        horizon_s=span,
        energy_kwh=cluster.energy_j() / 3.6e6,
        mean_power_w=power.mean() if len(power) else 0.0,
        peak_power_w=power.max() if len(power) else 0.0,
        mean_demand_cores=sampler.series["demand_cores"].mean()
        if len(sampler.series["demand_cores"])
        else 0.0,
        mean_active_hosts=sampler.series["active_hosts"].mean()
        if len(sampler.series["active_hosts"])
        else 0.0,
        violation_fraction=sampler.violation_fraction,
        violation_time_fraction=sampler.violation_time_fraction,
        migrations=migrations,
        migrations_aborted=aborted,
        migrations_per_hour=migrations / (span / 3600.0),
        migration_downtime_s=downtime,
        park_transitions=parks,
        wake_transitions=wakes,
        transitions_per_host_per_day=(parks + wakes) / max(len(cluster.hosts), 1) / days
        if days > 0
        else 0.0,
    )
