"""Measurement-campaign harness over the prototype power profiles.

Regenerates, from the calibrated profiles, the three prototype-level
results the paper builds its case on:

* the state-characterization table (T1),
* the break-even idle-interval analysis (F2), and
* a single-host suspend/resume power timeline (F3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.power.machine import HostPowerStateMachine
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState
from repro.sim import Environment


@dataclass(frozen=True)
class StateCharacterization:
    """One row of the T1 characterization table."""

    state: PowerState
    stable_power_w: float
    entry_latency_s: float
    exit_latency_s: float
    round_trip_energy_j: float
    breakeven_idle_s: float

    def savings_vs_idle(self, idle_w: float) -> float:
        """Fraction of active-idle power saved while resting in the state."""
        if idle_w <= 0:
            raise ValueError("idle_w must be positive")
        return 1.0 - self.stable_power_w / idle_w


def characterization_table(profile: ServerPowerProfile) -> List[StateCharacterization]:
    """Rows for every parked state reachable from ACTIVE, fastest-exit first."""
    rows = []
    for state in profile.park_states():
        enter = profile.transition(PowerState.ACTIVE, state)
        leave = profile.transition(state, PowerState.ACTIVE)
        rows.append(
            StateCharacterization(
                state=state,
                stable_power_w=profile.stable_power(state),
                entry_latency_s=enter.latency_s,
                exit_latency_s=leave.latency_s,
                round_trip_energy_j=enter.energy_j + leave.energy_j,
                breakeven_idle_s=profile.breakeven_idle_s(state),
            )
        )
    return rows


def format_characterization_table(profile: ServerPowerProfile) -> str:
    """Human-readable T1 table, printed by the bench harness."""
    lines = [
        "T1: power-state characterization ({})".format(profile.name),
        "{:<10} {:>9} {:>9} {:>9} {:>11} {:>11}".format(
            "state", "power[W]", "entry[s]", "exit[s]", "rt-E[J]", "brkeven[s]"
        ),
        "{:<10} {:>9.1f} {:>9} {:>9} {:>11} {:>11}".format(
            "active", profile.idle_w, "-", "-", "-", "-"
        ),
    ]
    for row in characterization_table(profile):
        lines.append(
            "{:<10} {:>9.1f} {:>9.1f} {:>9.1f} {:>11.1f} {:>11.1f}".format(
                row.state.value,
                row.stable_power_w,
                row.entry_latency_s,
                row.exit_latency_s,
                row.round_trip_energy_j,
                row.breakeven_idle_s,
            )
        )
    return "\n".join(lines)


def energy_during_gap(
    profile: ServerPowerProfile, state: PowerState, gap_s: float
) -> float:
    """Joules consumed over an idle gap of ``gap_s`` when parking in ``state``.

    The host enters the state at the start of the gap and exits so as to be
    ACTIVE again at (or as soon after as possible) the end.  For gaps
    shorter than the round-trip latency the transitions still run to
    completion, so their full energy is charged (the host additionally
    overshoots the gap — availability cost is handled by the management
    experiments, not here).
    """
    if gap_s < 0:
        raise ValueError("gap must be non-negative")
    enter = profile.transition(PowerState.ACTIVE, state)
    leave = profile.transition(state, PowerState.ACTIVE)
    dwell = max(0.0, gap_s - enter.latency_s - leave.latency_s)
    return enter.energy_j + leave.energy_j + profile.stable_power(state) * dwell


def breakeven_curve(
    profile: ServerPowerProfile,
    gaps_s: Sequence[float],
    states: Iterable[PowerState] = (),
) -> Dict[str, List[Tuple[float, float]]]:
    """F2 series: normalized energy of each park strategy vs. idle-gap length.

    Returns, per strategy name, points ``(gap_s, energy / idle_energy)``:
    values below 1.0 mean the strategy saves energy over staying
    active-idle for the whole gap.  The crossing of 1.0 is the break-even
    interval — the headline contrast between S3 and S5.
    """
    chosen = list(states) or profile.park_states()
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for state in chosen:
        series = []
        for gap in gaps_s:
            if gap <= 0:
                raise ValueError("gaps must be positive")
            idle_energy = profile.idle_w * gap
            series.append((gap, energy_during_gap(profile, state, gap) / idle_energy))
        curves[state.value] = series
    return curves


def replay_idle_window(
    profile: ServerPowerProfile,
    park_state: PowerState,
    busy_before_s: float = 300.0,
    idle_gap_s: float = 600.0,
    busy_after_s: float = 300.0,
    busy_utilization: float = 0.6,
) -> Dict[str, object]:
    """F3: run one host through busy → idle(park) → busy and trace power.

    A miniature end-to-end exercise of the state machine: the host serves
    load, the gap opens, the controller parks it, and a wake is issued in
    time for the next busy phase (resume latency permitting).

    Returns a dict with the power ``trace`` ((time, watts) change points),
    total ``energy_j``, the ``energy_j_always_on`` counterfactual, and
    ``late_s`` — how far past the end of the gap the host became ACTIVE
    (0 for a well-timed wake; positive values show wake-latency exposure).
    """
    env = Environment()
    machine = HostPowerStateMachine(env, profile, record_trace=True)
    exit_latency = profile.transition(park_state, PowerState.ACTIVE).latency_s
    wake_at = max(busy_before_s, busy_before_s + idle_gap_s - exit_latency)
    active_again_at = {"time": None}

    def driver(env):
        machine.set_utilization(busy_utilization)
        yield env.timeout(busy_before_s)
        machine.set_utilization(0.0)
        yield env.process(machine.transition_to(park_state))
        # Sleep until the scheduled wake point (suspend latency may already
        # have eaten into the gap).
        remaining = wake_at - env.now
        if remaining > 0:
            yield env.timeout(remaining)
        yield env.process(machine.transition_to(PowerState.ACTIVE))
        active_again_at["time"] = env.now
        # Wait out the rest of the gap if we woke early, then serve load.
        gap_end = busy_before_s + idle_gap_s
        if env.now < gap_end:
            yield env.timeout(gap_end - env.now)
        machine.set_utilization(busy_utilization)
        yield env.timeout(busy_after_s)
        machine.set_utilization(0.0)

    driver_proc = env.process(driver(env))
    horizon = busy_before_s + idle_gap_s + busy_after_s
    energy_at_horizon = {}

    def probe(env):
        yield env.timeout(horizon)
        energy_at_horizon["value"] = machine.energy_j()

    env.process(probe(env))
    env.run(until=driver_proc)

    always_on = (
        profile.active_model.power_at(busy_utilization) * (busy_before_s + busy_after_s)
        + profile.idle_w * idle_gap_s
    )
    gap_end = busy_before_s + idle_gap_s
    late = max(0.0, (active_again_at["time"] or gap_end) - gap_end)
    return {
        "trace": machine.meter.trace,
        "energy_j": energy_at_horizon.get("value", machine.energy_j()),
        "energy_j_always_on": always_on,
        "late_s": late,
        "transitions": dict(machine.transition_counts),
    }
