"""Calibration constants for the prototype-server power profiles.

Two profiles are defined:

* ``PROTOTYPE_BLADE`` — the paper's proposal: firmware exposes the full set
  of low-latency states (S3 sleep in addition to S4/S5).
* ``LEGACY_BLADE`` — a traditional enterprise server where the only
  park option is a full shutdown/boot cycle (S5).

The absolute numbers are synthetic but chosen to preserve the ratios the
paper's argument rests on:

==============  ========  ===============  ===============
state           watts     entry latency    exit latency
==============  ========  ===============  ===============
ACTIVE idle     155.0     —                —
ACTIVE peak     315.0     —                —
S3 sleep        11.5      8 s              12 s
S4 hibernate    8.0       30 s             50 s
S5 off          5.5       45 s             185 s (boot)
==============  ========  ===============  ===============

i.e. idle ≈ 49 % of peak (motivating host-level parking), S3 saves ~93 %
of idle power with a ~20 s round trip, while S5's round trip is ~230 s —
an order of magnitude slower, which is exactly the gap the management
experiments exercise.
"""

from __future__ import annotations

from repro.power.models import specpower_like_model
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState, TransitionSpec

#: ACTIVE-state endpoints shared by both profiles.
ACTIVE_IDLE_W = 155.0
ACTIVE_PEAK_W = 315.0

#: Stable parked-state draws (watts).
SLEEP_W = 11.5
HIBERNATE_W = 8.0
OFF_W = 5.5

#: Transition specs: (latency seconds, average watts during transition).
SUSPEND_SPEC = TransitionSpec(latency_s=8.0, power_w=140.0)
RESUME_SPEC = TransitionSpec(latency_s=12.0, power_w=180.0)
HIBERNATE_SPEC = TransitionSpec(latency_s=30.0, power_w=150.0)
DEHIBERNATE_SPEC = TransitionSpec(latency_s=50.0, power_w=200.0)
SHUTDOWN_SPEC = TransitionSpec(latency_s=45.0, power_w=120.0)
BOOT_SPEC = TransitionSpec(latency_s=185.0, power_w=230.0)


def make_prototype_blade_profile(
    idle_w: float = ACTIVE_IDLE_W,
    peak_w: float = ACTIVE_PEAK_W,
    resume_latency_s: float = RESUME_SPEC.latency_s,
    latency_jitter: float = 0.0,
) -> ServerPowerProfile:
    """Build the low-latency-capable profile.

    ``resume_latency_s`` is exposed as a knob because the latency-
    sensitivity experiment (F9) sweeps it.  ``latency_jitter`` (a fraction
    of each transition's nominal latency, 0–1) turns every latency into a
    per-transition uniform draw — the run-to-run variation real firmware
    shows, especially on resume/boot.
    """
    if not 0.0 <= latency_jitter <= 1.0:
        raise ValueError("latency_jitter must be in [0, 1]")

    def jittered(spec: TransitionSpec) -> TransitionSpec:
        if latency_jitter <= 0.0:
            return spec
        return TransitionSpec(
            latency_s=spec.latency_s,
            power_w=spec.power_w,
            jitter_s=spec.latency_s * latency_jitter,
        )

    resume = jittered(
        TransitionSpec(latency_s=resume_latency_s, power_w=RESUME_SPEC.power_w)
    )
    return ServerPowerProfile(
        name="prototype-blade",
        active_model=specpower_like_model(idle_w=idle_w, peak_w=peak_w),
        parked_power_w={
            PowerState.SLEEP: SLEEP_W,
            PowerState.HIBERNATE: HIBERNATE_W,
            PowerState.OFF: OFF_W,
        },
        transitions={
            (PowerState.ACTIVE, PowerState.SLEEP): jittered(SUSPEND_SPEC),
            (PowerState.SLEEP, PowerState.ACTIVE): resume,
            (PowerState.ACTIVE, PowerState.HIBERNATE): jittered(HIBERNATE_SPEC),
            (PowerState.HIBERNATE, PowerState.ACTIVE): jittered(DEHIBERNATE_SPEC),
            (PowerState.ACTIVE, PowerState.OFF): jittered(SHUTDOWN_SPEC),
            (PowerState.OFF, PowerState.ACTIVE): jittered(BOOT_SPEC),
        },
    )


def make_legacy_blade_profile(
    idle_w: float = ACTIVE_IDLE_W,
    peak_w: float = ACTIVE_PEAK_W,
) -> ServerPowerProfile:
    """Build the traditional profile: the only park option is S5 off."""
    return ServerPowerProfile(
        name="legacy-blade",
        active_model=specpower_like_model(idle_w=idle_w, peak_w=peak_w),
        parked_power_w={PowerState.OFF: OFF_W},
        transitions={
            (PowerState.ACTIVE, PowerState.OFF): SHUTDOWN_SPEC,
            (PowerState.OFF, PowerState.ACTIVE): BOOT_SPEC,
        },
    )


#: Shared default instances (treat as immutable).
PROTOTYPE_BLADE = make_prototype_blade_profile()
LEGACY_BLADE = make_legacy_blade_profile()
