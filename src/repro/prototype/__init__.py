"""Calibrated stand-in for the paper's hardware prototype.

The paper characterizes low-latency power states (ACPI S3) on real IBM
BladeCenter-class servers and compares them with traditional states
(S4 hibernate, S5 soft-off).  We cannot run that hardware here, so this
package provides:

* :mod:`~repro.prototype.calibration` — power/latency numbers synthesized to
  match the qualitative envelope of 2012-era published measurements
  (idle ≈ half of peak; S3 at a few watts with seconds-scale exit; S5 at
  BMC-only draw with minutes-scale boot);
* :mod:`~repro.prototype.characterize` — the measurement campaign that
  regenerates the characterization table (T1), the break-even analysis (F2)
  and the single-host suspend/resume timeline (F3).

Every number is a *model input*, not a claim about any specific machine;
see DESIGN.md's substitution table.
"""

from repro.prototype.calibration import (
    LEGACY_BLADE,
    PROTOTYPE_BLADE,
    make_legacy_blade_profile,
    make_prototype_blade_profile,
)
from repro.prototype.characterize import (
    StateCharacterization,
    breakeven_curve,
    characterization_table,
    energy_during_gap,
    format_characterization_table,
    replay_idle_window,
)

__all__ = [
    "LEGACY_BLADE",
    "PROTOTYPE_BLADE",
    "StateCharacterization",
    "breakeven_curve",
    "characterization_table",
    "energy_during_gap",
    "format_characterization_table",
    "make_legacy_blade_profile",
    "make_prototype_blade_profile",
    "replay_idle_window",
]
