"""DVFS (P-state) modelling.

The complementary knob to host-level parking: scale a running host's
frequency/voltage down when it is underutilized.  Included so the
experiments can quantify the paper's implicit comparison — DVFS alone
cannot approach energy proportionality on servers whose idle power is
half of peak, because it only shrinks the *dynamic* share of power.

Model: at relative frequency ``f`` (fraction of nominal), the host's
compute capacity scales by ``f`` and the *dynamic* power component scales
by ``static_fraction + (1 - static_fraction) * f**exponent`` (voltage
scales with frequency, so dynamic power is super-linear in ``f``; the
static fraction covers leakage and non-core components that do not
scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DvfsModel:
    """P-state table plus the dynamic-power scaling law.

    Attributes:
        levels: available relative frequencies, ascending, ending at 1.0.
        static_fraction: share of dynamic-range power that does not scale
            with frequency (uncore, memory, fans riding on utilization).
        exponent: frequency exponent of the scalable share (~2–3 for
            combined voltage-frequency scaling).
    """

    levels: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    static_fraction: float = 0.35
    exponent: float = 2.2

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("need at least one P-state level")
        if list(self.levels) != sorted(self.levels):
            raise ValueError("levels must be ascending")
        if self.levels[-1] != 1.0:
            raise ValueError("highest level must be 1.0 (nominal)")
        if self.levels[0] <= 0.0:
            raise ValueError("levels must be positive")
        if not 0.0 <= self.static_fraction <= 1.0:
            raise ValueError("static_fraction must be in [0, 1]")
        if self.exponent < 1.0:
            raise ValueError("exponent must be >= 1")

    def power_scale(self, frequency: float) -> float:
        """Multiplier on the dynamic power component at ``frequency``."""
        if not 0.0 < frequency <= 1.0:
            raise ValueError("frequency must be in (0, 1]")
        return self.static_fraction + (1.0 - self.static_fraction) * (
            frequency ** self.exponent
        )

    def level_for(self, load_fraction: float, target: float = 0.8) -> float:
        """Lowest P-state whose scaled capacity keeps load under ``target``.

        ``load_fraction`` is demand / nominal capacity.  Returns 1.0 when
        even the nominal frequency cannot meet the target (the governor
        never throttles an overloaded host further).
        """
        if load_fraction < 0:
            raise ValueError("load_fraction must be non-negative")
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        for level in self.levels:
            if load_fraction <= target * level:
                return level
        return self.levels[-1]
