"""Server power states, power models, and energy accounting.

This package captures the physical-layer behaviour the paper's management
layer exploits: stable ACPI-style power states with very different draw,
transitions between them with real latency and energy cost, and
utilization-dependent active power.
"""

from repro.power.states import (
    IllegalTransition,
    PowerState,
    TransitionSpec,
    TRANSITIONAL_POWER_FALLBACK,
)
from repro.power.models import (
    LinearPowerModel,
    PiecewisePowerModel,
    PowerModel,
    specpower_like_model,
)
from repro.power.profiles import ServerPowerProfile
from repro.power.energy import EnergyMeter
from repro.power.machine import HostPowerStateMachine
from repro.power.dvfs import DvfsModel

__all__ = [
    "DvfsModel",
    "EnergyMeter",
    "HostPowerStateMachine",
    "IllegalTransition",
    "LinearPowerModel",
    "PiecewisePowerModel",
    "PowerModel",
    "PowerState",
    "ServerPowerProfile",
    "TransitionSpec",
    "TRANSITIONAL_POWER_FALLBACK",
    "specpower_like_model",
]
