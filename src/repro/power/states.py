"""ACPI-style server power states and transition specifications."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class PowerState(enum.Enum):
    """Stable server power states.

    Mirrors the ACPI sleep states the paper characterizes on its prototype:

    * ``ACTIVE``    — S0; utilization-dependent power.
    * ``SLEEP``     — S3 suspend-to-RAM; the *low-latency* state the paper
      champions: seconds-scale exit latency at a few watts.
    * ``HIBERNATE`` — S4 suspend-to-disk; lower power than S3 on machines
      where RAM refresh dominates, but tens-of-seconds exit.
    * ``OFF``       — S5 soft-off; the traditional consolidation target,
      minutes-scale exit (full boot).
    """

    ACTIVE = "active"
    SLEEP = "sleep"
    HIBERNATE = "hibernate"
    OFF = "off"

    @property
    def is_parked(self) -> bool:
        """True for any state in which the host cannot run VMs."""
        return self is not PowerState.ACTIVE


#: Watts assumed while in a transition whose spec omits power.
TRANSITIONAL_POWER_FALLBACK = 150.0


class IllegalTransition(RuntimeError):
    """Raised when a transition not present in the profile is requested."""

    def __init__(self, src: PowerState, dst: PowerState) -> None:
        super().__init__("no transition {} -> {}".format(src.value, dst.value))
        self.src = src
        self.dst = dst


@dataclass(frozen=True)
class TransitionSpec:
    """Cost of moving between two stable power states.

    Attributes:
        latency_s: nominal wall-clock seconds the transition takes; the
            host is unavailable for the whole interval.
        power_w: average draw during the transition (nominal transition
            energy is therefore ``latency_s * power_w`` joules).
        jitter_s: half-width of uniform latency jitter.  Real suspend and
            especially resume/boot latencies vary run to run; a machine
            given an RNG samples ``latency_s ± jitter_s`` per transition.
    """

    latency_s: float
    power_w: float
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.power_w < 0:
            raise ValueError("power_w must be >= 0")
        if not 0.0 <= self.jitter_s <= self.latency_s:
            raise ValueError("jitter_s must be in [0, latency_s]")

    @property
    def energy_j(self) -> float:
        """Nominal energy consumed by one transition, in joules."""
        return self.latency_s * self.power_w

    def sample_latency_s(self, rng=None) -> float:
        """Latency for one concrete transition (nominal if no RNG/jitter)."""
        if rng is None or self.jitter_s <= 0.0:
            return self.latency_s
        return self.latency_s + float(rng.uniform(-self.jitter_s, self.jitter_s))


TransitionTable = Dict[Tuple[PowerState, PowerState], TransitionSpec]


def validate_transition_table(table: TransitionTable) -> None:
    """Check structural sanity of a transition table.

    Every parked state reachable from ACTIVE must also offer a way back,
    otherwise the management layer could strand capacity permanently.
    """
    for (src, dst), spec in table.items():
        if not isinstance(spec, TransitionSpec):
            raise TypeError("transition {}->{} has non-spec value".format(src, dst))
        if src is dst:
            raise ValueError("self-transition {}->{} is meaningless".format(src, dst))
    for (src, dst) in table:
        if src is PowerState.ACTIVE and (dst, PowerState.ACTIVE) not in table:
            raise ValueError(
                "state {} reachable from ACTIVE but has no exit path".format(dst.value)
            )
