"""Server power profiles: stable-state draws plus the transition table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.power.models import PowerModel
from repro.power.states import (
    IllegalTransition,
    PowerState,
    TransitionSpec,
    TransitionTable,
    validate_transition_table,
)


@dataclass
class ServerPowerProfile:
    """Everything needed to compute a host's power draw at any instant.

    Attributes:
        name: human-readable profile label.
        active_model: utilization→watts model used while ``ACTIVE``.
        parked_power_w: draw of each stable parked state, in watts.
        transitions: latency/power specs for every legal transition.
    """

    name: str
    active_model: PowerModel
    parked_power_w: Dict[PowerState, float]
    transitions: TransitionTable = field(default_factory=dict)

    def __post_init__(self) -> None:
        if PowerState.ACTIVE in self.parked_power_w:
            raise ValueError("ACTIVE power comes from active_model, not the table")
        for state, watts in self.parked_power_w.items():
            if watts < 0:
                raise ValueError("negative parked power for {}".format(state))
        validate_transition_table(self.transitions)
        for (src, dst) in self.transitions:
            for state in (src, dst):
                if state is not PowerState.ACTIVE and state not in self.parked_power_w:
                    raise ValueError(
                        "transition references state {} with no parked power".format(
                            state.value
                        )
                    )

    @property
    def idle_w(self) -> float:
        return self.active_model.idle_w

    @property
    def peak_w(self) -> float:
        return self.active_model.peak_w

    def stable_power(self, state: PowerState, utilization: float = 0.0) -> float:
        """Watts drawn while resting in ``state``."""
        if state is PowerState.ACTIVE:
            return self.active_model.power_at(utilization)
        try:
            return self.parked_power_w[state]
        except KeyError:
            raise ValueError(
                "profile {!r} does not define state {}".format(self.name, state.value)
            ) from None

    def transition(self, src: PowerState, dst: PowerState) -> TransitionSpec:
        """The spec for moving ``src`` → ``dst``; raises if illegal."""
        try:
            return self.transitions[(src, dst)]
        except KeyError:
            raise IllegalTransition(src, dst) from None

    def can_transition(self, src: PowerState, dst: PowerState) -> bool:
        return (src, dst) in self.transitions

    def park_states(self) -> List[PowerState]:
        """Parked states directly reachable from ACTIVE, cheapest-exit first."""
        reachable = [
            dst
            for (src, dst) in self.transitions
            if src is PowerState.ACTIVE and dst.is_parked
        ]
        reachable.sort(key=lambda s: self.transition(s, PowerState.ACTIVE).latency_s)
        return reachable

    def round_trip(self, state: PowerState) -> Tuple[float, float]:
        """(total latency, total energy) of ACTIVE → ``state`` → ACTIVE."""
        enter = self.transition(PowerState.ACTIVE, state)
        leave = self.transition(state, PowerState.ACTIVE)
        return (
            enter.latency_s + leave.latency_s,
            enter.energy_j + leave.energy_j,
        )

    def breakeven_idle_s(self, state: PowerState) -> float:
        """Shortest idle gap for which parking in ``state`` saves energy.

        Solves ``idle_w * T >= E_rt + parked_w * (T - L_rt)`` for T, i.e.
        the idle duration beyond which round-tripping through the parked
        state beats staying active-idle.  Returns ``inf`` if parking never
        pays off (parked draw >= idle draw).
        """
        parked_w = self.stable_power(state)
        idle_w = self.idle_w
        if parked_w >= idle_w:
            return float("inf")
        latency, energy = self.round_trip(state)
        # During the transition window the host burns `energy` joules; while
        # parked it draws parked_w. Break-even T satisfies:
        #   idle_w * T = energy + parked_w * max(T - latency, 0)
        t = (energy - parked_w * latency) / (idle_w - parked_w)
        return max(t, latency)
