"""Piecewise-constant power integration."""

from __future__ import annotations

from typing import List, Optional, Tuple


class EnergyMeter:
    """Integrates a piecewise-constant power signal over simulated time.

    The owner calls :meth:`set_power` whenever draw changes (state change,
    utilization step).  Energy is accumulated lazily, so frequent reads are
    cheap and updates are O(1).
    """

    def __init__(self, now: float = 0.0, power_w: float = 0.0, record: bool = False) -> None:
        if power_w < 0:
            raise ValueError("power must be non-negative")
        self._last_time = now
        self._power_w = power_w
        self._energy_j = 0.0
        self._trace: Optional[List[Tuple[float, float]]] = [] if record else None
        if record:
            self._trace.append((now, power_w))

    @property
    def power_w(self) -> float:
        """Current instantaneous draw in watts."""
        return self._power_w

    def set_power(self, now: float, power_w: float) -> None:
        """Change the draw to ``power_w`` effective at time ``now``."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        self._accumulate(now)
        self._power_w = power_w
        # Exact != is intentional: this dedups change-points recorded with
        # the *same* float, not quantities from independent arithmetic.
        if self._trace is not None and (
            not self._trace or self._trace[-1][1] != power_w  # reprolint: disable=RL004
        ):
            self._trace.append((now, power_w))

    def energy_j(self, now: float) -> float:
        """Total joules consumed through time ``now``."""
        self._accumulate(now)
        return self._energy_j

    def energy_kwh(self, now: float) -> float:
        return self.energy_j(now) / 3.6e6

    @property
    def trace(self) -> List[Tuple[float, float]]:
        """(time, watts) change points, if recording was enabled."""
        if self._trace is None:
            raise RuntimeError("meter was created with record=False")
        return list(self._trace)

    def _accumulate(self, now: float) -> None:
        if now < self._last_time - 1e-9:
            raise ValueError(
                "time went backwards: {} < {}".format(now, self._last_time)
            )
        if now > self._last_time:
            self._energy_j += self._power_w * (now - self._last_time)
            self._last_time = now

    def __repr__(self) -> str:
        return "<EnergyMeter {}W, {:.1f}J through t={}>".format(
            self._power_w, self._energy_j, self._last_time
        )
