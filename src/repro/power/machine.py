"""Simulation-aware host power-state machine.

Binds a :class:`~repro.power.ServerPowerProfile` to a simulation
environment and an :class:`~repro.power.EnergyMeter`, enforcing legal
transitions, transition latency, and correct power draw at every instant.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional, Tuple

if TYPE_CHECKING:
    from repro.telemetry.trace import TraceBuffer

from repro.power.energy import EnergyMeter
from repro.power.profiles import ServerPowerProfile
from repro.power.states import IllegalTransition, PowerState


class TransitionInProgress(RuntimeError):
    """Raised when a transition is requested while another is running."""


class HostPowerStateMachine:
    """Tracks one host's power state, draw, and transition book-keeping."""

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        profile: ServerPowerProfile,
        initial_state: PowerState = PowerState.ACTIVE,
        record_trace: bool = False,
        latency_rng=None,
        name: str = "",
        trace: Optional["TraceBuffer"] = None,
        wake_latency_scale: Optional[Callable[[float], float]] = None,
    ) -> None:
        self.env = env
        self.profile = profile
        #: Host name used in decision-trace events (empty = anonymous).
        self.name = name
        #: Decision-trace sink; None disables tracing at zero cost.
        self._trace = trace
        #: Optional time-dependent multiplier applied to the sampled
        #: latency of transitions *into* ACTIVE (wake-latency brownouts,
        #: see :class:`repro.datacenter.faults.ChaosSchedule`).  The scaled
        #: value is what the trace records, so the once-sampled-latency
        #: invariant keeps holding.
        self.wake_latency_scale = wake_latency_scale
        self._state = initial_state
        self._utilization = 0.0
        self._dynamic_scale = 1.0
        #: Optional callback fired after every membership-relevant change
        #: (transition start, completion, or failure).  The owning
        #: :class:`~repro.datacenter.host.Host` wires this into the
        #: cluster's host index so views never rescan the inventory.
        self.on_change: Optional[Callable[[], None]] = None
        #: Optional RNG for per-transition latency jitter (see
        #: :meth:`repro.power.TransitionSpec.sample_latency_s`).
        self.latency_rng = latency_rng
        self._transition: Optional[Tuple[PowerState, PowerState]] = None
        # Hot-path bindings: ``_active_power`` runs once per utilization
        # step on every active host, and the profile is immutable, so the
        # idle draw and the calibration-curve lookup are hoisted here.
        self._idle_w = profile.idle_w
        self._power_at = profile.active_model.power_at
        self.meter = EnergyMeter(
            now=env.now,
            power_w=profile.stable_power(initial_state, 0.0),
            record=record_trace,
        )
        #: (src, dst) -> number of completed transitions.
        self.transition_counts: Counter = Counter()
        #: (src, dst) -> number of injected transition failures.
        self.failed_transitions: Counter = Counter()
        #: state -> cumulative seconds spent resting in it.
        self._residency: Dict[PowerState, float] = {s: 0.0 for s in PowerState}
        self._transit_time = 0.0
        self._last_mark = env.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> PowerState:
        """The stable state the machine is in (or is leaving, if moving)."""
        return self._state

    @property
    def in_transition(self) -> bool:
        return self._transition is not None

    @property
    def target_state(self) -> Optional[PowerState]:
        """Destination of the running transition, or None when stable."""
        return self._transition[1] if self._transition else None

    @property
    def is_active(self) -> bool:
        return self._state is PowerState.ACTIVE and not self.in_transition

    @property
    def utilization(self) -> float:
        return self._utilization

    def residency_s(self, state: PowerState) -> float:
        """Seconds spent resting in ``state`` so far (excludes transit)."""
        self._mark()
        return self._residency[state]

    @property
    def transit_time_s(self) -> float:
        """Total seconds spent inside transitions so far."""
        self._mark()
        return self._transit_time

    def power_w(self) -> float:
        """Instantaneous draw in watts."""
        return self.meter.power_w

    def energy_j(self) -> float:
        """Joules consumed since creation."""
        return self.meter.energy_j(self.env.now)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set_utilization(self, utilization: float, dynamic_scale: float = 1.0) -> None:
        """Update CPU utilization; affects draw only while stably ACTIVE.

        ``dynamic_scale`` multiplies the utilization-dependent share of
        active power (draw above idle) — the hook the DVFS governor uses.

        NOTE: ``ClusterSampler.sample_once`` inlines this method (and
        ``_active_power``) for the stably-ACTIVE case on its per-tick hot
        path — keep the two in lockstep when changing the arithmetic.
        """
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError("utilization must be in [0, 1]")
        if dynamic_scale < 0:
            raise ValueError("dynamic_scale must be non-negative")
        self._utilization = min(utilization, 1.0)
        self._dynamic_scale = dynamic_scale
        if self._state is PowerState.ACTIVE and not self.in_transition:
            self.meter.set_power(self.env.now, self._active_power())

    def _active_power(self) -> float:
        idle = self._idle_w
        dynamic = self._power_at(self._utilization) - idle
        return idle + dynamic * self._dynamic_scale

    def transition_to(self, dst: PowerState, fail: bool = False) -> Generator:
        """Generator performing the transition; run it via ``env.process``.

        Raises :class:`IllegalTransition` (before any time passes) if the
        profile lacks the edge, and :class:`TransitionInProgress` if the
        machine is already moving.

        With ``fail=True`` (fault injection) the attempt consumes its full
        latency and energy but the machine falls back to the source state;
        the generator returns that source state and the attempt is counted
        in :attr:`failed_transitions` instead of :attr:`transition_counts`.
        """
        if self.in_transition:
            raise TransitionInProgress(
                "already moving {} -> {}".format(*self._transition)
            )
        if dst is self._state:
            raise IllegalTransition(self._state, dst)
        spec = self.profile.transition(self._state, dst)  # may raise
        return self._run_transition(dst, spec, fail)

    def _run_transition(self, dst: PowerState, spec, fail: bool = False) -> Generator:
        src = self._state
        self._mark()
        self._transition = (src, dst)
        self.meter.set_power(self.env.now, spec.power_w)
        latency_s = spec.sample_latency_s(self.latency_rng)
        if dst is PowerState.ACTIVE and self.wake_latency_scale is not None:
            latency_s *= self.wake_latency_scale(self.env.now)
        if self._trace is not None:
            self._trace.transition_start(
                self.env.now, self.name, src.value, dst.value, latency_s,
                spec.power_w,
            )
        if self.on_change is not None:
            self.on_change()
        yield self.env.timeout(latency_s)
        self._mark()
        self._transition = None
        if fail:
            self.failed_transitions[(src, dst)] += 1
            if src is PowerState.ACTIVE:
                self.meter.set_power(self.env.now, self._active_power())
            else:
                self.meter.set_power(self.env.now, self.profile.stable_power(src))
            if self._trace is not None:
                self._trace.transition_end(
                    self.env.now, self.name, src.value, dst.value, src.value,
                    failed=True,
                )
            if self.on_change is not None:
                self.on_change()
            return src
        self._state = dst
        self.transition_counts[(src, dst)] += 1
        if dst is PowerState.ACTIVE:
            self.meter.set_power(self.env.now, self._active_power())
        else:
            self.meter.set_power(self.env.now, self.profile.stable_power(dst))
        if self._trace is not None:
            self._trace.transition_end(
                self.env.now, self.name, src.value, dst.value, dst.value,
                failed=False,
            )
        if self.on_change is not None:
            self.on_change()
        return dst

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mark(self) -> None:
        """Attribute elapsed time to the current residency bucket."""
        now = self.env.now
        elapsed = now - self._last_mark
        if elapsed <= 0:
            self._last_mark = now
            return
        if self.in_transition:
            self._transit_time += elapsed
        else:
            self._residency[self._state] += elapsed
        self._last_mark = now

    def __repr__(self) -> str:
        if self.in_transition:
            return "<HostPowerStateMachine {}->{} at t={}>".format(
                self._transition[0].value, self._transition[1].value, self.env.now
            )
        return "<HostPowerStateMachine {} u={:.2f} at t={}>".format(
            self._state.value, self._utilization, self.env.now
        )
