"""Utilization-to-power models for the ACTIVE state.

Enterprise servers of the paper's era drew roughly half of their peak power
while completely idle — the motivating observation for parking whole hosts
rather than relying on DVFS alone.  Two models are provided:

* :class:`LinearPowerModel` — ``P(u) = idle + (peak - idle) * u``; the
  standard first-order model used throughout datacenter literature.
* :class:`PiecewisePowerModel` — interpolates measured (utilization, watts)
  points, e.g. the 11-point SPECpower_ssj load line, capturing the concave
  shape real machines show.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

import numpy as np


class PowerModel:
    """Interface: map utilization in [0, 1] to active-state watts."""

    def power_at(self, utilization: float) -> float:
        raise NotImplementedError

    @property
    def idle_w(self) -> float:
        return self.power_at(0.0)

    @property
    def peak_w(self) -> float:
        return self.power_at(1.0)

    def proportionality_index(self, samples: int = 101) -> float:
        """Energy-proportionality index in [0, 1].

        1 means perfectly proportional (idle draws nothing and the curve is
        linear through the origin); computed as 1 minus the mean absolute
        deviation from the ideal proportional line, normalized by peak.
        """
        peak = self.peak_w
        if peak <= 0:
            raise ValueError("peak power must be positive")
        deviation = 0.0
        for i in range(samples):
            u = i / (samples - 1)
            deviation += abs(self.power_at(u) - u * peak) / peak
        return 1.0 - deviation / samples

    def power_at_grid(self, utilizations: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`power_at` over a float64 utilization array.

        The base implementation just loops; subclasses override it with a
        batched computation whose per-element operation sequence matches
        the scalar method exactly, so every returned watt is bit-identical
        to ``power_at`` on the same input.
        """
        return np.array([self.power_at(float(u)) for u in utilizations])

    @staticmethod
    def _check_utilization(utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(
                "utilization must be in [0, 1], got {!r}".format(utilization)
            )
        return min(utilization, 1.0)


class LinearPowerModel(PowerModel):
    """``P(u) = idle + (peak - idle) * u``."""

    def __init__(self, idle_w: float, peak_w: float) -> None:
        if idle_w < 0 or peak_w < idle_w:
            raise ValueError(
                "need 0 <= idle_w <= peak_w, got {} / {}".format(idle_w, peak_w)
            )
        self._idle_w = idle_w
        self._peak_w = peak_w

    def power_at(self, utilization: float) -> float:
        u = self._check_utilization(utilization)
        return self._idle_w + (self._peak_w - self._idle_w) * u

    def power_at_grid(self, utilizations: "np.ndarray") -> "np.ndarray":
        # Elementwise float64 mul/add round exactly like the scalar
        # expression, so this is bit-identical to power_at per element.
        u = np.asarray(utilizations, dtype=float)
        return self._idle_w + (self._peak_w - self._idle_w) * u

    def __repr__(self) -> str:
        return "LinearPowerModel(idle_w={}, peak_w={})".format(
            self._idle_w, self._peak_w
        )


class PiecewisePowerModel(PowerModel):
    """Linear interpolation through measured (utilization, watts) points."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two calibration points")
        pts = sorted(points)
        us = [u for u, _ in pts]
        if len(set(us)) != len(us):
            raise ValueError("duplicate utilization points")
        if us[0] != 0.0 or us[-1] != 1.0:
            raise ValueError("points must span utilization 0.0 .. 1.0")
        for _, w in pts:
            if w < 0:
                raise ValueError("negative wattage in calibration point")
        self._us: List[float] = us
        self._ws: List[float] = [w for _, w in pts]

    def power_at(self, utilization: float) -> float:
        u = self._check_utilization(utilization)
        hi = bisect.bisect_left(self._us, u)
        if hi == 0:
            return self._ws[0]
        if self._us[hi - 1] == u:
            return self._ws[hi - 1]
        lo = hi - 1
        span = self._us[hi] - self._us[lo]
        frac = (u - self._us[lo]) / span
        return self._ws[lo] + (self._ws[hi] - self._ws[lo]) * frac

    def power_at_grid(self, utilizations: "np.ndarray") -> "np.ndarray":
        """Batched interpolation, bit-identical to :meth:`power_at`.

        ``utilizations`` must already be clamped to [0, 1] (the callers
        pass ``min(demand / cores, 1.0)`` grids).  Each element follows
        the exact scalar branch structure: ``searchsorted`` is
        ``bisect_left``, and the interpolation arithmetic runs the same
        float64 operation sequence elementwise, so every watt matches the
        scalar method to the last bit.
        """
        us = np.asarray(self._us)
        ws = np.asarray(self._ws)
        u = np.asarray(utilizations, dtype=float)
        hi = np.searchsorted(us, u, side="left")
        lo = np.maximum(hi - 1, 0)
        hi_c = np.minimum(hi, len(us) - 1)
        us_lo = us[lo]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (u - us_lo) / (us[hi_c] - us_lo)
            interp = ws[lo] + (ws[hi_c] - ws[lo]) * frac
        out = np.where(us_lo == u, ws[lo], interp)
        out[hi == 0] = ws[0]
        return out

    def __repr__(self) -> str:
        return "PiecewisePowerModel({} points, idle={}W, peak={}W)".format(
            len(self._us), self._ws[0], self._ws[-1]
        )


def specpower_like_model(idle_w: float = 155.0, peak_w: float = 315.0) -> PiecewisePowerModel:
    """An 11-point concave load line shaped like SPECpower_ssj2008 results.

    The relative shape (fast power growth at low load, flattening near
    peak) is taken from typical published 2012-era 2-socket results; the
    endpoints are scaled to ``idle_w`` / ``peak_w``.
    """
    # Fraction of the idle->peak dynamic range consumed at each 10% load step.
    shape = [0.0, 0.22, 0.38, 0.50, 0.60, 0.68, 0.76, 0.83, 0.89, 0.95, 1.0]
    span = peak_w - idle_w
    points = [(i / 10.0, idle_w + span * f) for i, f in enumerate(shape)]
    return PiecewisePowerModel(points)
