"""Placement substrate: initial packing, DRM-style balancing, evacuation.

This package is pure planning — it inspects the cluster and returns
recommendations; the management layer (``repro.core``) executes them with
the migration engine.  Keeping planning side-effect-free makes both the
baseline DRM controller and the power-aware controller testable without a
simulation run.
"""

from repro.placement.packing import (
    PackingError,
    best_fit_decreasing,
    dot_product_packing,
    first_fit_decreasing,
    pack_onto_minimal_hosts,
)
from repro.placement.balancer import BalanceConfig, LoadBalancer, Move
from repro.placement.evacuation import plan_evacuation

__all__ = [
    "BalanceConfig",
    "LoadBalancer",
    "Move",
    "PackingError",
    "best_fit_decreasing",
    "dot_product_packing",
    "first_fit_decreasing",
    "pack_onto_minimal_hosts",
    "plan_evacuation",
]
