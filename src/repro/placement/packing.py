"""Bin-packing planners for initial and consolidated VM placement.

Two classic heuristics (first-fit decreasing and best-fit decreasing) over
a two-dimensional constraint: memory is hard, CPU is a soft target — a
host is considered full once its *expected* demand reaches
``cpu_target × cores``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datacenter.host import Host
from repro.datacenter.vm import VM

DemandFn = Callable[[VM], float]


class PackingError(RuntimeError):
    """Raised when not every VM can be placed under the constraints."""

    def __init__(self, unplaced: Sequence[VM]) -> None:
        super().__init__(
            "could not place {} VMs: {}".format(
                len(unplaced), [vm.name for vm in unplaced][:5]
            )
        )
        self.unplaced = list(unplaced)


def _default_demand(vm: VM) -> float:
    """Conservative default: plan for the VM's full vCPU reservation."""
    return vm.vcpus


class _Bin:
    """Mutable planning view of one host."""

    def __init__(self, host: Host, cpu_target: float, demand_fn: DemandFn) -> None:
        self.host = host
        self.cpu_budget = host.cores * cpu_target - sum(
            demand_fn(vm) for vm in host.vms.values()
        )
        self.mem_budget = host.mem_free_gb
        self.groups = {
            vm.anti_affinity_group
            for vm in host.vms.values()
            if vm.anti_affinity_group is not None
        } | set(host.groups_reserved)

    def fits(self, vm: VM, demand: float) -> bool:
        if demand > self.cpu_budget + 1e-9 or vm.mem_gb > self.mem_budget + 1e-9:
            return False
        if vm.anti_affinity_group is not None and vm.anti_affinity_group in self.groups:
            return False
        return True

    def add(self, vm: VM, demand: float) -> None:
        self.cpu_budget -= demand
        self.mem_budget -= vm.mem_gb
        if vm.anti_affinity_group is not None:
            self.groups.add(vm.anti_affinity_group)


def _plan(
    vms: Iterable[VM],
    hosts: Sequence[Host],
    cpu_target: float,
    demand_fn: DemandFn,
    choose: Callable[[List["_Bin"], VM, float], Optional["_Bin"]],
) -> Dict[VM, Host]:
    if not 0.0 < cpu_target <= 1.0:
        raise ValueError("cpu_target must be in (0, 1]")
    bins = [_Bin(h, cpu_target, demand_fn) for h in hosts]
    ordered = sorted(vms, key=demand_fn, reverse=True)
    plan: Dict[VM, Host] = {}
    unplaced: List[VM] = []
    for vm in ordered:
        demand = demand_fn(vm)
        target = choose(bins, vm, demand)
        if target is None:
            unplaced.append(vm)
        else:
            target.add(vm, demand)
            plan[vm] = target.host
    if unplaced:
        raise PackingError(unplaced)
    return plan


def first_fit_decreasing(
    vms: Iterable[VM],
    hosts: Sequence[Host],
    cpu_target: float = 0.85,
    demand_fn: DemandFn = _default_demand,
) -> Dict[VM, Host]:
    """FFD: largest VMs first, each onto the first host with room."""

    def choose(bins, vm, demand):
        for b in bins:
            if b.fits(vm, demand):
                return b
        return None

    return _plan(vms, hosts, cpu_target, demand_fn, choose)


def best_fit_decreasing(
    vms: Iterable[VM],
    hosts: Sequence[Host],
    cpu_target: float = 0.85,
    demand_fn: DemandFn = _default_demand,
) -> Dict[VM, Host]:
    """BFD: largest VMs first, each onto the tightest host that still fits."""

    def choose(bins, vm, demand):
        candidates = [b for b in bins if b.fits(vm, demand)]
        if not candidates:
            return None
        return min(candidates, key=lambda b: b.cpu_budget - demand)

    return _plan(vms, hosts, cpu_target, demand_fn, choose)


def dot_product_packing(
    vms: Iterable[VM],
    hosts: Sequence[Host],
    cpu_target: float = 0.85,
    demand_fn: DemandFn = _default_demand,
) -> Dict[VM, Host]:
    """Vector (2-D) packing via the dot-product heuristic.

    CPU and memory are both real constraints; 1-D heuristics can strand
    one dimension (memory-full hosts with idle cores).  Dot-product
    packing places each VM onto the *open* host whose remaining-capacity
    vector best aligns with the VM's demand vector, so the two dimensions
    deplete together.  Hosts are opened lazily (first-fit order), which
    keeps the consolidation objective.
    """
    if not 0.0 < cpu_target <= 1.0:
        raise ValueError("cpu_target must be in (0, 1]")
    bins = [_Bin(h, cpu_target, demand_fn) for h in hosts]
    # Normalization scales so CPU and memory are comparable.
    cpu_scale = max((h.cores * cpu_target for h in hosts), default=1.0)
    mem_scale = max((h.mem_gb for h in hosts), default=1.0)
    ordered = sorted(
        vms,
        key=lambda vm: demand_fn(vm) / cpu_scale + vm.mem_gb / mem_scale,
        reverse=True,
    )
    plan: Dict[VM, Host] = {}
    unplaced: List[VM] = []
    open_count = 1
    for vm in ordered:
        demand = demand_fn(vm)
        placed = False
        while not placed:
            candidates = [
                b for b in bins[:open_count] if b.fits(vm, demand)
            ]
            if candidates:
                best = max(
                    candidates,
                    key=lambda b: (
                        (demand / cpu_scale) * (b.cpu_budget / cpu_scale)
                        + (vm.mem_gb / mem_scale) * (b.mem_budget / mem_scale)
                    ),
                )
                best.add(vm, demand)
                plan[vm] = best.host
                placed = True
            elif open_count < len(bins):
                open_count += 1
            else:
                unplaced.append(vm)
                break
    if unplaced:
        raise PackingError(unplaced)
    return plan


def pack_onto_minimal_hosts(
    vms: Iterable[VM],
    hosts: Sequence[Host],
    cpu_target: float = 0.85,
    demand_fn: DemandFn = _default_demand,
) -> Tuple[Dict[VM, Host], List[Host]]:
    """Find the smallest host prefix that holds every VM (FFD inside).

    Returns ``(plan, spare_hosts)`` — ``spare_hosts`` are candidates for
    parking.  Hosts are tried in the order given, so pass an
    affinity-sorted list (e.g. already-loaded hosts first) to minimize the
    migrations the plan implies.
    """
    vm_list = list(vms)
    host_list = list(hosts)
    for k in range(1, len(host_list) + 1):
        try:
            plan = first_fit_decreasing(
                vm_list, host_list[:k], cpu_target=cpu_target, demand_fn=demand_fn
            )
        except PackingError:
            continue
        return plan, host_list[k:]
    raise PackingError(vm_list)
