"""Evacuation planning: empty a host so it can be parked."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.host import Host
from repro.datacenter.vm import VM

DemandFn = Callable[[VM], float]


def plan_evacuation(
    host: Host,
    targets: Sequence[Host],
    demand_fn: Optional[DemandFn] = None,
    cpu_target: float = 0.85,
    trace: Optional["TraceBuffer"] = None,
    now: float = 0.0,
) -> Optional[List[Tuple[VM, Host]]]:
    """Plan destinations for every VM on ``host``, or None if impossible.

    Uses best-fit over the target hosts' remaining CPU/memory budgets so
    evacuations concentrate load (the consolidation objective) rather than
    spreading it.  Targets must not include ``host`` itself.

    Returns a list of ``(vm, destination)`` pairs covering *all* resident,
    non-migrating VMs; a partial evacuation is useless for parking, so a
    single unplaceable VM fails the whole plan.
    """
    if host in targets:
        raise ValueError("evacuation targets must exclude the host itself")
    if not 0.0 < cpu_target <= 1.0:
        raise ValueError("cpu_target must be in (0, 1]")

    # ``demand_fn=None`` selects the canonical demand — demand at ``now``
    # served from the per-host resident cache, which is bit-identical to
    # the explicit per-VM sum it replaces but O(1) per candidate host.
    canonical = demand_fn is None
    if demand_fn is None:
        def demand_fn(vm: VM, _t: float = now) -> float:
            return vm.demand_cores(_t)

    cpu_budget: Dict[str, float] = {}
    mem_budget: Dict[str, float] = {}
    groups: Dict[str, set] = {}
    usable = [t for t in targets if t.available_for_placement]
    for t in usable:
        cpu_budget[t.name] = t.cores * cpu_target - (
            t.resident_demand_cores(now)
            if canonical
            else sum(demand_fn(vm) for vm in t.vms.values())
        )
        mem_budget[t.name] = t.mem_free_gb
        # Same set as scanning every resident VM for its group, served
        # from the host's live group multiset in O(groups) instead.
        groups[t.name] = set(t._aa_groups) | t.groups_reserved

    movable = [vm for vm in host.vms.values() if not vm.migrating]
    if len(movable) != len(host.vms):
        # In-flight migrations pin the host; caller should retry later.
        if trace is not None:
            trace.evacuation_planned(now, host.name, len(host.vms), ok=False)
        return None

    plan: List[Tuple[VM, Host]] = []
    for vm in sorted(movable, key=demand_fn, reverse=True):
        demand = demand_fn(vm)
        fitting = [
            t
            for t in usable
            if demand <= cpu_budget[t.name] + 1e-9
            and vm.mem_gb <= mem_budget[t.name] + 1e-9
            and (
                vm.anti_affinity_group is None
                or vm.anti_affinity_group not in groups[t.name]
            )
        ]
        if not fitting:
            if trace is not None:
                trace.evacuation_planned(now, host.name, len(movable), ok=False)
            return None
        dst = min(fitting, key=lambda t: cpu_budget[t.name] - demand)
        cpu_budget[dst.name] -= demand
        mem_budget[dst.name] -= vm.mem_gb
        if vm.anti_affinity_group is not None:
            groups[dst.name].add(vm.anti_affinity_group)
        plan.append((vm, dst))
    if trace is not None:
        trace.evacuation_planned(now, host.name, len(plan), ok=True)
    return plan
