"""DRS-style load balancer — the paper's *base DRM* whose overhead the
power-aware manager must not exceed.

Each invocation looks at measured host utilizations and recommends at most
``max_moves_per_round`` migrations that (a) relieve hosts above the high
watermark and (b) reduce overall imbalance, provided each move clears the
minimum-improvement bar (real DRM products apply exactly this kind of
cost/benefit filter to avoid migration churn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.datacenter.host import Host
from repro.datacenter.vm import VM

DemandFn = Callable[[VM], float]


@dataclass(frozen=True)
class Move:
    """A recommended migration."""

    vm: VM
    src: Host
    dst: Host
    reason: str

    def __repr__(self) -> str:
        return "<Move {}: {} -> {} ({})>".format(
            self.vm.name, self.src.name, self.dst.name, self.reason
        )


@dataclass
class BalanceConfig:
    """Tunables of the balancing pass."""

    high_watermark: float = 0.85
    #: A move must cut the src/dst utilization gap by at least this much.
    min_improvement: float = 0.05
    max_moves_per_round: int = 4
    #: Never push a destination above this utilization with the move.
    dst_ceiling: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.dst_ceiling <= self.high_watermark <= 1.0:
            raise ValueError("need 0 < dst_ceiling <= high_watermark <= 1")
        if self.min_improvement < 0:
            raise ValueError("min_improvement must be >= 0")
        if self.max_moves_per_round < 1:
            raise ValueError("max_moves_per_round must be >= 1")


class LoadBalancer:
    """Stateless recommender over a snapshot of host demand."""

    def __init__(self, config: Optional[BalanceConfig] = None) -> None:
        self.config = config or BalanceConfig()

    def recommend(
        self,
        hosts: Sequence[Host],
        demand_fn: Optional[DemandFn] = None,
        now: float = 0.0,
    ) -> List[Move]:
        """Return up to ``max_moves_per_round`` de-overload/balance moves.

        ``demand_fn=None`` selects the canonical demand at ``now``, with
        per-host loads served from the resident-demand cache — the same
        values as the explicit per-VM sums, without the walk.
        """
        cfg = self.config
        # Planning view: utilization per host, mutated as moves are chosen.
        if demand_fn is None:
            def demand_fn(vm: "VM", _t: float = now) -> float:
                return vm.demand_cores(_t)

            load = {h.name: h.resident_demand_cores(now) for h in hosts}
        else:
            load = {
                h.name: sum(demand_fn(vm) for vm in h.vms.values())
                for h in hosts
            }
        moves: List[Move] = []
        for _ in range(cfg.max_moves_per_round):
            move = self._best_single_move(hosts, load, demand_fn)
            if move is None:
                break
            moves.append(move)
            d = demand_fn(move.vm)
            load[move.src.name] -= d
            load[move.dst.name] += d
        return moves

    def _utilization(self, host: Host, load: dict) -> float:
        return load[host.name] / host.cores

    def _best_single_move(
        self,
        hosts: Sequence[Host],
        load: dict,
        demand_fn: DemandFn,
    ) -> Optional[Move]:
        cfg = self.config
        # Single max pass instead of a full descending sort: strict ``>``
        # keeps the first host among equal utilizations — the same host a
        # stable reverse sort put at index 0.
        src: Optional[Host] = None
        src_util = 0.0
        for h in hosts:
            if h.is_active and h.vms:
                u = self._utilization(h, load)
                if src is None or u > src_util:
                    src, src_util = h, u
        if src is None:
            return None
        if src_util < cfg.high_watermark:
            return None
        destinations = sorted(
            (h for h in hosts if h.available_for_placement and h is not src),
            key=lambda h: self._utilization(h, load),
        )
        # Prefer moving low-priority VMs (migration slowdown lands on the
        # class that can best absorb it), biggest movers first per class.
        candidates = sorted(
            (vm for vm in src.vms.values() if not vm.migrating),
            key=lambda vm: (vm.priority, demand_fn(vm)),
            reverse=True,
        )
        for vm in candidates:
            demand = demand_fn(vm)
            if demand <= 0:
                continue
            for dst in destinations:
                dst_util = self._utilization(dst, load)
                new_dst_util = dst_util + demand / dst.cores
                new_src_util = src_util - demand / src.cores
                if not dst.fits(vm):
                    continue
                if new_dst_util > cfg.dst_ceiling:
                    continue
                improvement = (src_util - dst_util) - (
                    abs(new_src_util - new_dst_util)
                )
                if improvement < cfg.min_improvement:
                    continue
                return Move(
                    vm=vm, src=src, dst=dst, reason="overload {:.2f}".format(src_util)
                )
        return None
