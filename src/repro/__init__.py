"""Reproduction of *Agile, efficient virtualization power management with
low-latency server power states* (Isci et al., ISCA 2013).

Public API overview:

* :func:`repro.run_scenario` — run one managed-datacenter simulation.
* :mod:`repro.core` — the power-aware manager and the policy presets.
* :mod:`repro.prototype` — the calibrated power-state characterization.
* :mod:`repro.sim`, :mod:`repro.power`, :mod:`repro.datacenter`,
  :mod:`repro.workload`, :mod:`repro.migration`, :mod:`repro.placement`,
  :mod:`repro.telemetry`, :mod:`repro.analysis` — the substrates.
"""

from repro.core import (
    ManagerConfig,
    PowerAwareManager,
    ScenarioResult,
    always_on,
    hybrid_policy,
    policy_by_name,
    run_scenario,
    s3_policy,
    s5_policy,
)
from repro.power import PowerState, ServerPowerProfile
from repro.prototype import LEGACY_BLADE, PROTOTYPE_BLADE

__version__ = "1.0.0"

__all__ = [
    "LEGACY_BLADE",
    "ManagerConfig",
    "PROTOTYPE_BLADE",
    "PowerAwareManager",
    "PowerState",
    "ScenarioResult",
    "ServerPowerProfile",
    "always_on",
    "hybrid_policy",
    "policy_by_name",
    "run_scenario",
    "s3_policy",
    "s5_policy",
]
