"""VM arrival/departure churn.

The paper's overhead-parity claim (T3/F7) requires ongoing provisioning
activity: the DRM baseline already migrates and places VMs, and power
management must not add disproportionate work on top.  This process
injects Poisson arrivals with exponential lifetimes through whatever
``admit``/``retire`` callbacks the management layer provides.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.datacenter.vm import VM
from repro.sim import ResumeSpec
from repro.workload.fleet import FleetSpec, _draw_priority, _make_trace


class ChurnGenerator:
    """Drives VM arrivals and departures inside a simulation.

    Args:
        env: simulation environment.
        seed: RNG seed (all draws flow from it).
        admit: callback ``(vm) -> bool``; False means admission was
            rejected (no capacity) — the VM is dropped and counted.
        retire: callback ``(vm) -> None`` removing a departed VM.
        arrival_rate_per_h: Poisson arrival rate.
        mean_lifetime_s: exponential mean VM lifetime.
        spec: fleet spec used to draw each arriving VM's shape.
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        seed: int,
        admit: Callable[[VM], bool],
        retire: Callable[[VM], None],
        arrival_rate_per_h: float = 4.0,
        mean_lifetime_s: float = 6 * 3600.0,
        spec: Optional[FleetSpec] = None,
    ) -> None:
        if arrival_rate_per_h <= 0 or mean_lifetime_s <= 0:
            raise ValueError("rates and lifetimes must be positive")
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.admit = admit
        self.retire = retire
        self.arrival_rate_per_h = arrival_rate_per_h
        self.mean_lifetime_s = mean_lifetime_s
        self.spec = spec or FleetSpec(n_vms=1)
        self.arrived = 0
        self.rejected = 0
        self.departed = 0
        self._next_id = 0
        self._live: List[VM] = []

    @property
    def live_vms(self) -> List[VM]:
        return list(self._live)

    def start(self) -> "Process":  # noqa: F821
        """Launch the arrival process; returns it."""
        return self.env.process(
            self._arrivals(), ckpt=ResumeSpec(self, "_arrivals")
        )

    def _draw_vm(self) -> VM:
        archetypes = sorted(self.spec.archetype_weights)
        weights = np.array(
            [self.spec.archetype_weights[a] for a in archetypes], dtype=float
        )
        weights /= weights.sum()
        archetype = str(self.rng.choice(archetypes, p=weights))
        vcpu_weights = np.array(self.spec.vcpu_weights, dtype=float)
        vcpu_weights /= vcpu_weights.sum()
        vcpus = int(self.rng.choice(self.spec.vcpu_choices, p=vcpu_weights))
        self._next_id += 1
        return VM(
            name="churn-{:05d}".format(self._next_id),
            vcpus=vcpus,
            mem_gb=vcpus * self.spec.mem_gb_per_vcpu,
            trace=_make_trace(archetype, self.rng, self.spec),
            priority=_draw_priority(self.rng, self.spec.priority_weights),
        )

    def _arrivals(self, resume_at: Optional[float] = None):
        # Each inter-arrival gap is drawn when its timeout is *created*,
        # before the wait — so a checkpoint taken during the wait has
        # already consumed the draw.  Resume therefore re-arms the
        # recorded fire instant without touching the RNG; the restored
        # generator state continues the sequence exactly.
        mean_gap_s = 3600.0 / self.arrival_rate_per_h
        if resume_at is not None:
            yield self.env.timeout_at(resume_at)
            self._arrive_one()
        while True:
            yield self.env.timeout(float(self.rng.exponential(mean_gap_s)))
            self._arrive_one()

    def _arrive_one(self) -> None:
        vm = self._draw_vm()
        self.arrived += 1
        if self.admit(vm):
            self._live.append(vm)
            self.env.process(
                self._lifetime(vm), ckpt=ResumeSpec(self, "_lifetime", (vm,))
            )
        else:
            self.rejected += 1

    def _lifetime(self, vm: VM, resume_at: Optional[float] = None):
        if resume_at is not None:
            yield self.env.timeout_at(resume_at)
        else:
            yield self.env.timeout(
                float(self.rng.exponential(self.mean_lifetime_s))
            )
        # The VM may still be mid-migration; departure simply detaches it —
        # the migration process tolerates a vanished VM.
        self._live.remove(vm)
        self.departed += 1
        self.retire(vm)
