"""Workload characterization statistics.

Quantifies the properties of a demand signal that decide how much a
power-management policy can save and how hard it will be stressed:

* **peak-to-mean ratio** — the consolidation opportunity;
* **trough fraction** — share of time below a low-water level (parkable
  time);
* **burstiness** — mean absolute step between samples, normalized;
* **autocorrelation** at a lag — predictability for the look-ahead
  controllers;
* **correlation across VMs** — how simultaneous the demand swings are
  (what exposes wake latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one sampled demand signal."""

    mean: float
    peak: float
    peak_to_mean: float
    trough_fraction: float
    burstiness: float
    autocorrelation: float


def sample_trace(trace, horizon_s: float, step_s: float = 300.0) -> np.ndarray:
    """Sample a trace onto a uniform grid."""
    if horizon_s <= 0 or step_s <= 0:
        raise ValueError("horizon_s and step_s must be positive")
    n = max(2, int(horizon_s // step_s))
    return np.array([trace.at(i * step_s) for i in range(n)])


def trace_stats(
    trace,
    horizon_s: float,
    step_s: float = 300.0,
    trough_level: float = 0.25,
    lag_steps: int = 12,
) -> TraceStats:
    """Characterize a single trace over ``horizon_s``."""
    samples = sample_trace(trace, horizon_s, step_s)
    return series_stats(samples, trough_level=trough_level, lag_steps=lag_steps)


def series_stats(
    samples: Sequence[float],
    trough_level: float = 0.25,
    lag_steps: int = 12,
) -> TraceStats:
    """Characterize an already-sampled signal."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples")
    if lag_steps < 1:
        raise ValueError("lag_steps must be >= 1")
    mean = float(arr.mean())
    peak = float(arr.max())
    steps = np.abs(np.diff(arr))
    scale = peak if peak > 0 else 1.0
    if arr.size > lag_steps and arr.std() > 1e-12:
        a = arr[:-lag_steps] - arr[:-lag_steps].mean()
        b = arr[lag_steps:] - arr[lag_steps:].mean()
        denominator = np.sqrt((a**2).sum() * (b**2).sum())
        autocorr = float((a * b).sum() / denominator) if denominator > 0 else 0.0
    else:
        autocorr = 1.0 if arr.std() <= 1e-12 else 0.0
    relative_trough = trough_level * (peak if peak > 0 else 1.0)
    return TraceStats(
        mean=mean,
        peak=peak,
        peak_to_mean=peak / mean if mean > 0 else float("inf"),
        trough_fraction=float((arr < relative_trough).mean()),
        burstiness=float(steps.mean() / scale),
        autocorrelation=autocorr,
    )


def fleet_correlation(
    vms: Sequence,
    horizon_s: float,
    step_s: float = 300.0,
    pairs: int = 200,
    seed: int = 0,
) -> float:
    """Mean pairwise demand correlation across a VM fleet.

    High values mean the fleet surges together — the regime that stresses
    wake latency.  Sampled over random VM pairs for large fleets.
    """
    if len(vms) < 2:
        raise ValueError("need at least two VMs")
    n = max(2, int(horizon_s // step_s))
    times = np.arange(n) * step_s
    signals = np.array(
        [[vm.demand_cores(t) for t in times] for vm in vms]
    )
    rng = np.random.default_rng(seed)
    total = 0.0
    count = 0
    for _ in range(min(pairs, len(vms) * (len(vms) - 1) // 2)):
        i, j = rng.choice(len(vms), size=2, replace=False)
        a, b = signals[i], signals[j]
        if a.std() < 1e-12 or b.std() < 1e-12:
            continue
        total += float(np.corrcoef(a, b)[0, 1])
        count += 1
    return total / count if count else 0.0


def aggregate_demand_series(
    vms: Sequence, horizon_s: float, step_s: float = 300.0
) -> np.ndarray:
    """Total fleet demand sampled onto a uniform grid (cores)."""
    n = max(2, int(horizon_s // step_s))
    times = np.arange(n) * step_s
    return np.array([sum(vm.demand_cores(t) for vm in vms) for t in times])
