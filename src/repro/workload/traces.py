"""Demand traces: deterministic functions of simulated time.

A trace maps time (seconds) to a demand *fraction* in [0, 1] — the share
of a VM's configured vCPUs it wants at that instant.  Periodic analytic
traces (diurnal) evaluate directly; stochastic traces (bursty, noisy,
spiky) pre-draw a sample grid from a seeded RNG so every lookup is pure.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Optional, Sequence, Tuple

import numpy as np

DAY_S = 86_400.0


def _clamp01(x: float) -> float:
    return 0.0 if x < 0.0 else 1.0 if x > 1.0 else x


def trace_grid(
    trace: "Trace",
    ticks: Sequence[float],
    cache: Optional[dict] = None,
) -> "np.ndarray":
    """Evaluate ``trace.at`` over many instants in one batched pass.

    Returns a float64 array whose every element is **bit-identical** to
    the scalar ``trace.at(t)`` at the same instant:

    * :class:`SampledTrace` lookups are pure array gathers — the same
      float64 values scalar indexing returns;
    * :class:`CompositeTrace` accumulates ``w * part`` elementwise in
      part order from a zero array, which performs the identical IEEE-754
      multiply/add sequence per element as the scalar loop, then clamps
      with the same ``< 0.0`` / ``> 1.0`` comparisons;
    * anything else falls back to per-instant scalar evaluation (still
      one batched call for the caller, exact by construction).

    ``cache`` (keyed by trace identity) deduplicates shared sub-traces —
    fleets built with a nonzero ``shared_fraction`` reference one common
    component from many VM composites.
    """
    if cache is not None:
        key = id(trace)
        hit = cache.get(key)
        if hit is not None:
            return hit
    if isinstance(trace, SampledTrace):
        step = trace.step_s
        n = trace._n_samples
        # The gather index depends only on (step, n), not on the samples,
        # so traces with the same grid shape — e.g. every diurnal trace in
        # a fleet — share one index list.  Tuple keys cannot collide with
        # the integer id() keys used for trace-result entries.
        idx = None
        if cache is not None:
            idx = cache.get(("idx", step, n))
        if idx is None:
            idx = [int(t // step) % n for t in ticks]
            if cache is not None:
                cache[("idx", step, n)] = idx
        out = trace._samples[idx]
    elif isinstance(trace, CompositeTrace):
        out = np.zeros(len(ticks))
        for w, part in trace.parts:
            out += w * trace_grid(part, ticks, cache)
        # Elementwise _clamp01: replace with the exact constants the
        # scalar comparisons produce, leave everything else untouched.
        out[out < 0.0] = 0.0
        out[out > 1.0] = 1.0
    else:
        out = np.array([trace.at(t) for t in ticks], dtype=float)
    if cache is not None:
        cache[key] = out
    return out


class Trace:
    """Interface: ``at(t)`` returns demand fraction in [0, 1]."""

    def at(self, t: float) -> float:
        raise NotImplementedError

    def mean(self, horizon_s: float, step_s: float = 60.0) -> float:
        """Average demand over [0, horizon) sampled every ``step_s``."""
        if horizon_s <= 0 or step_s <= 0:
            raise ValueError("horizon and step must be positive")
        n = max(1, int(horizon_s // step_s))
        return sum(self.at(i * step_s) for i in range(n)) / n

    def peak(self, horizon_s: float, step_s: float = 60.0) -> float:
        """Maximum demand over [0, horizon) sampled every ``step_s``."""
        n = max(1, int(horizon_s // step_s))
        return max(self.at(i * step_s) for i in range(n))


class FlatTrace(Trace):
    """Constant demand."""

    def __init__(self, level: float) -> None:
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        self.level = level

    def at(self, t: float) -> float:
        return self.level


class StepTrace(Trace):
    """Piecewise-constant demand defined by (start_time, level) breakpoints."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("need at least one step")
        ordered = sorted(steps)
        if ordered[0][0] > 0.0:
            ordered.insert(0, (0.0, 0.0))
        for _, level in ordered:
            if not 0.0 <= level <= 1.0:
                raise ValueError("levels must be in [0, 1]")
        self._times = [s[0] for s in ordered]
        self._levels = [s[1] for s in ordered]

    def at(self, t: float) -> float:
        # bisect on the plain Python list matches np.searchsorted
        # side="right" exactly, without the per-call array conversion.
        idx = bisect_right(self._times, t) - 1
        return self._levels[max(idx, 0)]


class DiurnalTrace(Trace):
    """Day/night cycle: raised-cosine between ``low`` and ``high``.

    ``peak_hour`` places the maximum; ``sharpness`` > 1 narrows the peak
    (models business-hours plateaus when < 1, spiky midday peaks when > 1).
    """

    def __init__(
        self,
        low: float = 0.1,
        high: float = 0.8,
        period_s: float = DAY_S,
        peak_hour: float = 14.0,
        sharpness: float = 1.0,
    ) -> None:
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")
        if period_s <= 0 or sharpness <= 0:
            raise ValueError("period_s and sharpness must be positive")
        self.low = low
        self.high = high
        self.period_s = period_s
        self.phase_s = peak_hour * 3600.0
        self.sharpness = sharpness

    def at(self, t: float) -> float:
        angle = 2.0 * math.pi * (t - self.phase_s) / self.period_s
        base = 0.5 * (1.0 + math.cos(angle))  # 1 at the peak, 0 at the trough
        # ``x ** 1.0 == x`` exactly (IEEE 754 pow), so the common
        # sharpness=1.0 case skips the pow call without changing a bit.
        shaped = base if self.sharpness == 1.0 else base ** self.sharpness
        return self.low + (self.high - self.low) * shaped


class SampledTrace(Trace):
    """A trace backed by a pre-drawn sample grid.

    Lookups are step-function reads; time beyond the grid wraps around
    (tiling), which keeps long simulations well-defined.
    """

    def __init__(self, samples: Sequence[float], step_s: float = 60.0) -> None:
        if len(samples) == 0:
            raise ValueError("need at least one sample")
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        arr = np.asarray(samples, dtype=float)
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ValueError("samples must be within [0, 1]")
        self._samples = arr
        # Pure-Python mirror of the grid: ``tolist()`` yields the same
        # float64 values as ``float(arr[idx])``, and list indexing skips
        # the per-lookup numpy-scalar boxing on the hot path.
        self._samples_list = arr.tolist()
        self._n_samples = len(self._samples_list)
        self.step_s = step_s

    @property
    def horizon_s(self) -> float:
        return len(self._samples) * self.step_s

    def at(self, t: float) -> float:
        return self._samples_list[int(t // self.step_s) % self._n_samples]


class BurstyTrace(SampledTrace):
    """Low baseline punctuated by sustained bursts.

    Burst arrivals are Poisson with mean spacing ``mean_gap_s``; burst
    lengths are exponential with mean ``mean_burst_s``.  This is the
    workload that punishes slow wake-up: demand jumps by ``burst - base``
    with no warning.
    """

    def __init__(
        self,
        seed: int,
        base: float = 0.1,
        burst: float = 0.85,
        mean_gap_s: float = 2.0 * 3600,
        mean_burst_s: float = 20.0 * 60,
        horizon_s: float = 2 * DAY_S,
        step_s: float = 60.0,
    ) -> None:
        if not 0.0 <= base <= burst <= 1.0:
            raise ValueError("need 0 <= base <= burst <= 1")
        rng = np.random.default_rng(seed)
        n = int(horizon_s // step_s)
        samples = np.full(n, base)
        t = float(rng.exponential(mean_gap_s))
        while t < horizon_s:
            length = float(rng.exponential(mean_burst_s))
            lo = int(t // step_s)
            hi = min(n, int((t + length) // step_s) + 1)
            samples[lo:hi] = burst
            t += length + float(rng.exponential(mean_gap_s))
        super().__init__(samples, step_s)
        self.base = base
        self.burst = burst


class SpikeTrace(SampledTrace):
    """Mostly idle with rare, short, tall spikes (batch / cron style)."""

    def __init__(
        self,
        seed: int,
        base: float = 0.05,
        spike: float = 1.0,
        spikes_per_day: float = 6.0,
        spike_s: float = 300.0,
        horizon_s: float = 2 * DAY_S,
        step_s: float = 60.0,
    ) -> None:
        rng = np.random.default_rng(seed)
        n = int(horizon_s // step_s)
        samples = np.full(n, base)
        expected = spikes_per_day * horizon_s / DAY_S
        count = int(rng.poisson(expected))
        width = max(1, int(spike_s // step_s))
        for start in rng.integers(0, max(1, n - width), size=count):
            samples[start : start + width] = spike
        super().__init__(np.clip(samples, 0.0, 1.0), step_s)


class NoisyTrace(SampledTrace):
    """Wraps another trace with bounded Gaussian noise (pre-sampled)."""

    def __init__(
        self,
        inner: Trace,
        seed: int,
        sigma: float = 0.05,
        horizon_s: float = 2 * DAY_S,
        step_s: float = 60.0,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        rng = np.random.default_rng(seed)
        n = int(horizon_s // step_s)
        base = np.array([inner.at(i * step_s) for i in range(n)])
        noisy = np.clip(base + rng.normal(0.0, sigma, size=n), 0.0, 1.0)
        super().__init__(noisy, step_s)


class PlateauTrace(Trace):
    """Business-hours plateau: ramp up, hold ``high``, ramp down, idle.

    A sharper model of interactive enterprise load than the raised cosine:
    flat-out during working hours, near-idle at night, with linear ramps
    of ``ramp_s`` on each side.
    """

    def __init__(
        self,
        low: float = 0.1,
        high: float = 0.8,
        start_hour: float = 8.0,
        end_hour: float = 18.0,
        ramp_s: float = 3600.0,
        period_s: float = DAY_S,
    ) -> None:
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")
        if not 0.0 <= start_hour < end_hour <= 24.0:
            raise ValueError("need 0 <= start_hour < end_hour <= 24")
        if ramp_s < 0 or period_s <= 0:
            raise ValueError("ramp_s must be >= 0 and period_s positive")
        if 2 * ramp_s > (end_hour - start_hour) * 3600.0:
            raise ValueError("ramps overlap: plateau shorter than 2*ramp_s")
        self.low = low
        self.high = high
        self.start_s = start_hour * 3600.0
        self.end_s = end_hour * 3600.0
        self.ramp_s = ramp_s
        self.period_s = period_s

    def at(self, t: float) -> float:
        tod = t % self.period_s
        if tod < self.start_s or tod >= self.end_s:
            return self.low
        if self.ramp_s > 0 and tod < self.start_s + self.ramp_s:
            frac = (tod - self.start_s) / self.ramp_s
            return self.low + (self.high - self.low) * frac
        if self.ramp_s > 0 and tod >= self.end_s - self.ramp_s:
            frac = (self.end_s - tod) / self.ramp_s
            return self.low + (self.high - self.low) * frac
        return self.high


class WeeklyTrace(Trace):
    """Weekday/weekend modulation of an inner trace.

    Days 0–4 of each 7-day cycle use ``inner`` unchanged; days 5–6 scale
    it by ``weekend_factor`` (floored at ``floor``), capturing the deeper
    weekend troughs that make consolidation opportunities larger.
    """

    def __init__(
        self,
        inner: Trace,
        weekend_factor: float = 0.35,
        floor: float = 0.02,
    ) -> None:
        if not 0.0 <= weekend_factor <= 1.0:
            raise ValueError("weekend_factor must be in [0, 1]")
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.inner = inner
        self.weekend_factor = weekend_factor
        self.floor = floor

    def at(self, t: float) -> float:
        day = int(t // DAY_S) % 7
        value = self.inner.at(t)
        if day >= 5:
            value = max(self.floor, value * self.weekend_factor)
        return _clamp01(value)


class CompositeTrace(Trace):
    """Weighted sum of traces, clamped to [0, 1]."""

    def __init__(self, parts: Sequence[Tuple[float, Trace]]) -> None:
        if not parts:
            raise ValueError("need at least one part")
        for weight, _ in parts:
            if weight < 0:
                raise ValueError("weights must be non-negative")
        self.parts = list(parts)

    def at(self, t: float) -> float:
        # Explicit loop, not ``sum()`` over a genexpr: this runs once per
        # VM per sampler tick, and the generator frame is measurable at
        # fleet scale.  ``sum`` starts from int 0 and ``0 + v == 0.0 + v``
        # exactly, so the accumulation is bit-identical.
        total = 0.0
        for w, trace in self.parts:
            total += w * trace.at(t)
        return _clamp01(total)


class ScaledTrace(Trace):
    """``inner`` scaled by a factor and clamped to [0, 1]."""

    def __init__(self, inner: Trace, factor: float) -> None:
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self.inner = inner
        self.factor = factor

    def at(self, t: float) -> float:
        return _clamp01(self.inner.at(t) * self.factor)
