"""Loading externally-recorded utilization traces.

Operators reproducing the experiments on their own data can export
per-VM utilization as CSV (``time_s,fraction`` rows) and feed it in here;
the result plugs into :class:`~repro.datacenter.VM` like any synthetic
trace.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, TextIO, Tuple, Union

from repro.workload.traces import SampledTrace, Trace


def trace_from_samples(
    samples: Iterable[Tuple[float, float]],
    step_s: float = 60.0,
) -> SampledTrace:
    """Resample irregular (time, fraction) points onto a uniform grid.

    Points are interpreted sample-and-hold; the grid spans from the first
    to the last timestamp.  Values outside [0, 1] are rejected (scale
    before loading).
    """
    points = sorted(samples)
    if len(points) < 1:
        raise ValueError("need at least one sample")
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    for _, value in points:
        if not 0.0 <= value <= 1.0:
            raise ValueError("sample values must be within [0, 1]")
    start = points[0][0]
    end = points[-1][0]
    n = max(1, int((end - start) // step_s) + 1)
    grid: List[float] = []
    idx = 0
    current = points[0][1]
    for i in range(n):
        t = start + i * step_s
        while idx + 1 < len(points) and points[idx + 1][0] <= t:
            idx += 1
            current = points[idx][1]
        grid.append(current)
    return SampledTrace(grid, step_s=step_s)


def trace_from_csv(
    source: Union[str, TextIO],
    step_s: float = 60.0,
    time_column: str = "time_s",
    value_column: str = "fraction",
) -> SampledTrace:
    """Load a trace from CSV text or a file object.

    The CSV must have a header row naming ``time_column`` and
    ``value_column``.  Extra columns are ignored.
    """
    handle: TextIO
    if isinstance(source, str):
        handle = io.StringIO(source)
    else:
        handle = source
    reader = csv.DictReader(handle)
    if reader.fieldnames is None:
        raise ValueError("CSV has no header row")
    missing = {time_column, value_column} - set(reader.fieldnames)
    if missing:
        raise ValueError("CSV missing columns: {}".format(sorted(missing)))
    samples = []
    for row in reader:
        samples.append((float(row[time_column]), float(row[value_column])))
    if not samples:
        raise ValueError("CSV contained no data rows")
    return trace_from_samples(samples, step_s=step_s)
