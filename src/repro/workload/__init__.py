"""Workload generation: per-VM demand traces, fleets, and churn.

All randomness flows through explicitly seeded ``numpy`` generators, and
random traces are materialized as sample grids at construction, so any
experiment is exactly reproducible from its seed.
"""

from repro.workload.traces import (
    BurstyTrace,
    CompositeTrace,
    DiurnalTrace,
    FlatTrace,
    NoisyTrace,
    PlateauTrace,
    SampledTrace,
    ScaledTrace,
    SpikeTrace,
    StepTrace,
    Trace,
    WeeklyTrace,
)
from repro.workload.loader import trace_from_csv, trace_from_samples
from repro.workload.fleet import (
    FleetSpec,
    assign_replica_groups,
    build_fleet,
    enterprise_mix,
)
from repro.workload.churn import ChurnGenerator
from repro.workload.stats import (
    TraceStats,
    aggregate_demand_series,
    fleet_correlation,
    series_stats,
    trace_stats,
)

__all__ = [
    "BurstyTrace",
    "ChurnGenerator",
    "CompositeTrace",
    "DiurnalTrace",
    "FlatTrace",
    "FleetSpec",
    "NoisyTrace",
    "PlateauTrace",
    "SampledTrace",
    "ScaledTrace",
    "SpikeTrace",
    "StepTrace",
    "Trace",
    "TraceStats",
    "WeeklyTrace",
    "aggregate_demand_series",
    "assign_replica_groups",
    "build_fleet",
    "enterprise_mix",
    "fleet_correlation",
    "series_stats",
    "trace_from_csv",
    "trace_from_samples",
    "trace_stats",
]
