"""Fleet construction: populate a simulation with a realistic VM mix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.datacenter.vm import Priority, VM

_PRIORITY_BY_NAME = {
    "gold": Priority.GOLD,
    "silver": Priority.SILVER,
    "bronze": Priority.BRONZE,
}


def _draw_priority(rng: np.random.Generator, weights: Dict[str, float]) -> Priority:
    names = sorted(weights)
    probs = np.array([weights[n] for n in names], dtype=float)
    probs /= probs.sum()
    return _PRIORITY_BY_NAME[str(rng.choice(names, p=probs))]
from repro.workload.traces import (
    BurstyTrace,
    CompositeTrace,
    DiurnalTrace,
    FlatTrace,
    NoisyTrace,
    SpikeTrace,
    Trace,
)


@dataclass
class FleetSpec:
    """Parameters for a synthetic enterprise VM fleet.

    ``archetype_weights`` splits the fleet between demand shapes:
    ``diurnal`` (interactive/business apps), ``bursty`` (on-demand
    services), ``flat`` (steady back-ends), ``spiky`` (batch/cron).
    """

    n_vms: int = 100
    vcpu_choices: Sequence[int] = (1, 2, 4, 8)
    vcpu_weights: Sequence[float] = (0.35, 0.35, 0.2, 0.1)
    mem_gb_per_vcpu: float = 4.0
    archetype_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "diurnal": 0.55,
            "bursty": 0.2,
            "flat": 0.15,
            "spiky": 0.1,
        }
    )
    horizon_s: float = 2 * 86_400.0
    noise_sigma: float = 0.04
    #: Fraction of every VM's demand driven by a single cluster-wide
    #: signal (flash crowds / correlated business load).  0 disables it.
    shared_fraction: float = 0.0
    #: Shape of the shared signal: "bursty" or "diurnal".
    shared_kind: str = "bursty"
    #: Service-class mix (see :class:`repro.datacenter.Priority`).
    priority_weights: Dict[str, float] = field(
        default_factory=lambda: {"gold": 0.2, "silver": 0.3, "bronze": 0.5}
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if self.shared_kind not in ("bursty", "diurnal"):
            raise ValueError("shared_kind must be 'bursty' or 'diurnal'")
        known_classes = {"gold", "silver", "bronze"}
        unknown_classes = set(self.priority_weights) - known_classes
        if unknown_classes:
            raise ValueError(
                "unknown priority classes: {}".format(sorted(unknown_classes))
            )
        if sum(self.priority_weights.values()) <= 0:
            raise ValueError("priority weights must sum to > 0")
        if self.n_vms < 1:
            raise ValueError("n_vms must be >= 1")
        if len(self.vcpu_choices) != len(self.vcpu_weights):
            raise ValueError("vcpu choices/weights length mismatch")
        total = sum(self.archetype_weights.values())
        if total <= 0:
            raise ValueError("archetype weights must sum to > 0")
        known = {"diurnal", "bursty", "flat", "spiky"}
        unknown = set(self.archetype_weights) - known
        if unknown:
            raise ValueError("unknown archetypes: {}".format(sorted(unknown)))


def enterprise_mix(n_vms: int = 100, horizon_s: float = 2 * 86_400.0) -> FleetSpec:
    """The default mix used throughout the evaluation benches."""
    return FleetSpec(n_vms=n_vms, horizon_s=horizon_s)


def _make_trace(archetype: str, rng: np.random.Generator, spec: FleetSpec) -> Trace:
    seed = int(rng.integers(0, 2**31 - 1))
    if archetype == "diurnal":
        inner = DiurnalTrace(
            low=float(rng.uniform(0.05, 0.2)),
            high=float(rng.uniform(0.5, 0.9)),
            peak_hour=float(rng.uniform(10.0, 17.0)),
            sharpness=float(rng.uniform(0.8, 2.0)),
        )
        return NoisyTrace(
            inner,
            seed,
            sigma=spec.noise_sigma,
            horizon_s=spec.horizon_s,
        )
    if archetype == "bursty":
        return BurstyTrace(
            seed,
            base=float(rng.uniform(0.05, 0.15)),
            burst=float(rng.uniform(0.6, 0.95)),
            mean_gap_s=float(rng.uniform(1.0, 4.0)) * 3600.0,
            mean_burst_s=float(rng.uniform(10.0, 40.0)) * 60.0,
            horizon_s=spec.horizon_s,
        )
    if archetype == "flat":
        inner = FlatTrace(float(rng.uniform(0.15, 0.5)))
        return NoisyTrace(
            inner,
            seed,
            sigma=spec.noise_sigma,
            horizon_s=spec.horizon_s,
        )
    if archetype == "spiky":
        return SpikeTrace(
            seed,
            base=float(rng.uniform(0.02, 0.08)),
            spikes_per_day=float(rng.uniform(3.0, 10.0)),
            spike_s=float(rng.uniform(2.0, 10.0)) * 60.0,
            horizon_s=spec.horizon_s,
        )
    raise ValueError("unknown archetype {!r}".format(archetype))


def _make_shared_trace(spec: FleetSpec, rng: np.random.Generator) -> Trace:
    seed = int(rng.integers(0, 2**31 - 1))
    if spec.shared_kind == "bursty":
        return BurstyTrace(
            seed,
            base=0.1,
            burst=0.95,
            mean_gap_s=3.0 * 3600.0,
            mean_burst_s=30.0 * 60.0,
            horizon_s=spec.horizon_s,
        )
    return DiurnalTrace(low=0.1, high=0.9)


def assign_replica_groups(
    vms: Sequence[VM],
    n_groups: int,
    replicas: int = 2,
    seed: int = 0,
) -> None:
    """Mark random VMs as HA replica sets (anti-affinity groups).

    ``n_groups`` disjoint groups of ``replicas`` VMs each are drawn from
    the fleet; members of one group refuse to share a host.  Mutates the
    VMs in place.
    """
    if replicas < 2:
        raise ValueError("a replica set needs at least 2 members")
    needed = n_groups * replicas
    if needed > len(vms):
        raise ValueError(
            "need {} VMs for {} groups x {} replicas, have {}".format(
                needed, n_groups, replicas, len(vms)
            )
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(vms), size=needed, replace=False)
    for g in range(n_groups):
        for r in range(replicas):
            vms[int(chosen[g * replicas + r])].anti_affinity_group = "ha-{:03d}".format(g)


def build_fleet(spec: FleetSpec, seed: int = 0, name_prefix: str = "vm") -> List[VM]:
    """Materialize ``spec.n_vms`` VMs with seeded, reproducible traces.

    With ``shared_fraction`` > 0 every VM's demand becomes a blend of its
    own trace and one cluster-wide signal — this is what makes aggregate
    demand jump abruptly enough to stress wake-up latency.
    """
    rng = np.random.default_rng(seed)
    archetypes = sorted(spec.archetype_weights)
    weights = np.array([spec.archetype_weights[a] for a in archetypes], dtype=float)
    weights /= weights.sum()
    vcpu_weights = np.array(spec.vcpu_weights, dtype=float)
    vcpu_weights /= vcpu_weights.sum()
    shared = _make_shared_trace(spec, rng) if spec.shared_fraction > 0 else None

    fleet = []
    for i in range(spec.n_vms):
        archetype = str(rng.choice(archetypes, p=weights))
        vcpus = int(rng.choice(spec.vcpu_choices, p=vcpu_weights))
        trace = _make_trace(archetype, rng, spec)
        if shared is not None:
            trace = CompositeTrace(
                [
                    (spec.shared_fraction, shared),
                    (1.0 - spec.shared_fraction, trace),
                ]
            )
        vm = VM(
            name="{}-{:04d}".format(name_prefix, i),
            vcpus=vcpus,
            mem_gb=vcpus * spec.mem_gb_per_vcpu,
            trace=trace,
            priority=_draw_priority(rng, spec.priority_weights),
        )
        fleet.append(vm)
    return fleet
