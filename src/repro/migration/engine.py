"""Migration execution: runs pre-copy migrations inside the simulation.

Responsibilities beyond the analytic model:

* throttling — a cluster-wide cap plus a per-host cap on concurrent
  migrations, as real hypervisor managers enforce;
* resource side-effects — CPU tax on both endpoints and a destination
  memory reservation for the full flight time;
* the atomic switch-over of the VM's placement at completion;
* a ledger the overhead experiments (T3/F7) read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.faults import MigrationFaultInjector
from repro.datacenter.host import Host
from repro.datacenter.vm import VM
from repro.migration.model import PreCopyModel
from repro.sim import Resource


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or aborted/failed) migration, for the overhead ledger.

    ``aborted`` marks a flight whose preconditions evaporated mid-copy
    (the VM departed, the destination went down); ``failed`` marks an
    injected mid-copy fault (see
    :class:`~repro.datacenter.faults.MigrationFaultModel`).  Either way
    the VM stayed on its source and the switch-over never happened.
    """

    vm_name: str
    src_name: str
    dst_name: str
    start_s: float
    duration_s: float
    downtime_s: float
    transferred_gb: float
    aborted: bool = False
    failed: bool = False


class MigrationEngine:
    """Schedules and executes live migrations on a cluster."""

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        model: Optional[PreCopyModel] = None,
        max_concurrent: int = 4,
        max_per_host: int = 2,
        trace: Optional["TraceBuffer"] = None,
        faults: Optional[MigrationFaultInjector] = None,
    ) -> None:
        if max_concurrent < 1 or max_per_host < 1:
            raise ValueError("concurrency caps must be >= 1")
        self.env = env
        self.model = model or PreCopyModel()
        self._cluster_slots = Resource(env, capacity=max_concurrent)
        self._host_slots: Dict[str, Resource] = {}
        self._max_per_host = max_per_host
        self._trace = trace
        #: Mid-copy failure injection (None = migrations cannot fail).
        self.faults = faults
        self.records: List[MigrationRecord] = []
        self.in_flight = 0
        self.completed = 0
        self.aborted = 0
        #: Injected mid-copy failures (rolled back; retry is the manager's job).
        self.failed = 0
        #: Total migrations admitted (drives unique trace migration ids).
        self.started = 0

    @property
    def can_fail(self) -> bool:
        """True when a mid-copy fault model is attached."""
        return self.faults is not None and self.faults.model.failure_rate > 0

    def _slots_for(self, host: Host) -> Resource:
        if host.name not in self._host_slots:
            self._host_slots[host.name] = Resource(
                self.env, capacity=self._max_per_host
            )
        return self._host_slots[host.name]

    def migrate(self, vm: VM, dst: Host) -> "Process":  # noqa: F821
        """Start a live migration of ``vm`` to ``dst``; returns the process.

        The process value is the :class:`MigrationRecord`.  Admission
        errors (wrong source, destination full) raise immediately, before
        any simulated time passes.
        """
        src = vm.host
        if src is None:
            raise RuntimeError("cannot migrate unplaced VM {}".format(vm.name))
        if src is dst:
            raise ValueError("source and destination are the same host")
        if vm.migrating:
            raise RuntimeError("{} is already migrating".format(vm.name))
        if not dst.is_active:
            raise RuntimeError(
                "destination {} is not active ({})".format(dst.name, dst.state.value)
            )
        if not dst.fits(vm):
            raise RuntimeError(
                "destination {} lacks memory for {}".format(dst.name, vm.name)
            )
        # Reserve immediately so concurrent planning can't oversubscribe
        # memory or violate anti-affinity with a second in-flight replica.
        dst.mem_reserved_gb += vm.mem_gb
        if vm.anti_affinity_group is not None:
            dst.groups_reserved.add(vm.anti_affinity_group)
        vm.migrating = True
        migration_id = "m{:06d}".format(self.started)
        self.started += 1
        if self._trace is not None:
            self._trace.migration_start(
                self.env.now, migration_id, vm.name, src.name, dst.name
            )
        return self.env.process(self._run(vm, src, dst, migration_id))

    @property
    def unfinished(self) -> int:
        """Migrations admitted but not yet finished or aborted."""
        return self.started - len(self.records)

    def _run(self, vm: VM, src: Host, dst: Host, migration_id: str = ""):
        outcome = self.model.solve(vm.mem_gb, vm.dirty_rate_gbps)
        # The fault draw happens at admission from a stream keyed on the
        # migration id, so the queueing below never shifts it.
        fail_fraction: Optional[float] = None
        if self.faults is not None:
            fail_fraction = self.faults.draw_failure(migration_id)
        start = self.env.now
        with self._cluster_slots.request() as cluster_slot:
            yield cluster_slot
            src_slots = self._slots_for(src)
            dst_slots = self._slots_for(dst)
            with src_slots.request() as src_slot:
                yield src_slot
                with dst_slots.request() as dst_slot:
                    yield dst_slot
                    self.in_flight += 1
                    src.migration_tax_cores += self.model.cpu_tax_cores
                    dst.migration_tax_cores += self.model.cpu_tax_cores
                    try:
                        if fail_fraction is not None:
                            yield self.env.timeout(
                                outcome.total_time_s * fail_fraction
                            )
                        else:
                            yield self.env.timeout(outcome.total_time_s)
                    finally:
                        src.migration_tax_cores -= self.model.cpu_tax_cores
                        dst.migration_tax_cores -= self.model.cpu_tax_cores
                        self.in_flight -= 1
                        dst.mem_reserved_gb -= vm.mem_gb
                        if vm.anti_affinity_group is not None:
                            dst.groups_reserved.discard(vm.anti_affinity_group)
                        vm.migrating = False

        failed = fail_fraction is not None
        # Abort if the VM departed / was moved out from under us, or the
        # destination stopped being a valid target mid-flight.  A failed
        # flight rolls back the same way: the VM never leaves the source.
        aborted = not failed and (vm.host is not src or not dst.is_active)
        if not failed and not aborted:
            src.remove(vm)
            dst.place(vm)
            vm.migration_count += 1
            self.completed += 1
        elif failed:
            self.failed += 1
        else:
            self.aborted += 1
        record = MigrationRecord(
            vm_name=vm.name,
            src_name=src.name,
            dst_name=dst.name,
            start_s=start,
            duration_s=self.env.now - start,
            # The switch-over never happened on a failed flight: no
            # downtime, and only the pre-fault share of the copy moved.
            downtime_s=0.0 if failed else outcome.downtime_s,
            transferred_gb=(
                outcome.transferred_gb * fail_fraction
                if fail_fraction is not None
                else outcome.transferred_gb
            ),
            aborted=aborted,
            failed=failed,
        )
        self.records.append(record)
        if self._trace is not None:
            if failed:
                self._trace.migration_failed(
                    self.env.now,
                    migration_id,
                    vm.name,
                    src.name,
                    dst.name,
                    elapsed_s=record.duration_s,
                    fail_fraction=fail_fraction if fail_fraction is not None else 0.0,
                )
            else:
                self._trace.migration_end(
                    self.env.now,
                    migration_id,
                    vm.name,
                    src.name,
                    dst.name,
                    aborted=aborted,
                    duration_s=record.duration_s,
                    downtime_s=record.downtime_s,
                    transferred_gb=record.transferred_gb,
                )
        return record

    # ------------------------------------------------------------------
    # Ledger queries
    # ------------------------------------------------------------------

    def migrations_per_hour(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self.completed / (horizon_s / 3600.0)

    def total_transferred_gb(self) -> float:
        return sum(r.transferred_gb for r in self.records if not r.aborted)

    def total_downtime_s(self) -> float:
        return sum(r.downtime_s for r in self.records if not r.aborted)

    def total_migration_time_s(self) -> float:
        return sum(r.duration_s for r in self.records if not r.aborted)
