"""Live-migration substrate: pre-copy timing model and execution engine."""

from repro.migration.model import PreCopyModel, PreCopyOutcome
from repro.migration.engine import MigrationEngine, MigrationRecord

__all__ = [
    "MigrationEngine",
    "MigrationRecord",
    "PreCopyModel",
    "PreCopyOutcome",
]
