"""Analytic pre-copy live-migration model.

Standard iterative pre-copy (Xen/VMware style): round 0 copies the full
memory image while the VM keeps running; each later round copies the pages
dirtied during the previous round; a final stop-and-copy round transfers
the residual working set during a brief downtime window.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PreCopyOutcome:
    """Result of solving the pre-copy recurrence for one migration."""

    total_time_s: float
    downtime_s: float
    transferred_gb: float
    rounds: int

    def __post_init__(self) -> None:
        if self.total_time_s < 0 or self.downtime_s < 0:
            raise ValueError("negative migration timing")


@dataclass(frozen=True)
class PreCopyModel:
    """Parameters of the migration fabric.

    Attributes:
        bandwidth_gbps: per-migration effective copy bandwidth (GB/s).
        stop_copy_threshold_gb: residual set small enough to stop-and-copy.
        max_rounds: cap on iterative rounds (forces convergence for VMs
            whose dirty rate approaches bandwidth).
        cpu_tax_cores: cores consumed on *each* of source and destination
            while a migration is in flight.
        slowdown: fractional performance loss of the migrating VM, booked
            by telemetry as violation time (``slowdown * total_time``).
    """

    bandwidth_gbps: float = 1.25  # ~10 GbE
    stop_copy_threshold_gb: float = 0.0625  # 64 MB
    max_rounds: int = 30
    cpu_tax_cores: float = 0.5
    slowdown: float = 0.1

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.stop_copy_threshold_gb <= 0:
            raise ValueError("threshold must be positive")
        if self.max_rounds < 1:
            raise ValueError("need at least one round")
        if not 0.0 <= self.slowdown < 1.0:
            raise ValueError("slowdown must be in [0, 1)")

    def solve(self, mem_gb: float, dirty_rate_gbps: float) -> PreCopyOutcome:
        """Solve the recurrence for a VM image of ``mem_gb``."""
        if mem_gb <= 0:
            raise ValueError("mem_gb must be positive")
        if dirty_rate_gbps < 0:
            raise ValueError("dirty rate must be non-negative")

        bw = self.bandwidth_gbps
        ratio = min(dirty_rate_gbps / bw, 0.99)
        remaining = mem_gb
        transferred = 0.0
        elapsed = 0.0
        rounds = 0
        while remaining > self.stop_copy_threshold_gb and rounds < self.max_rounds:
            round_time = remaining / bw
            transferred += remaining
            elapsed += round_time
            remaining = remaining * ratio
            rounds += 1
        downtime = remaining / bw
        transferred += remaining
        elapsed += downtime
        return PreCopyOutcome(
            total_time_s=elapsed,
            downtime_s=downtime,
            transferred_gb=transferred,
            rounds=rounds + 1,
        )

    def migration_time_s(self, mem_gb: float, dirty_rate_gbps: float) -> float:
        return self.solve(mem_gb, dirty_rate_gbps).total_time_s
