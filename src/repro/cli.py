"""Command-line interface.

Gives operators the paper's experiments without writing Python::

    python -m repro.cli characterize
    python -m repro.cli run --policy S3-PM --hosts 16 --vms 64 --hours 24
    python -m repro.cli compare --hosts 12 --vms 48 --hours 24 --workers 4
    python -m repro.cli faults S3-PM --rate 0,0.05,0.1,0.2 --mttr-h 4
    python -m repro.cli chaos S3-PM --migration-fail-rate 0.1 \
        --telemetry-staleness-s 60
    python -m repro.cli chaos S3-PM --plane neat --plane-delay-s 120 \
        --plane-dropout 0.2
    python -m repro.cli fuzz --campaign 100 --seed 7 --json
    python -m repro.cli fuzz shrink tests/corpus/behavior-safe-mode.json
    python -m repro.cli policies
    python -m repro.cli cache info

Comparisons fan out over a process pool (``--workers``) and memoize
finished scenarios in the disk result cache (disable per-invocation with
``--no-cache``, globally with ``REPRO_NO_CACHE=1``).  ``--profile``
prints a cProfile hot-spot table for the in-process run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis import render_series, render_table
from repro.core import ResultCache, ScenarioSpec, run_scenario, run_scenarios
from repro.core.atomicio import atomic_write_json, atomic_write_text
from repro.core.cache import default_cache_dir
from repro.core.policies import POLICIES, policy_by_name
from repro.datacenter import FaultModel, RepairModel
from repro.prototype import (
    PROTOTYPE_BLADE,
    breakeven_curve,
    format_characterization_table,
    make_prototype_blade_profile,
)
from repro.telemetry import SimReport
from repro.workload import FleetSpec


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hosts", type=int, default=16, help="cluster size")
    parser.add_argument("--vms", type=int, default=64, help="fleet size")
    parser.add_argument("--hours", type=float, default=24.0, help="simulated hours")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--churn", type=float, default=0.0, help="VM arrivals per hour (0 = off)"
    )
    parser.add_argument(
        "--shared-fraction",
        type=float,
        default=0.3,
        help="fraction of demand driven by one cluster-wide signal",
    )
    parser.add_argument(
        "--wake-latency",
        type=float,
        default=None,
        help="override the S3 resume latency in seconds",
    )
    parser.add_argument(
        "--wake-failure-rate",
        type=float,
        default=0.0,
        help="probability a wake attempt fails (fault injection)",
    )
    parser.add_argument(
        "--plane",
        choices=["centralized", "neat"],
        default="centralized",
        help="management-plane architecture: the monolithic decision loop "
        "or the decentralized detector/arbiter split (default: centralized)",
    )
    parser.add_argument(
        "--plane-delay-s",
        type=float,
        default=0.0,
        help="neat mode: delivery delay of the detector request channel "
        "in seconds (default: 0)",
    )
    parser.add_argument(
        "--plane-dropout",
        type=float,
        default=0.0,
        help="neat mode: probability a detector report is lost in the "
        "request channel (default: 0)",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="print demand / active-host / power sparklines",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report(s) as JSON instead of a table",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile hot-spot table to stderr and write a JSON "
        "profile artifact (forces in-process serial execution)",
    )
    parser.add_argument(
        "--profile-json",
        default="repro_profile.json",
        metavar="PATH",
        help="where --profile writes its machine-readable artifact "
        "(top-25 cumulative functions; default: %(default)s)",
    )


def _plane_config(config, args: argparse.Namespace):
    """Apply the ``--plane`` override family to a policy preset."""
    overrides = {}
    if args.plane != config.plane:
        overrides["plane"] = args.plane
    if args.plane_delay_s > 0:
        overrides["neat_request_delay_s"] = args.plane_delay_s
    if args.plane_dropout > 0:
        overrides["neat_request_dropout"] = args.plane_dropout
    return config.with_overrides(**overrides) if overrides else config


def _scenario_kwargs(args: argparse.Namespace) -> dict:
    horizon_s = args.hours * 3600.0
    kwargs = dict(
        n_hosts=args.hosts,
        horizon_s=horizon_s,
        seed=args.seed,
        fleet_spec=FleetSpec(
            n_vms=args.vms,
            horizon_s=min(horizon_s, 7 * 86_400.0),
            shared_fraction=args.shared_fraction,
        ),
        churn_rate_per_h=args.churn,
    )
    if args.wake_latency is not None:
        kwargs["profile"] = make_prototype_blade_profile(
            resume_latency_s=args.wake_latency
        )
    if args.wake_failure_rate > 0:
        kwargs["fault_model"] = FaultModel(wake_failure_rate=args.wake_failure_rate)
    return kwargs


def _print_timeline(result) -> None:
    for name in ("demand_cores", "active_hosts", "power_w"):
        print(render_series(result.sampler.series[name].points(), name=name))


def _profiled(fn, json_path: Optional[str] = None):
    """Run ``fn()`` under cProfile; print hot spots + wall time to stderr.

    When ``json_path`` is given, also write a machine-readable artifact —
    the top 25 functions by cumulative time — so hot-path regressions are
    diffable across commits without parsing the pstats text dump.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    out = fn()
    profiler.disable()
    elapsed = time.perf_counter() - started
    stats = pstats.Stats(profiler, stream=io.StringIO())
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(15)
    print(buf.getvalue(), file=sys.stderr)
    print("wall-clock: {:.3f} s".format(elapsed), file=sys.stderr)
    if json_path:
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][3],
            reverse=True,
        )[:25]
        artifact = {
            "wall_clock_s": elapsed,
            "total_calls": stats.total_calls,  # type: ignore[attr-defined]
            "top_cumulative": [
                {
                    "function": "{}:{}({})".format(*func),
                    "ncalls": nc,
                    "primitive_calls": cc,
                    "tottime_s": tt,
                    "cumtime_s": ct,
                }
                for func, (cc, nc, tt, ct, _callers) in rows
            ],
        }
        atomic_write_json(json_path, artifact)
        print("profile artifact: {}".format(json_path), file=sys.stderr)
    return out


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core import CheckpointError, resume_scenario

    service_kwargs = dict(
        checkpoint_every_s=args.checkpoint_every_s,
        checkpoint_dir=args.checkpoint_dir,
        stream=args.stream,
    )
    if args.resume:
        # The checkpoint carries the full scenario (policy, fleet, RNG
        # state); the scenario-shape flags are ignored on purpose so a
        # resume cannot silently diverge from the run it continues.
        runner = lambda: resume_scenario(args.resume, **service_kwargs)  # noqa: E731
    else:
        config = _plane_config(policy_by_name(args.policy), args)
        kwargs = _scenario_kwargs(args)
        kwargs.update(service_kwargs)
        kwargs["bounded_series"] = args.bounded
        runner = lambda: run_scenario(config, **kwargs)  # noqa: E731
    try:
        if args.profile:
            result = _profiled(runner, json_path=args.profile_json)
        else:
            result = runner()
    except (CheckpointError, OSError, ValueError) as exc:
        print("repro run: {}".format(exc), file=sys.stderr)
        return 2
    if result.checkpoints is not None:
        print(
            "checkpoints: {} saved, {} boundary(ies) skipped, dir {}".format(
                len(result.checkpoints.saved),
                result.checkpoints.skipped,
                result.checkpoints.directory,
            ),
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(result.report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(SimReport.header())
    print(result.report.row())
    if args.timeline:
        try:
            _print_timeline(result)
        except RuntimeError as exc:
            # Bounded series keep no samples — aggregates only.
            print("repro run: no timeline: {}".format(exc), file=sys.stderr)
    return 0


def cmd_branch(args: argparse.Namespace) -> int:
    """Fan a warm checkpoint out across policy variants."""
    from repro.core import CheckpointError, branch_scenarios, read_manifest

    try:
        names = [n.strip() for n in args.policies.split(",") if n.strip()]
        configs = [policy_by_name(name) for name in names]
    except (KeyError, ValueError) as exc:
        print(
            "repro branch: unknown policy in {!r} (choose from {})".format(
                args.policies, ", ".join(sorted(POLICIES))
            ),
            file=sys.stderr,
        )
        return 2
    if not configs:
        print("repro branch: --policies must name at least one preset",
              file=sys.stderr)
        return 2
    horizon_s = args.hours * 3600.0 if args.hours is not None else None
    try:
        manifest = read_manifest(args.checkpoint)
        results = branch_scenarios(
            args.checkpoint,
            configs,
            horizon_s=horizon_s,
            workers=args.workers,
            cache=not args.no_cache,
        )
    except (CheckpointError, OSError) as exc:
        print("repro branch: {}".format(exc), file=sys.stderr)
        return 2
    reports = [artifacts.report for artifacts in results]
    if args.json:
        import repro

        payload = {
            "version": repro.__version__,
            "checkpoint": str(args.checkpoint),
            "checkpoint_sha256": manifest["sha256"],
            "branched_at_s": manifest.get("sim_time_s"),
            "results": [report.to_dict() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        "branching {} (t = {:.0f} s, parent policy {}) across {} variant(s)".format(
            args.checkpoint,
            manifest.get("sim_time_s", float("nan")),
            manifest.get("policy", "?"),
            len(configs),
        ),
        file=sys.stderr,
    )
    print(SimReport.header())
    for report in reports:
        print(report.row())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    kwargs = _scenario_kwargs(args)
    names = args.policies.split(",") if args.policies else [
        "AlwaysOn", "S5-PM", "S3-PM", "Hybrid",
    ]
    specs = [
        ScenarioSpec(
            _plane_config(policy_by_name(name.strip()), args),
            kwargs=dict(kwargs),
        )
        for name in names
    ]
    workers = 1 if args.profile else args.workers
    runner = lambda: run_scenarios(  # noqa: E731
        specs, workers=workers, cache=not args.no_cache
    )
    results = (
        _profiled(runner, json_path=args.profile_json)
        if args.profile
        else runner()
    )
    reports = [artifacts.report for artifacts in results]
    if args.json:
        print(
            json.dumps(
                [report.to_dict() for report in reports], indent=2, sort_keys=True
            )
        )
        return 0
    print(SimReport.header())
    for report in reports:
        print(report.row())
    base = reports[0].energy_kwh
    print()
    print(
        render_table(
            ["policy", "normalized_energy", "undelivered"],
            [
                [r.policy, r.energy_kwh / base, r.violation_fraction]
                for r in reports
            ],
            title="normalized to {}".format(reports[0].policy),
        )
    )
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    print(format_characterization_table(PROTOTYPE_BLADE))
    print()
    gaps = [15, 30, 60, 120, 300, 600, 1800]
    curves = breakeven_curve(PROTOTYPE_BLADE, gaps)
    names = sorted(curves)
    rows = [
        [gap] + [curves[name][i][1] for name in names]
        for i, gap in enumerate(gaps)
    ]
    print(
        render_table(
            ["gap_s"] + names,
            rows,
            title="normalized energy vs idle gap (1.0 = stay idle)",
        )
    )
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(POLICIES):
        cfg = POLICIES[name]()
        rows.append(
            [
                name,
                "yes" if cfg.enable_power_mgmt else "no",
                cfg.park_state.value if cfg.enable_power_mgmt else "-",
                cfg.headroom,
                cfg.park_delay_rounds,
                cfg.predictor,
                "yes" if cfg.enable_dvfs else "no",
            ]
        )
    print(
        render_table(
            ["policy", "parking", "park_state", "headroom", "delay", "predictor",
             "dvfs"],
            rows,
            title="available policies",
        )
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the lint machinery is dev tooling, not needed for
    # the simulation fast path.
    from repro.tools.lint import (
        default_project_rules,
        default_rules,
        lint_paths,
        rules_for_ids,
    )

    if args.list_rules:
        rules = default_rules() + default_project_rules()
        rules.sort(key=lambda rule: rule.rule_id)
        print(
            render_table(
                ["rule", "title"],
                [[rule.rule_id, rule.title] for rule in rules],
                title="reprolint rules",
            )
        )
        return 0
    try:
        rules = rules_for_ids(args.rules.split(",")) if args.rules else None
        report = lint_paths(
            args.paths or ["src", "benchmarks"],
            rules=rules,
            cache=not args.no_cache,
            baseline=args.baseline,
            exclude=tuple(args.exclude or ()),
            workers=args.workers,
        )
    except (FileNotFoundError, ValueError) as exc:
        print("repro lint: {}".format(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif(rules or default_rules() + default_project_rules()))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.trace import TraceError, read_trace
    from repro.telemetry.validate import validate_trace

    if args.target == "check":
        if not args.path:
            print("repro trace check: a trace file path is required", file=sys.stderr)
            return 2
        try:
            log = read_trace(args.path)
        except TraceError as exc:
            print("repro trace check: {}".format(exc), file=sys.stderr)
            return 2
        outcome = validate_trace(log)
        if args.json:
            payload = outcome.to_dict()
            payload["path"] = args.path
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(outcome.render_text())
        return 0 if outcome.ok else 1

    if args.path:
        print(
            "repro trace: unexpected positional {!r} (a file path only goes "
            "with 'check')".format(args.path),
            file=sys.stderr,
        )
        return 2
    try:
        config = policy_by_name(args.target)
    except (KeyError, ValueError):
        print(
            "repro trace: unknown policy {!r} (choose from {} or 'check')".format(
                args.target, ", ".join(sorted(POLICIES))
            ),
            file=sys.stderr,
        )
        return 2
    config = _plane_config(config, args)
    kwargs = _scenario_kwargs(args)
    result = run_scenario(config, trace=True, **kwargs)
    buf = result.trace
    if buf is None:  # pragma: no cover - run_scenario(trace=True) guarantees it
        raise RuntimeError("run_scenario(trace=True) returned no trace")
    outcome = validate_trace(buf, report=result.report)
    if args.out:
        buf.write(args.out)
        print(
            "wrote {} event(s) to {} (sha256 {})".format(
                len(buf), args.out, buf.trace_hash()
            )
        )
        print(outcome.render_text())
        return 0 if outcome.ok else 1
    sys.stdout.write(buf.to_jsonl())
    print(outcome.render_text(), file=sys.stderr)
    return 0 if outcome.ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    """Resilience curve: one policy swept over wake-failure rates."""
    try:
        config = policy_by_name(args.policy)
    except (KeyError, ValueError):
        print(
            "repro faults: unknown policy {!r} (choose from {})".format(
                args.policy, ", ".join(sorted(POLICIES))
            ),
            file=sys.stderr,
        )
        return 2
    try:
        rates = [float(r) for r in args.rate.split(",") if r.strip()]
    except ValueError:
        print(
            "repro faults: --rate wants a comma-separated list of "
            "probabilities, got {!r}".format(args.rate),
            file=sys.stderr,
        )
        return 2
    if not rates or not all(0.0 <= r < 1.0 for r in rates):
        print("repro faults: rates must lie in [0, 1)", file=sys.stderr)
        return 2
    config = _plane_config(config, args)
    kwargs = _scenario_kwargs(args)
    kwargs.pop("fault_model", None)  # the sweep owns the fault model
    repair = RepairModel(mttr_s=args.mttr_h * 3600.0) if args.mttr_h > 0 else None
    specs = []
    for rate in rates:
        per_rate = dict(kwargs)
        if rate > 0:
            per_rate["fault_model"] = FaultModel(
                wake_failure_rate=rate,
                permanent_fraction=args.permanent_fraction,
                repair=repair,
            )
        specs.append(ScenarioSpec(config, kwargs=per_rate))
    results = run_scenarios(specs, workers=args.workers, cache=not args.no_cache)
    reports = [artifacts.report for artifacts in results]
    if args.json:
        import repro

        payload = {
            "version": repro.__version__,
            "seed": args.seed,
            "rates": rates,
            "results": [report.to_dict() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    base = reports[0].energy_kwh
    rows = []
    for rate, report in zip(rates, reports):
        ex = report.extra
        rows.append(
            [
                rate,
                report.energy_kwh,
                report.energy_kwh / base if base else float("nan"),
                report.violation_fraction,
                ex.get("violation_gold", 0.0),
                int(ex.get("wake_failures", 0)),
                int(ex.get("wake_retries", 0)),
                int(ex.get("blacklists", 0)),
                int(ex.get("hosts_repaired", 0)),
                int(ex.get("hosts_out_of_service", 0)),
            ]
        )
    print(
        render_table(
            ["rate", "energy_kwh", "norm_energy", "undelivered", "gold_viol",
             "failures", "retries", "blacklists", "repaired", "oos_end"],
            rows,
            title="{}: resilience vs wake-failure rate".format(config.name),
        )
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Degraded-plane scenario: migration faults plus stale telemetry."""
    from repro.datacenter.faults import MigrationFaultModel
    from repro.telemetry.validate import validate_trace
    from repro.telemetry.view import StalenessModel

    try:
        config = policy_by_name(args.policy)
    except (KeyError, ValueError):
        print(
            "repro chaos: unknown policy {!r} (choose from {})".format(
                args.policy, ", ".join(sorted(POLICIES))
            ),
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.migration_fail_rate < 1.0:
        print("repro chaos: --migration-fail-rate must lie in [0, 1)",
              file=sys.stderr)
        return 2
    if args.telemetry_staleness_s < 0:
        print("repro chaos: --telemetry-staleness-s must be >= 0",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.telemetry_dropout < 1.0:
        print("repro chaos: --telemetry-dropout must lie in [0, 1)",
              file=sys.stderr)
        return 2
    config = _plane_config(config, args)
    kwargs = _scenario_kwargs(args)
    kwargs.pop("fault_model", None)  # chaos owns the fault model
    if args.migration_fail_rate > 0 or args.wake_failure_rate > 0:
        migration = (
            MigrationFaultModel(failure_rate=args.migration_fail_rate)
            if args.migration_fail_rate > 0
            else None
        )
        kwargs["fault_model"] = FaultModel(
            wake_failure_rate=args.wake_failure_rate,
            migration=migration,
        )
    if args.telemetry_staleness_s > 0 or args.telemetry_dropout > 0:
        kwargs["telemetry_model"] = StalenessModel(
            delay_s=args.telemetry_staleness_s,
            dropout_rate=args.telemetry_dropout,
        )
    result = run_scenario(config, trace=True, **kwargs)
    buf = result.trace
    if buf is None:  # pragma: no cover - run_scenario(trace=True) guarantees it
        raise RuntimeError("run_scenario(trace=True) returned no trace")
    outcome = validate_trace(buf, report=result.report)
    if args.out:
        buf.write(args.out)
        print(
            "wrote {} event(s) to {} (sha256 {})".format(
                len(buf), args.out, buf.trace_hash()
            )
        )
    if args.json:
        import repro

        payload = result.report.to_dict()
        payload["version"] = repro.__version__
        payload["seed"] = args.seed
        payload["trace_hash"] = buf.trace_hash()
        payload["trace_check"] = outcome.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if outcome.ok else 1
    print(SimReport.header())
    print(result.report.row())
    ex = result.report.extra
    print()
    print(
        render_table(
            ["started", "completed", "aborted", "failed", "retries",
             "safe_enters", "safe_exits", "telemetry_drop"],
            [[
                int(ex.get("migrations_started", 0)),
                int(ex.get("migrations_completed", 0)),
                int(ex.get("migrations_aborted", 0)),
                int(ex.get("migrations_failed", 0)),
                int(ex.get("migration_retries", 0)),
                int(ex.get("safe_mode_enters", 0)),
                int(ex.get("safe_mode_exits", 0)),
                int(ex.get("telemetry_dropped", 0)),
            ]],
            title="{}: degraded-plane counters".format(config.name),
        )
    )
    print()
    print(outcome.render_text())
    return 0 if outcome.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Grammar-driven fuzzing: run a campaign, or shrink one spec file."""
    if args.action == "shrink":
        return _cmd_fuzz_shrink(args)
    if args.action != "campaign":
        print(
            "repro fuzz: unknown action {!r} (choose 'campaign' or "
            "'shrink')".format(args.action),
            file=sys.stderr,
        )
        return 2
    if args.path:
        print(
            "repro fuzz: unexpected positional {!r} (a spec file only goes "
            "with 'shrink')".format(args.path),
            file=sys.stderr,
        )
        return 2
    from repro.fuzz import run_campaign

    progress = None if args.json else lambda msg: print(msg, file=sys.stderr)
    try:
        summary = run_campaign(
            args.campaign,
            args.seed,
            workers=args.workers,
            cache=not args.no_cache,
            shrink=not args.no_shrink,
            max_shrink_evaluations=args.shrink_budget,
            progress=progress,
        )
    except ValueError as exc:
        print("repro fuzz: {}".format(exc), file=sys.stderr)
        return 2
    payload = json.dumps(summary.to_json_dict(), indent=2, sort_keys=True)
    if args.out:
        atomic_write_text(args.out, payload + "\n")
        print("wrote campaign summary to {}".format(args.out), file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(
            "campaign seed {}: {} scenario(s) — {} certified, {} violating, "
            "{} error".format(
                summary.seed, summary.campaign, summary.certified,
                summary.violating, summary.errored,
            )
        )
        histogram = summary.invariant_histogram()
        if histogram:
            print(
                render_table(
                    ["invariant", "violations"],
                    [[name, count] for name, count in histogram.items()],
                    title="violated invariant families",
                )
            )
        for result in summary.reproducers:
            print(
                "reproducer ({}, {} reduction(s), {} evaluation(s)):".format(
                    result.target, result.reductions, result.evaluations
                )
            )
            sys.stdout.write(result.spec.dumps())
        for label in summary.unshrinkable:
            print("unshrinkable: {} (raise --shrink-budget?)".format(label))
    if summary.unshrinkable:
        return 2
    return 0 if summary.ok else 1


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzSpec, run_spec, shrink_spec
    from repro.fuzz.campaign import _shrink_target
    from repro.fuzz.corpus import CORPUS_FORMAT, load_corpus_entry

    if not args.path:
        print("repro fuzz shrink: a spec JSON file is required", file=sys.stderr)
        return 2
    target = args.target
    try:
        with open(args.path) as fh:
            text = fh.read()
        document = json.loads(text)
        if isinstance(document, dict) and document.get("format") == CORPUS_FORMAT:
            entry = load_corpus_entry(args.path)
            spec = entry.spec
            if target is None:
                target = entry.target
        else:
            spec = FuzzSpec.loads(text)
    except (OSError, ValueError) as exc:
        print("repro fuzz shrink: {}".format(exc), file=sys.stderr)
        return 2
    cache = not args.no_cache
    if target is None:
        outcome = run_spec(spec, cache=cache)
        target = _shrink_target(outcome)
        if target is None:
            print(
                "repro fuzz shrink: spec certifies clean (behaviors: {}); "
                "pick an outcome id with --target".format(
                    ", ".join("extra:" + b for b in outcome.behaviors) or "none"
                ),
                file=sys.stderr,
            )
            return 2
        print("shrinking against {}".format(target), file=sys.stderr)
    try:
        result = shrink_spec(
            spec, target, max_evaluations=args.shrink_budget, cache=cache
        )
    except ValueError as exc:
        print("repro fuzz shrink: {}".format(exc), file=sys.stderr)
        return 2
    if args.out:
        atomic_write_text(args.out, result.spec.dumps())
        print("wrote shrunk spec to {}".format(args.out), file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(
            "{} in {} evaluation(s), {} reduction(s){}".format(
                "converged" if result.converged else "budget exhausted",
                result.evaluations,
                result.reductions,
                ":" if result.steps else " (already minimal)",
            )
        )
        for step in result.steps:
            print("  - {}".format(step))
        sys.stdout.write(result.spec.dumps())
    return 0 if result.converged else 1


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print("removed {} cached result(s) from {}".format(removed, cache.root))
        return 0
    entries = list(cache.entries())
    print("cache dir: {}".format(default_cache_dir()))
    print("entries:   {}".format(len(entries)))
    print("size:      {:.1f} KiB".format(cache.size_bytes() / 1024.0))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Agile, efficient virtualization power management "
            "with low-latency server power states' (ISCA 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one policy and print its report")
    run_parser.add_argument(
        "--policy", default="S3-PM", choices=sorted(POLICIES), help="policy preset"
    )
    run_parser.add_argument(
        "--checkpoint-every-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="write a crash-safe checkpoint every SECONDS of simulated "
        "time (requires --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for checkpoint files (ckpt-<sim-ms>.repro)",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="FROM",
        help="resume a previous run from this checkpoint file; the "
        "scenario-shape flags (--policy/--hosts/...) are ignored — the "
        "checkpoint defines the scenario",
    )
    run_parser.add_argument(
        "--stream",
        default=None,
        metavar="PATH",
        help="stream per-window metrics to this JSONL file as the run "
        "progresses (service mode; survives crashes via --resume)",
    )
    run_parser.add_argument(
        "--bounded",
        action="store_true",
        help="keep O(1) telemetry aggregates instead of full series "
        "(long-horizon service mode; disables --timeline)",
    )
    _add_scenario_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    branch_parser = sub.add_parser(
        "branch",
        help="fan a warm checkpoint out across policy variants "
        "(what-if continuation from a mid-run snapshot)",
    )
    branch_parser.add_argument(
        "checkpoint",
        help="checkpoint file written by 'repro run --checkpoint-every-s'",
    )
    branch_parser.add_argument(
        "--policies",
        default="S3-PM,S5-PM,Hybrid",
        help="comma-separated preset names to continue with "
        "(default: %(default)s)",
    )
    branch_parser.add_argument(
        "--hours",
        type=float,
        default=None,
        help="extend the horizon to this many simulated hours "
        "(default: the parent run's horizon)",
    )
    branch_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for the fan-out (default: REPRO_WORKERS "
        "or the CPU count)",
    )
    branch_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the scenario result cache",
    )
    branch_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the branch reports as JSON",
    )
    branch_parser.set_defaults(func=cmd_branch)

    compare_parser = sub.add_parser("compare", help="run several policies")
    compare_parser.add_argument(
        "--policies",
        default=None,
        help="comma-separated preset names (default: the standard four)",
    )
    compare_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for the comparison (default: REPRO_WORKERS "
        "or the CPU count)",
    )
    compare_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the scenario result cache",
    )
    _add_scenario_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    trace_parser = sub.add_parser(
        "trace",
        help="run one policy with decision tracing (JSONL), or validate a "
        "trace file ('trace check FILE')",
    )
    trace_parser.add_argument(
        "target",
        help="policy preset to run with tracing, or 'check' to validate an "
        "existing trace file",
    )
    trace_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="trace JSONL file to validate (only with 'check')",
    )
    trace_parser.add_argument(
        "--out",
        default=None,
        help="write the trace JSONL to this file instead of stdout",
    )
    _add_scenario_args(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    faults_parser = sub.add_parser(
        "faults",
        help="sweep a policy over wake-failure rates (resilience curve)",
    )
    faults_parser.add_argument(
        "policy",
        nargs="?",
        default="S3-PM",
        help="policy preset to stress (default: S3-PM)",
    )
    faults_parser.add_argument(
        "--rate",
        default="0,0.05,0.1,0.2",
        help="comma-separated wake-failure probabilities to sweep",
    )
    faults_parser.add_argument(
        "--permanent-fraction",
        type=float,
        default=0.2,
        help="fraction of failures that take the host out of service",
    )
    faults_parser.add_argument(
        "--mttr-h",
        type=float,
        default=4.0,
        help="mean operator repair time in hours (0 disables repair)",
    )
    faults_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for the sweep (default: REPRO_WORKERS "
        "or the CPU count)",
    )
    faults_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the scenario result cache",
    )
    _add_scenario_args(faults_parser)
    faults_parser.set_defaults(func=cmd_faults)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run one traced degraded-plane scenario (migration faults + "
        "stale telemetry) and certify its trace",
    )
    chaos_parser.add_argument(
        "policy",
        nargs="?",
        default="S3-PM",
        help="policy preset to stress (default: S3-PM)",
    )
    chaos_parser.add_argument(
        "--migration-fail-rate",
        type=float,
        default=0.1,
        help="probability a migration fails mid-copy (default: 0.1)",
    )
    chaos_parser.add_argument(
        "--telemetry-staleness-s",
        type=float,
        default=60.0,
        help="publication delay of the manager's telemetry view in seconds "
        "(default: 60)",
    )
    chaos_parser.add_argument(
        "--telemetry-dropout",
        type=float,
        default=0.0,
        help="probability an individual sampler tick is lost (default: 0)",
    )
    chaos_parser.add_argument(
        "--out",
        default=None,
        help="also write the trace JSONL to this file",
    )
    _add_scenario_args(chaos_parser)
    chaos_parser.set_defaults(func=cmd_chaos)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="run a grammar-driven fuzzing campaign, or delta-debug one "
        "spec file ('fuzz shrink FILE')",
    )
    fuzz_parser.add_argument(
        "action",
        nargs="?",
        default="campaign",
        help="'campaign' (default): generate, run and certify N scenarios; "
        "'shrink': minimize one spec JSON file",
    )
    fuzz_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="spec JSON file to minimize (only with 'shrink')",
    )
    fuzz_parser.add_argument(
        "--campaign",
        type=int,
        default=100,
        metavar="N",
        help="number of scenarios to generate (default: %(default)s)",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    fuzz_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: REPRO_WORKERS or the CPU count)",
    )
    fuzz_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical campaign summary / shrink result as JSON",
    )
    fuzz_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the scenario result cache",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violating specs without delta-debugging them",
    )
    fuzz_parser.add_argument(
        "--shrink-budget",
        type=int,
        default=256,
        metavar="N",
        help="max oracle evaluations per shrink session "
        "(default: %(default)s)",
    )
    fuzz_parser.add_argument(
        "--target",
        default=None,
        metavar="ID",
        help="outcome id to shrink against (shrink mode; default: the "
        "spec's first violated invariant or error id)",
    )
    fuzz_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the summary JSON (campaign) or the shrunk spec "
        "(shrink) to FILE",
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the scenario result cache"
    )
    cache_parser.add_argument(
        "action",
        choices=["info", "clear"],
        nargs="?",
        default="info",
        help="info: show location/entries/size; clear: delete every entry",
    )
    cache_parser.set_defaults(func=cmd_cache)

    lint_parser = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis pass (simulation invariants)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    lint_parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (sarif for CI annotation uploads)",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE (a --format json report); "
        "only new findings fail the run",
    )
    lint_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the pass-1 summary cache (REPRO_NO_LINT_CACHE=1 too)",
    )
    lint_parser.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="NAME",
        help="skip files whose path contains this directory name "
        "(repeatable; explicit file arguments are always linted)",
    )
    lint_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="analyze cache-miss files with this many threads "
        "(finding order is deterministic regardless)",
    )
    lint_parser.set_defaults(func=cmd_lint)

    char_parser = sub.add_parser(
        "characterize", help="print the power-state characterization tables"
    )
    char_parser.set_defaults(func=cmd_characterize)

    policies_parser = sub.add_parser("policies", help="list policy presets")
    policies_parser.set_defaults(func=cmd_policies)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # SIGINT, or SIGTERM remapped by the pool's graceful-signal
        # shim: workers are already drained and partial artifacts
        # discarded by the time this propagates.  130 = 128 + SIGINT,
        # the shell convention for "killed by Ctrl-C".
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
