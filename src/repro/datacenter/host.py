"""Physical host model: capacity, placement accounting, power binding."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional, Set, Tuple

if TYPE_CHECKING:
    import numpy as np

    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.faults import FaultInjector, FaultModel
from repro.datacenter.vm import Priority, VM
from repro.power.dvfs import DvfsModel
from repro.power.machine import HostPowerStateMachine
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState


def _latency_rng(seed: int, name: str) -> "np.random.Generator":
    """Per-host seeded RNG for transition-latency jitter."""
    from repro.core.seeding import stream_rng

    return stream_rng("latency", seed, name)


class InsufficientCapacity(RuntimeError):
    """Raised when a VM does not fit on a host."""


class HostNotActive(RuntimeError):
    """Raised when placing onto / parking a host in the wrong power state."""


class Host:
    """A server: CPU/memory capacity plus a power-state machine.

    Memory is a hard constraint (no overcommit by default); CPU is
    work-conserving — demand above capacity is *delivered pro rata* and the
    shortfall is what the telemetry layer books as a performance violation.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        profile: ServerPowerProfile,
        cores: float = 16.0,
        mem_gb: float = 128.0,
        initial_state: PowerState = PowerState.ACTIVE,
        mem_overcommit: float = 1.0,
        record_power_trace: bool = False,
        dvfs: Optional[DvfsModel] = None,
        dvfs_target: float = 0.8,
        faults: Optional[FaultModel] = None,
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        if cores <= 0 or mem_gb <= 0:
            raise ValueError("cores and mem_gb must be positive")
        if mem_overcommit < 1.0:
            raise ValueError("mem_overcommit must be >= 1.0")
        #: Installed by :class:`~repro.datacenter.cluster.Cluster`; fired on
        #: every change to a membership-relevant bit (power state,
        #: out-of-service, maintenance, evacuating) so the cluster's host
        #: index stays current without rescanning the inventory.  Created
        #: first: the flag-backed properties below notify through it.
        self._index_cb: Optional[Callable[["Host"], None]] = None
        self.env = env
        self.name = name
        self.cores = float(cores)
        self.mem_gb = float(mem_gb)
        self.mem_overcommit = mem_overcommit
        #: Optional wake-failure injection (created before the power
        #: machine so chaos brownouts can scale its wake latency).
        self._injector = (
            FaultInjector(faults, fault_seed, name, trace=trace) if faults else None
        )
        self.machine = HostPowerStateMachine(
            env,
            profile,
            initial_state=initial_state,
            record_trace=record_power_trace,
            latency_rng=_latency_rng(fault_seed, name),
            name=name,
            trace=trace,
            wake_latency_scale=(
                self._injector.wake_latency_scale
                if self._injector is not None and faults is not None
                and faults.chaos is not None
                else None
            ),
        )
        if not 0.0 < dvfs_target <= 1.0:
            raise ValueError("dvfs_target must be in (0, 1]")
        self.machine.on_change = self._membership_changed
        self.vms: Dict[str, VM] = {}
        # Incremental capacity accounting, maintained by place()/remove()
        # so the mem_used_gb / vcpus_committed properties are O(1) instead
        # of an O(VMs) sum on every placement probe.
        self._mem_used_gb = 0.0
        self._vcpus_committed = 0.0
        # Demand cache: (t, epoch) -> total demand.  The epoch bumps on any
        # change to what demand_cores(t) sums over (VM set, migration tax),
        # so repeated same-instant planning reads hit the cache.
        self._demand_epoch = 0
        self._demand_key: Optional[Tuple[float, int]] = None
        self._demand_value = 0.0
        self._resident_value = 0.0
        # Per-host batched grids (see ClusterSampler._build_grids): the
        # resident demand sum, clamped utilization, and interpolated
        # active wattage at upcoming sampler ticks.  Valid only while
        # ``_grid_tag`` still equals ``_demand_epoch`` — any placement or
        # migration-tax change invalidates them until the next chunk.
        self._grid_resident: Optional[list] = None
        self._grid_util: Optional[list] = None
        self._grid_power: Optional[list] = None
        self._grid_chunk = -1
        self._grid_tag = -1
        self._grid_i0 = 0
        self._grid_eps = 0.0
        # Live multiset of resident anti-affinity groups, maintained by
        # place()/remove() so group membership probes are O(1) instead of
        # an O(VMs) scan per candidate host.
        self._aa_groups: Dict[str, int] = {}
        #: Extra cores consumed by in-flight migrations (source+dest tax).
        self._migration_tax_cores = 0.0
        #: Memory held for inbound migrations, counted against mem_free_gb.
        self.mem_reserved_gb = 0.0
        #: Anti-affinity groups of inbound (in-flight) migrations.
        self.groups_reserved: Set[str] = set()
        #: Optional per-host DVFS governor (ondemand-style).
        self.dvfs = dvfs
        self.dvfs_target = dvfs_target
        #: Current relative frequency (1.0 = nominal).
        self.frequency = 1.0
        #: Count of wake attempts that failed (transient or permanent).
        self.wake_failures = 0
        # Membership flags (see the properties below): set when a permanent
        # failure takes the host out of management; while an operator holds
        # the host for service; and while the manager has it earmarked for
        # parking so placement stops assigning new VMs to it.
        self._out_of_service = False
        self._in_maintenance = False
        self._evacuating = False
        if trace is not None:
            trace.host_init(
                env.now, name, initial_state.value, self.cores, self.mem_gb
            )

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def profile(self) -> ServerPowerProfile:
        return self.machine.profile

    @property
    def state(self) -> PowerState:
        return self.machine.state

    @property
    def is_active(self) -> bool:
        # Flattened machine.is_active (placement probes hit this on every
        # candidate host): ACTIVE state with no transition in flight.
        machine = self.machine
        return machine._state is PowerState.ACTIVE and machine._transition is None

    @property
    def available_for_placement(self) -> bool:
        machine = self.machine
        return (
            machine._state is PowerState.ACTIVE
            and machine._transition is None
            and not self._evacuating
            and not self._in_maintenance
        )

    def _membership_changed(self) -> None:
        """Tell the owning cluster's host index to re-file this host."""
        if self._index_cb is not None:
            self._index_cb(self)

    @property
    def out_of_service(self) -> bool:
        """True when a permanent failure took the host out of management."""
        return self._out_of_service

    @out_of_service.setter
    def out_of_service(self, value: bool) -> None:
        self._out_of_service = value
        self._membership_changed()

    @property
    def in_maintenance(self) -> bool:
        """True while an operator holds the host for service."""
        return self._in_maintenance

    @in_maintenance.setter
    def in_maintenance(self, value: bool) -> None:
        self._in_maintenance = value
        self._membership_changed()

    @property
    def evacuating(self) -> bool:
        """True while the manager has this host earmarked for parking."""
        return self._evacuating

    @evacuating.setter
    def evacuating(self, value: bool) -> None:
        self._evacuating = value
        self._membership_changed()

    @property
    def migration_tax_cores(self) -> float:
        """Extra cores consumed by in-flight migrations (src+dst tax)."""
        return self._migration_tax_cores

    @migration_tax_cores.setter
    def migration_tax_cores(self, value: float) -> None:
        self._migration_tax_cores = value
        self._demand_epoch += 1

    @property
    def mem_used_gb(self) -> float:
        return self._mem_used_gb

    @property
    def mem_free_gb(self) -> float:
        return (
            self.mem_gb * self.mem_overcommit
            - self.mem_used_gb
            - self.mem_reserved_gb
        )

    @property
    def vcpus_committed(self) -> float:
        return self._vcpus_committed

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    def fits(self, vm: VM) -> bool:
        """True if ``vm``'s memory fits and anti-affinity is respected."""
        if vm.mem_gb > self.mem_free_gb + 1e-9:
            return False
        group = vm.anti_affinity_group
        if group is not None and (
            self.hosts_group(group) or group in self.groups_reserved
        ):
            return False
        return True

    def hosts_group(self, group: str) -> bool:
        """True if any resident VM belongs to ``group``."""
        return group in self._aa_groups

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, vm: VM) -> None:
        """Bind ``vm`` to this host (it must be unplaced and fit)."""
        if not self.is_active:
            raise HostNotActive(
                "cannot place {} on {} in state {}".format(
                    vm.name, self.name, self.state.value
                )
            )
        if vm.host is not None:
            raise RuntimeError(
                "{} is already placed on {}".format(vm.name, vm.host.name)
            )
        if not self.fits(vm):
            group = vm.anti_affinity_group
            if group is not None and (
                self.hosts_group(group) or group in self.groups_reserved
            ):
                reason = "anti-affinity group {!r} already on {}".format(
                    group, self.name
                )
            else:
                reason = "{} GB requested, {} GB free on {}".format(
                    vm.mem_gb, self.mem_free_gb, self.name
                )
            raise InsufficientCapacity(
                "{} does not fit: {}".format(vm.name, reason)
            )
        self.vms[vm.name] = vm
        self._mem_used_gb += vm.mem_gb
        self._vcpus_committed += vm.vcpus
        if vm.anti_affinity_group is not None:
            group = vm.anti_affinity_group
            self._aa_groups[group] = self._aa_groups.get(group, 0) + 1
        self._demand_epoch += 1
        vm.host = self

    def remove(self, vm: VM) -> None:
        """Unbind ``vm`` from this host."""
        if self.vms.pop(vm.name, None) is None:
            raise KeyError("{} is not on {}".format(vm.name, self.name))
        if self.vms:
            self._mem_used_gb -= vm.mem_gb
            self._vcpus_committed -= vm.vcpus
        else:
            # Snap back to exactly zero so float error cannot accumulate
            # across long place/remove (migration) sequences.
            self._mem_used_gb = 0.0
            self._vcpus_committed = 0.0
        if vm.anti_affinity_group is not None:
            count = self._aa_groups[vm.anti_affinity_group] - 1
            if count:
                self._aa_groups[vm.anti_affinity_group] = count
            else:
                del self._aa_groups[vm.anti_affinity_group]
        self._demand_epoch += 1
        vm.host = None

    # ------------------------------------------------------------------
    # Demand & power
    # ------------------------------------------------------------------

    def demand_cores(self, t: float) -> float:  # reprolint: hot
        """Total CPU demand at ``t``: VM demand plus migration tax.

        Memoized per ``(t, epoch)`` — the sampler and the manager's
        planning passes all read the same instant, so only the first call
        per tick walks the VM dict (summation order is unchanged, keeping
        the result bit-identical to the uncached expression).  The
        resident sum (without the tax) is cached alongside for
        :meth:`resident_demand_cores`.
        """
        key = (t, self._demand_epoch)
        if key == self._demand_key:
            return self._demand_value
        rg = self._grid_resident
        if rg is not None and self._grid_tag == self._demand_epoch:
            # Batched fast path: no placement/tax change since the
            # sampler built this host's resident-sum grid, so instants
            # on the tick lattice read the precomputed value (identical
            # floats — the grid is the same accumulation, per element).
            eps = self._grid_eps
            i = int(t / eps + 0.5)
            j = i - self._grid_i0
            if 0 <= j < len(rg) and i * eps == t:
                resident = rg[j]
                self._demand_key = key
                self._resident_value = resident
                self._demand_value = resident + self._migration_tax_cores
                return self._demand_value
        resident = 0.0
        for vm in self.vms.values():
            resident += vm.demand_cores(t)
        self._demand_key = key
        self._resident_value = resident
        self._demand_value = resident + self._migration_tax_cores
        return self._demand_value

    def resident_demand_cores(self, t: float) -> float:
        """Resident VM demand at ``t``, *without* the migration tax.

        Bit-identical to ``sum(vm.demand_cores(t) for vm in
        host.vms.values())`` — the expression the evacuation planner and
        load balancer previously evaluated per candidate host — but
        served from the same per-instant cache as :meth:`demand_cores`.
        """
        if (t, self._demand_epoch) != self._demand_key:
            self.demand_cores(t)
        return self._resident_value

    def shortfall_by_class(self, t: float) -> Dict[Priority, float]:
        """Undelivered cores per service class at ``t``.

        Delivery is strict-priority: the migration tax is served first
        (infrastructure work cannot be deprioritized), then GOLD, SILVER,
        BRONZE in order until capacity runs out.  A parked host with VMs
        delivers nothing.

        NOTE: :meth:`ClusterSampler.sample_once` inlines this arithmetic
        in its fused per-host walk; keep the two in lockstep.
        """
        demand_per_class: Dict[Priority, float] = {p: 0.0 for p in Priority}
        for vm in self.vms.values():
            demand_per_class[vm.priority] += vm.demand_cores(t)
        shortfall: Dict[Priority, float] = {p: 0.0 for p in Priority}
        if not self.is_active and self.vms:
            return demand_per_class
        capacity_left = max(0.0, self.cores - self._migration_tax_cores)
        if self.is_active and self.dvfs is not None:
            capacity_left = max(
                0.0, self.cores * self.frequency - self._migration_tax_cores
            )
        for priority in sorted(Priority):
            demand = demand_per_class[priority]
            delivered = min(demand, capacity_left)
            capacity_left -= delivered
            shortfall[priority] = demand - delivered
        return shortfall

    def refresh_utilization(self, t: float) -> float:
        """Re-sample demand, push utilization into the power machine.

        Returns the *shortfall* in cores (demand beyond capacity) so the
        caller can book performance violations.  A parked host with VMs is
        a management-layer bug, guarded against in ``park()``.

        When a DVFS governor is attached, the frequency is re-selected
        each refresh (ondemand-style): the lowest P-state that keeps load
        under ``dvfs_target`` of the scaled capacity.  Demand beyond the
        scaled capacity is a shortfall — but the governor never selects a
        frequency that creates one if nominal frequency avoids it.

        NOTE: :meth:`ClusterSampler.sample_once` inlines this refresh in
        its fused per-host walk; keep the two in lockstep.
        """
        demand = self.demand_cores(t)
        if self.machine.is_active and self.dvfs is not None:
            self.frequency = self.dvfs.level_for(
                demand / self.cores, target=self.dvfs_target
            )
        elif self.dvfs is not None:
            self.frequency = self.dvfs.levels[0]
        capacity = self.cores * (self.frequency if self.dvfs else 1.0)
        shortfall = max(0.0, demand - capacity)
        utilization = min(demand / self.cores, 1.0)
        if self.machine.is_active:
            scale = self.dvfs.power_scale(self.frequency) if self.dvfs else 1.0
            self.machine.set_utilization(utilization, dynamic_scale=scale)
        else:
            self.machine.set_utilization(0.0)
            if self.vms:
                # Host is unavailable: nothing is delivered.
                shortfall = demand
        return shortfall

    def power_w(self) -> float:
        return self.machine.power_w()

    def energy_j(self) -> float:
        return self.machine.energy_j()

    # ------------------------------------------------------------------
    # Power-state changes (generators for env.process)
    # ------------------------------------------------------------------

    def park(self, state: PowerState) -> Generator["Event", Any, PowerState]:
        """Transition generator: ACTIVE → parked ``state``.

        The host must be empty — the management layer evacuates first.
        """
        if self.vms:
            raise HostNotActive(
                "refusing to park {} with {} VMs resident".format(
                    self.name, len(self.vms)
                )
            )
        if not state.is_parked:
            raise ValueError("park target must be a parked state")
        return self.machine.transition_to(state)

    def wake(self) -> Generator["Event", Any, PowerState]:
        """Transition generator: parked → ACTIVE.

        With fault injection attached, the attempt may fail: it consumes
        the full resume latency and energy, then leaves the host parked
        (and possibly permanently out of service).  The generator's return
        value is the resulting state, so callers can detect the failure.
        """
        if self.out_of_service:
            raise HostNotActive("{} is out of service".format(self.name))
        fail = (
            self._injector.draw_wake_failure(self.env.now)
            if self._injector
            else False
        )
        if fail:
            self.wake_failures += 1
            if self._injector.draw_permanent(self.env.now):
                return self._failed_wake_permanent()
        return self.machine.transition_to(PowerState.ACTIVE, fail=fail)

    def _failed_wake_permanent(self) -> Generator["Event", Any, PowerState]:
        result = yield self.env.process(
            self.machine.transition_to(PowerState.ACTIVE, fail=True)
        )
        self.out_of_service = True
        return result

    # ------------------------------------------------------------------
    # Repair (operator service after a permanent failure)
    # ------------------------------------------------------------------

    def repair_delay_s(self) -> Optional[float]:
        """Draw the operator repair delay, or None when repair is disabled.

        Each call draws a fresh delay from the injector's dedicated repair
        RNG stream, so delays are deterministic per (seed, host, failure
        ordinal) and independent of the failure draws.
        """
        if self._injector is None:
            return None
        return self._injector.repair_delay_s()

    def repair(self) -> None:
        """Return a permanently failed host to service.

        The host stays in whatever parked state the failed wake left it
        in; it simply becomes eligible for management (waking) again.  The
        cumulative :attr:`wake_failures` count is *not* reset — it is an
        end-of-run reconciliation fact, not retry state.
        """
        if not self.out_of_service:
            raise RuntimeError(
                "{} is not out of service; nothing to repair".format(self.name)
            )
        self.out_of_service = False

    def __repr__(self) -> str:
        return "<Host {} {} vms={} {:.0f}W>".format(
            self.name, self.state.value, len(self.vms), self.power_w()
        )
