"""Physical host model: capacity, placement accounting, power binding."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Set

if TYPE_CHECKING:
    import numpy as np

    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.faults import FaultInjector, FaultModel
from repro.datacenter.vm import Priority, VM
from repro.power.dvfs import DvfsModel
from repro.power.machine import HostPowerStateMachine
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState


def _latency_rng(seed: int, name: str) -> "np.random.Generator":
    """Per-host seeded RNG for transition-latency jitter."""
    import zlib

    import numpy as np

    digest = zlib.crc32("latency:{}:{}".format(seed, name).encode())
    return np.random.default_rng(digest)


class InsufficientCapacity(RuntimeError):
    """Raised when a VM does not fit on a host."""


class HostNotActive(RuntimeError):
    """Raised when placing onto / parking a host in the wrong power state."""


class Host:
    """A server: CPU/memory capacity plus a power-state machine.

    Memory is a hard constraint (no overcommit by default); CPU is
    work-conserving — demand above capacity is *delivered pro rata* and the
    shortfall is what the telemetry layer books as a performance violation.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        profile: ServerPowerProfile,
        cores: float = 16.0,
        mem_gb: float = 128.0,
        initial_state: PowerState = PowerState.ACTIVE,
        mem_overcommit: float = 1.0,
        record_power_trace: bool = False,
        dvfs: Optional[DvfsModel] = None,
        dvfs_target: float = 0.8,
        faults: Optional[FaultModel] = None,
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        if cores <= 0 or mem_gb <= 0:
            raise ValueError("cores and mem_gb must be positive")
        if mem_overcommit < 1.0:
            raise ValueError("mem_overcommit must be >= 1.0")
        self.env = env
        self.name = name
        self.cores = float(cores)
        self.mem_gb = float(mem_gb)
        self.mem_overcommit = mem_overcommit
        #: Optional wake-failure injection (created before the power
        #: machine so chaos brownouts can scale its wake latency).
        self._injector = (
            FaultInjector(faults, fault_seed, name, trace=trace) if faults else None
        )
        self.machine = HostPowerStateMachine(
            env,
            profile,
            initial_state=initial_state,
            record_trace=record_power_trace,
            latency_rng=_latency_rng(fault_seed, name),
            name=name,
            trace=trace,
            wake_latency_scale=(
                self._injector.wake_latency_scale
                if self._injector is not None and faults is not None
                and faults.chaos is not None
                else None
            ),
        )
        if not 0.0 < dvfs_target <= 1.0:
            raise ValueError("dvfs_target must be in (0, 1]")
        self.vms: Dict[str, VM] = {}
        # Incremental capacity accounting, maintained by place()/remove()
        # so the mem_used_gb / vcpus_committed properties are O(1) instead
        # of an O(VMs) sum on every placement probe.
        self._mem_used_gb = 0.0
        self._vcpus_committed = 0.0
        #: Extra cores consumed by in-flight migrations (source+dest tax).
        self.migration_tax_cores = 0.0
        #: Memory held for inbound migrations, counted against mem_free_gb.
        self.mem_reserved_gb = 0.0
        #: Anti-affinity groups of inbound (in-flight) migrations.
        self.groups_reserved: Set[str] = set()
        #: Optional per-host DVFS governor (ondemand-style).
        self.dvfs = dvfs
        self.dvfs_target = dvfs_target
        #: Current relative frequency (1.0 = nominal).
        self.frequency = 1.0
        #: Count of wake attempts that failed (transient or permanent).
        self.wake_failures = 0
        #: Set when a permanent failure takes the host out of management.
        self.out_of_service = False
        #: Set while an operator holds the host for service; the manager
        #: will not place onto it or wake it until maintenance ends.
        self.in_maintenance = False
        #: Set by the manager while the host is earmarked for parking, so
        #: the placement layer stops assigning new VMs to it.
        self.evacuating = False
        if trace is not None:
            trace.host_init(
                env.now, name, initial_state.value, self.cores, self.mem_gb
            )

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def profile(self) -> ServerPowerProfile:
        return self.machine.profile

    @property
    def state(self) -> PowerState:
        return self.machine.state

    @property
    def is_active(self) -> bool:
        return self.machine.is_active

    @property
    def available_for_placement(self) -> bool:
        return self.is_active and not self.evacuating and not self.in_maintenance

    @property
    def mem_used_gb(self) -> float:
        return self._mem_used_gb

    @property
    def mem_free_gb(self) -> float:
        return (
            self.mem_gb * self.mem_overcommit
            - self.mem_used_gb
            - self.mem_reserved_gb
        )

    @property
    def vcpus_committed(self) -> float:
        return self._vcpus_committed

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    def fits(self, vm: VM) -> bool:
        """True if ``vm``'s memory fits and anti-affinity is respected."""
        if vm.mem_gb > self.mem_free_gb + 1e-9:
            return False
        group = vm.anti_affinity_group
        if group is not None and (
            self.hosts_group(group) or group in self.groups_reserved
        ):
            return False
        return True

    def hosts_group(self, group: str) -> bool:
        """True if any resident VM belongs to ``group``."""
        return any(
            resident.anti_affinity_group == group for resident in self.vms.values()
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, vm: VM) -> None:
        """Bind ``vm`` to this host (it must be unplaced and fit)."""
        if not self.is_active:
            raise HostNotActive(
                "cannot place {} on {} in state {}".format(
                    vm.name, self.name, self.state.value
                )
            )
        if vm.host is not None:
            raise RuntimeError(
                "{} is already placed on {}".format(vm.name, vm.host.name)
            )
        if not self.fits(vm):
            group = vm.anti_affinity_group
            if group is not None and (
                self.hosts_group(group) or group in self.groups_reserved
            ):
                reason = "anti-affinity group {!r} already on {}".format(
                    group, self.name
                )
            else:
                reason = "{} GB requested, {} GB free on {}".format(
                    vm.mem_gb, self.mem_free_gb, self.name
                )
            raise InsufficientCapacity(
                "{} does not fit: {}".format(vm.name, reason)
            )
        self.vms[vm.name] = vm
        self._mem_used_gb += vm.mem_gb
        self._vcpus_committed += vm.vcpus
        vm.host = self

    def remove(self, vm: VM) -> None:
        """Unbind ``vm`` from this host."""
        if self.vms.pop(vm.name, None) is None:
            raise KeyError("{} is not on {}".format(vm.name, self.name))
        if self.vms:
            self._mem_used_gb -= vm.mem_gb
            self._vcpus_committed -= vm.vcpus
        else:
            # Snap back to exactly zero so float error cannot accumulate
            # across long place/remove (migration) sequences.
            self._mem_used_gb = 0.0
            self._vcpus_committed = 0.0
        vm.host = None

    # ------------------------------------------------------------------
    # Demand & power
    # ------------------------------------------------------------------

    def demand_cores(self, t: float) -> float:
        """Total CPU demand at ``t``: VM demand plus migration tax."""
        return (
            sum(vm.demand_cores(t) for vm in self.vms.values())
            + self.migration_tax_cores
        )

    def shortfall_by_class(self, t: float) -> Dict[Priority, float]:
        """Undelivered cores per service class at ``t``.

        Delivery is strict-priority: the migration tax is served first
        (infrastructure work cannot be deprioritized), then GOLD, SILVER,
        BRONZE in order until capacity runs out.  A parked host with VMs
        delivers nothing.
        """
        demand_per_class: Dict[Priority, float] = {p: 0.0 for p in Priority}
        for vm in self.vms.values():
            demand_per_class[vm.priority] += vm.demand_cores(t)
        shortfall: Dict[Priority, float] = {p: 0.0 for p in Priority}
        if not self.is_active and self.vms:
            return demand_per_class
        capacity_left = max(0.0, self.cores - self.migration_tax_cores)
        if self.is_active and self.dvfs is not None:
            capacity_left = max(
                0.0, self.cores * self.frequency - self.migration_tax_cores
            )
        for priority in sorted(Priority):
            demand = demand_per_class[priority]
            delivered = min(demand, capacity_left)
            capacity_left -= delivered
            shortfall[priority] = demand - delivered
        return shortfall

    def refresh_utilization(self, t: float) -> float:
        """Re-sample demand, push utilization into the power machine.

        Returns the *shortfall* in cores (demand beyond capacity) so the
        caller can book performance violations.  A parked host with VMs is
        a management-layer bug, guarded against in ``park()``.

        When a DVFS governor is attached, the frequency is re-selected
        each refresh (ondemand-style): the lowest P-state that keeps load
        under ``dvfs_target`` of the scaled capacity.  Demand beyond the
        scaled capacity is a shortfall — but the governor never selects a
        frequency that creates one if nominal frequency avoids it.
        """
        demand = self.demand_cores(t)
        if self.machine.is_active and self.dvfs is not None:
            self.frequency = self.dvfs.level_for(
                demand / self.cores, target=self.dvfs_target
            )
        elif self.dvfs is not None:
            self.frequency = self.dvfs.levels[0]
        capacity = self.cores * (self.frequency if self.dvfs else 1.0)
        shortfall = max(0.0, demand - capacity)
        utilization = min(demand / self.cores, 1.0)
        if self.machine.is_active:
            scale = self.dvfs.power_scale(self.frequency) if self.dvfs else 1.0
            self.machine.set_utilization(utilization, dynamic_scale=scale)
        else:
            self.machine.set_utilization(0.0)
            if self.vms:
                # Host is unavailable: nothing is delivered.
                shortfall = demand
        return shortfall

    def power_w(self) -> float:
        return self.machine.power_w()

    def energy_j(self) -> float:
        return self.machine.energy_j()

    # ------------------------------------------------------------------
    # Power-state changes (generators for env.process)
    # ------------------------------------------------------------------

    def park(self, state: PowerState) -> Generator["Event", Any, PowerState]:
        """Transition generator: ACTIVE → parked ``state``.

        The host must be empty — the management layer evacuates first.
        """
        if self.vms:
            raise HostNotActive(
                "refusing to park {} with {} VMs resident".format(
                    self.name, len(self.vms)
                )
            )
        if not state.is_parked:
            raise ValueError("park target must be a parked state")
        return self.machine.transition_to(state)

    def wake(self) -> Generator["Event", Any, PowerState]:
        """Transition generator: parked → ACTIVE.

        With fault injection attached, the attempt may fail: it consumes
        the full resume latency and energy, then leaves the host parked
        (and possibly permanently out of service).  The generator's return
        value is the resulting state, so callers can detect the failure.
        """
        if self.out_of_service:
            raise HostNotActive("{} is out of service".format(self.name))
        fail = (
            self._injector.draw_wake_failure(self.env.now)
            if self._injector
            else False
        )
        if fail:
            self.wake_failures += 1
            if self._injector.draw_permanent(self.env.now):
                return self._failed_wake_permanent()
        return self.machine.transition_to(PowerState.ACTIVE, fail=fail)

    def _failed_wake_permanent(self) -> Generator["Event", Any, PowerState]:
        result = yield self.env.process(
            self.machine.transition_to(PowerState.ACTIVE, fail=True)
        )
        self.out_of_service = True
        return result

    # ------------------------------------------------------------------
    # Repair (operator service after a permanent failure)
    # ------------------------------------------------------------------

    def repair_delay_s(self) -> Optional[float]:
        """Draw the operator repair delay, or None when repair is disabled.

        Each call draws a fresh delay from the injector's dedicated repair
        RNG stream, so delays are deterministic per (seed, host, failure
        ordinal) and independent of the failure draws.
        """
        if self._injector is None:
            return None
        return self._injector.repair_delay_s()

    def repair(self) -> None:
        """Return a permanently failed host to service.

        The host stays in whatever parked state the failed wake left it
        in; it simply becomes eligible for management (waking) again.  The
        cumulative :attr:`wake_failures` count is *not* reset — it is an
        end-of-run reconciliation fact, not retry state.
        """
        if not self.out_of_service:
            raise RuntimeError(
                "{} is not out of service; nothing to repair".format(self.name)
            )
        self.out_of_service = False

    def __repr__(self) -> str:
        return "<Host {} {} vms={} {:.0f}W>".format(
            self.name, self.state.value, len(self.vms), self.power_w()
        )
