"""Virtualized-datacenter model: VMs, hosts, and the cluster.

CPU is measured in *cores* (floats; a VM demands a time-varying fraction of
its configured vCPUs), memory in GB.  Hosts bind a power profile to a
:class:`~repro.power.HostPowerStateMachine`; the cluster provides aggregate
capacity/demand/power accounting that the management layer and the
telemetry sampler read.
"""

from repro.datacenter.vm import Priority, VM
from repro.datacenter.host import Host, HostNotActive, InsufficientCapacity
from repro.datacenter.cluster import Cluster
from repro.datacenter.faults import FaultInjector, FaultModel

__all__ = [
    "Cluster",
    "FaultInjector",
    "FaultModel",
    "Host",
    "HostNotActive",
    "InsufficientCapacity",
    "Priority",
    "VM",
]
