"""Virtualized-datacenter model: VMs, hosts, and the cluster.

CPU is measured in *cores* (floats; a VM demands a time-varying fraction of
its configured vCPUs), memory in GB.  Hosts bind a power profile to a
:class:`~repro.power.HostPowerStateMachine`; the cluster provides aggregate
capacity/demand/power accounting that the management layer and the
telemetry sampler read.
"""

from repro.datacenter.vm import Priority, VM
from repro.datacenter.host import Host, HostNotActive, InsufficientCapacity
from repro.datacenter.cluster import Cluster
from repro.datacenter.faults import (
    Brownout,
    ChaosSchedule,
    FailureBurst,
    FaultInjector,
    FaultModel,
    MigrationFaultInjector,
    MigrationFaultModel,
    RepairModel,
    brownout_window,
    burst_window,
)
from repro.datacenter.recovery import HostWakeRecord, WakeScoreboard

__all__ = [
    "Brownout",
    "ChaosSchedule",
    "Cluster",
    "FailureBurst",
    "FaultInjector",
    "FaultModel",
    "Host",
    "HostNotActive",
    "HostWakeRecord",
    "InsufficientCapacity",
    "MigrationFaultInjector",
    "MigrationFaultModel",
    "Priority",
    "RepairModel",
    "VM",
    "WakeScoreboard",
    "brownout_window",
    "burst_window",
]
