"""Virtual machine model."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:
    from repro.datacenter.host import Host


class DemandTrace(Protocol):
    """Anything with ``at(t) -> float``: a demand fraction over time.

    The concrete traces live in :mod:`repro.workload.traces`; this
    protocol keeps the datacenter layer independent of the workload
    layer.
    """

    def at(self, t: float) -> float: ...


class Priority(enum.IntEnum):
    """Service class; lower value = higher priority.

    When a host is overloaded, CPU is delivered strictly by class: GOLD
    first, then SILVER, then BRONZE — so capacity shortfalls concentrate
    on the lowest class, mirroring enterprise resource-pool shares.
    """

    GOLD = 0
    SILVER = 1
    BRONZE = 2


class VM:
    """A virtual machine with a time-varying CPU demand.

    Attributes:
        name: unique identifier.
        vcpus: configured virtual CPUs (the demand ceiling, in cores).
        mem_gb: configured memory; the live-migration model transfers it.
        trace: object with ``at(t) -> float`` in [0, 1] giving the fraction
            of ``vcpus`` demanded at simulated time ``t``.
        priority: service class (default BRONZE — lowest).
    """

    #: Derived/runtime state the scenario cache must not hash: the demand
    #: memo is a pure cache, and ``host`` binding is an execution outcome.
    __cache_ignore__ = (
        "_demand_at_t",
        "_demand_value",
        "_demand_grid",
        "_demand_grid_chunk",
        "_demand_grid_i0",
        "_demand_grid_epoch",
        "host",
        "migrating",
    )

    def __init__(
        self,
        name: str,
        vcpus: float,
        mem_gb: float,
        trace: DemandTrace,
        priority: Priority = Priority.BRONZE,
    ) -> None:
        if vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if mem_gb <= 0:
            raise ValueError("mem_gb must be positive")
        self.name = name
        self.vcpus = float(vcpus)
        self.mem_gb = float(mem_gb)
        self.trace = trace
        self.priority = Priority(priority)
        #: HA constraint: VMs sharing a group must not share a host.
        self.anti_affinity_group: Optional[str] = None
        #: Host currently running the VM (maintained by Host.place/remove).
        self.host: Optional["Host"] = None
        #: True while a live migration of this VM is in flight.
        self.migrating = False
        #: Dirty-page rate in GB/s, used by the pre-copy migration model.
        self.dirty_rate_gbps = 0.05
        #: Cumulative count of completed migrations of this VM.
        self.migration_count = 0
        # Demand memo: traces are deterministic in t, and within one epoch
        # the sampler, watchdog and consolidation loops all ask for demand
        # at the same instant — evaluate the trace once per distinct t.
        self._demand_at_t: Optional[float] = None
        self._demand_value = 0.0
        #: Batched demand grid (see ClusterSampler._build_grids): demand
        #: in cores at consecutive sampler ticks ``i0, i0+1, ...`` of
        #: width ``epoch`` seconds, plus the chunk id it belongs to.
        #: ``None``/-1 means "no grid"; the scalar path is always the
        #: source of truth and the grid is bit-identical by construction.
        #: Grids are keyed to absolute tick indices, so even a grid from
        #: an old chunk stays semantically valid (traces are immutable).
        self._demand_grid: Optional[list] = None
        self._demand_grid_chunk = -1
        self._demand_grid_i0 = 0
        self._demand_grid_epoch = 0.0

    def demand_cores(self, t: float) -> float:
        """CPU demand at time ``t``, in cores (clamped to [0, vcpus])."""
        if t == self._demand_at_t:
            return self._demand_value
        grid = self._demand_grid
        if grid is not None:
            # Batched-grid fast path: instants that sit exactly on the
            # sampler's tick lattice read the precomputed chunk instead
            # of dispatching into the trace.  The exactness guard means
            # any off-lattice instant falls through to the scalar path.
            eps = self._demand_grid_epoch
            i = int(t / eps + 0.5)
            j = i - self._demand_grid_i0
            if 0 <= j < len(grid) and i * eps == t:
                value = grid[j]
                self._demand_at_t = t
                self._demand_value = value
                return value
        fraction = self.trace.at(t)
        if fraction < 0:
            raise ValueError(
                "trace for {} returned negative demand {}".format(self.name, fraction)
            )
        value = min(fraction, 1.0) * self.vcpus
        self._demand_at_t = t
        self._demand_value = value
        return value

    @property
    def placed(self) -> bool:
        return self.host is not None

    def __repr__(self) -> str:
        where = self.host.name if self.host else "unplaced"
        return "<VM {} {}vcpu {}GB on {}>".format(
            self.name, self.vcpus, self.mem_gb, where
        )
