"""Cluster: host inventory and aggregate accounting.

Host *views* (active, placeable, parked, …) are served from an
incremental index: each category keeps a position-sorted list of host
indices, re-filed by a callback the hosts fire at every membership
mutation (power-transition start/end, out-of-service, maintenance,
evacuating).  Views therefore cost O(category size) instead of an
O(hosts) predicate scan, while preserving exactly the inventory
iteration order — and hence the float accumulation order — of the
scans they replace.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.sim.environment import Environment
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.faults import FaultModel
from repro.datacenter.host import Host
from repro.datacenter.vm import VM
from repro.power.dvfs import DvfsModel
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState


#: Membership bits for the incremental host index.
_B_ACTIVE = 1
_B_PLACEABLE = 2
_B_PARKED = 4
_B_OOS = 8
_B_TRANSIT = 16
_B_WAKING = 32
_B_EVACUATING = 64


class Cluster:
    """A managed pool of hosts and the VMs running on them."""

    def __init__(self, env: "Environment", hosts: Iterable[Host]) -> None:
        self.env = env
        self.hosts: List[Host] = list(hosts)
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError("duplicate host names")
        if not self.hosts:
            raise ValueError("cluster needs at least one host")
        self._vms: Dict[str, VM] = {}
        # Registry epoch for the cluster-level demand cache: bumps on
        # admit/retire so a cached total is never served across a
        # membership change.
        self._vm_epoch = 0
        self._demand_key: Optional[Tuple[float, int]] = None
        self._demand_value = 0.0
        # Registry-total demand grid, installed by the sampler's chunk
        # build (see ClusterSampler._build_grids): the precomputed
        # registry-order totals at upcoming tick instants, valid while
        # ``_demand_grid_tag`` still equals ``_vm_epoch``.
        self._demand_grid: Optional[List[float]] = None
        self._demand_grid_i0 = 0
        self._demand_grid_eps = 0.0
        self._demand_grid_tag: Optional[int] = None
        # Static inventory aggregates (the host list never changes after
        # construction; per-host cores/profiles are construction-time
        # constants).  Computed with the same expressions — and the same
        # accumulation order — as the scans they replace.
        self._total_capacity_cores = sum(h.cores for h in self.hosts)
        self._min_host_cores = min(h.cores for h in self.hosts)
        self._max_peak_w = max(h.profile.peak_w for h in self.hosts)
        self._host_cores_desc: List[float] = sorted(
            (h.cores for h in self.hosts), reverse=True
        )
        # Incremental host index: per-category position-sorted lists plus
        # the current membership bitmask per host position.
        self._active: List[int] = []
        self._placeable: List[int] = []
        self._parked: List[int] = []
        self._oos: List[int] = []
        self._transitioning: List[int] = []
        self._waking: List[int] = []
        self._evacuating: List[int] = []
        self._index_lists: Tuple[Tuple[int, List[int]], ...] = (
            (_B_ACTIVE, self._active),
            (_B_PLACEABLE, self._placeable),
            (_B_PARKED, self._parked),
            (_B_OOS, self._oos),
            (_B_TRANSIT, self._transitioning),
            (_B_WAKING, self._waking),
            (_B_EVACUATING, self._evacuating),
        )
        self._pos: Dict[str, int] = {h.name: i for i, h in enumerate(self.hosts)}
        self._membership: List[int] = [0] * len(self.hosts)
        # Bumped on every index mutation; memoizes the capacity sums below
        # (recomputed with the identical scan when the index has changed,
        # so cached values are bit-for-bit what the scan would return).
        self._index_rev = 0
        self._active_capacity_rev = -1
        self._active_capacity = 0.0
        self._committed_capacity_rev = -1
        self._committed_capacity = 0.0
        # Each host's energy meter is created once and never replaced;
        # prebinding skips two attribute hops per host per power sample.
        self._meters = [h.machine.meter for h in self.hosts]
        for host in self.hosts:
            host._index_cb = self._reindex_host
            self._reindex_host(host)

    # ------------------------------------------------------------------
    # Host index maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _host_mask(host: Host) -> int:
        """Membership bitmask; predicates mirror the category views."""
        machine = host.machine
        in_transition = machine.in_transition
        mask = 0
        if host.is_active:
            mask |= _B_ACTIVE
            if not host.evacuating and not host.in_maintenance:
                mask |= _B_PLACEABLE
        if (
            not in_transition
            and host.state.is_parked
            and not host.out_of_service
            and not host.in_maintenance
        ):
            mask |= _B_PARKED
        if host.out_of_service:
            mask |= _B_OOS
        if in_transition:
            mask |= _B_TRANSIT
            if machine.target_state is PowerState.ACTIVE:
                mask |= _B_WAKING
        if host.evacuating:
            mask |= _B_EVACUATING
        return mask

    def _reindex_host(self, host: Host) -> None:  # reprolint: hot
        """Re-file one host after a membership mutation (index callback)."""
        pos = self._pos[host.name]
        mask = self._host_mask(host)
        old = self._membership[pos]
        if mask == old:
            return
        changed = mask ^ old
        for bit, positions in self._index_lists:
            if not changed & bit:
                continue
            if mask & bit:
                insort(positions, pos)
            else:
                del positions[bisect_left(positions, pos)]
        self._membership[pos] = mask
        self._index_rev += 1

    @classmethod
    def homogeneous(
        cls,
        env: "Environment",
        profile: ServerPowerProfile,
        n_hosts: int,
        cores: float = 16.0,
        mem_gb: float = 128.0,
        initial_state: PowerState = PowerState.ACTIVE,
        dvfs: Optional[DvfsModel] = None,
        dvfs_target: float = 0.8,
        faults: Optional[FaultModel] = None,
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> "Cluster":
        """Build ``n_hosts`` identical hosts named ``host-000`` …"""
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        hosts = [
            Host(
                env,
                "host-{:03d}".format(i),
                profile,
                cores=cores,
                mem_gb=mem_gb,
                initial_state=initial_state,
                dvfs=dvfs,
                dvfs_target=dvfs_target,
                faults=faults,
                fault_seed=fault_seed,
                trace=trace,
            )
            for i in range(n_hosts)
        ]
        return cls(env, hosts)

    @classmethod
    def heterogeneous(
        cls,
        env: "Environment",
        generations: List[Dict[str, Any]],
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> "Cluster":
        """Build a mixed-generation cluster.

        ``generations`` is a list of dicts, each with keys ``count`` and
        ``profile`` plus any :class:`~repro.datacenter.Host` keyword
        arguments (``cores``, ``mem_gb``, ``dvfs``, ``faults`` …).  Hosts
        are named ``gen<i>-<j>``.
        """
        hosts: List[Host] = []
        for gen_index, spec in enumerate(generations):
            spec = dict(spec)
            count = spec.pop("count")
            profile = spec.pop("profile")
            if count < 1:
                raise ValueError("generation count must be >= 1")
            for j in range(count):
                hosts.append(
                    Host(
                        env,
                        "gen{}-{:03d}".format(gen_index, j),
                        profile,
                        fault_seed=fault_seed,
                        trace=trace,
                        **spec,
                    )
                )
        return cls(env, hosts)

    # ------------------------------------------------------------------
    # VM registry
    # ------------------------------------------------------------------

    @property
    def vms(self) -> List[VM]:
        return list(self._vms.values())

    @property
    def vm_count(self) -> int:
        return len(self._vms)

    def iter_vms(self) -> Iterable[VM]:
        """Iterate resident VMs without copying the registry (hot path)."""
        return self._vms.values()

    def add_vm(self, vm: VM, host: Host) -> None:
        """Admit ``vm`` into the cluster on ``host``."""
        if vm.name in self._vms:
            raise ValueError("duplicate VM name {}".format(vm.name))
        if host not in self.hosts:
            raise ValueError("host {} is not in this cluster".format(host.name))
        host.place(vm)
        self._vms[vm.name] = vm
        self._vm_epoch += 1

    def remove_vm(self, vm: VM) -> None:
        """Retire ``vm`` (departure); it is unbound from its host."""
        if self._vms.pop(vm.name, None) is None:
            raise KeyError("VM {} not in cluster".format(vm.name))
        self._vm_epoch += 1
        if vm.host is not None:
            vm.host.remove(vm)

    def get_vm(self, name: str) -> VM:
        return self._vms[name]

    def has_vm(self, name: str) -> bool:
        """True if a VM called ``name`` is currently resident."""
        return name in self._vms

    # ------------------------------------------------------------------
    # Host views
    # ------------------------------------------------------------------

    def active_hosts(self) -> List[Host]:
        hosts = self.hosts
        return [hosts[i] for i in self._active]

    def placeable_hosts(self) -> List[Host]:
        hosts = self.hosts
        return [hosts[i] for i in self._placeable]

    def parked_hosts(self) -> List[Host]:
        """Parked hosts the manager may wake.

        Excludes failed hardware and hosts held for maintenance.
        """
        hosts = self.hosts
        return [hosts[i] for i in self._parked]

    def out_of_service_hosts(self) -> List[Host]:
        hosts = self.hosts
        return [hosts[i] for i in self._oos]

    def transitioning_hosts(self) -> List[Host]:
        hosts = self.hosts
        return [hosts[i] for i in self._transitioning]

    def waking_hosts(self) -> List[Host]:
        hosts = self.hosts
        return [hosts[i] for i in self._waking]

    def evacuating_hosts(self) -> List[Host]:
        """Hosts the manager is draining ahead of a park."""
        hosts = self.hosts
        return [hosts[i] for i in self._evacuating]

    # O(1) category counts, for telemetry that only needs sizes.

    def n_active_hosts(self) -> int:
        return len(self._active)

    def n_parked_hosts(self) -> int:
        return len(self._parked)

    def n_transitioning_hosts(self) -> int:
        return len(self._transitioning)

    def n_evacuating_hosts(self) -> int:
        return len(self._evacuating)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def active_capacity_cores(self) -> float:
        if self._active_capacity_rev != self._index_rev:
            hosts = self.hosts
            self._active_capacity = sum(hosts[i].cores for i in self._active)
            self._active_capacity_rev = self._index_rev
        return self._active_capacity

    def committed_capacity_cores(self) -> float:
        """Active capacity plus capacity already on its way up (waking)."""
        if self._committed_capacity_rev != self._index_rev:
            hosts = self.hosts
            self._committed_capacity = self.active_capacity_cores() + sum(
                hosts[i].cores for i in self._waking
            )
            self._committed_capacity_rev = self._index_rev
        return self._committed_capacity

    def evacuating_cores(self) -> float:
        """Cores on hosts being drained (imminently lost capacity)."""
        hosts = self.hosts
        return sum(hosts[i].cores for i in self._evacuating)

    def total_capacity_cores(self) -> float:
        return self._total_capacity_cores

    def min_host_cores(self) -> float:
        """Smallest host size in the (immutable) inventory."""
        return self._min_host_cores

    def max_peak_w(self) -> float:
        """Largest per-host peak draw in the inventory."""
        return self._max_peak_w

    def host_cores_desc(self) -> List[float]:
        """Host core sizes, largest first (callers must not mutate)."""
        return self._host_cores_desc

    def demand_cores(self, t: Optional[float] = None) -> float:
        when = self.env.now if t is None else t
        key = (when, self._vm_epoch)
        if key == self._demand_key:
            return self._demand_value
        grid = self._demand_grid
        if grid is not None and self._demand_grid_tag == self._vm_epoch:
            # Batched fast path: the registry is unchanged since the
            # sampler precomputed the totals, so a lattice instant reads
            # the grid — the identical registry-order accumulation.
            eps = self._demand_grid_eps
            i = int(when / eps + 0.5)
            j = i - self._demand_grid_i0
            if 0 <= j < len(grid) and i * eps == when:
                value = grid[j]
                self._demand_key = key
                self._demand_value = value
                return value
        # Inline the per-VM memo fast path (see ``VM.demand_cores``): at
        # manager instants that coincide with a sampler tick every VM is a
        # memo hit, and skipping the method call halves the walk's cost.
        # ``sum`` over the same registry order, starting from zero, so the
        # accumulation is bit-identical to the genexpr it replaces.
        value = 0.0
        for vm in self._vms.values():
            value += (
                vm._demand_value
                if when == vm._demand_at_t
                else vm.demand_cores(when)
            )
        self._demand_key = key
        self._demand_value = value
        return value

    def power_w(self) -> float:
        # ``_power_w`` is what the ``power_w`` property returns; reading
        # the slot directly skips 1 property dispatch per host per tick.
        return sum(m._power_w for m in self._meters)

    def energy_j(self) -> float:
        return sum(h.energy_j() for h in self.hosts)

    def refresh_utilization(self, t: Optional[float] = None) -> float:
        """Push fresh demand into every host; return total shortfall cores."""
        when = self.env.now if t is None else t
        return sum(h.refresh_utilization(when) for h in self.hosts)

    def __repr__(self) -> str:
        return "<Cluster {} hosts ({} active), {} VMs>".format(
            len(self.hosts), len(self.active_hosts()), len(self._vms)
        )
