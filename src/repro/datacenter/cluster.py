"""Cluster: host inventory and aggregate accounting."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:
    from repro.sim.environment import Environment
    from repro.telemetry.trace import TraceBuffer

from repro.datacenter.faults import FaultModel
from repro.datacenter.host import Host
from repro.datacenter.vm import VM
from repro.power.dvfs import DvfsModel
from repro.power.profiles import ServerPowerProfile
from repro.power.states import PowerState


class Cluster:
    """A managed pool of hosts and the VMs running on them."""

    def __init__(self, env: "Environment", hosts: Iterable[Host]) -> None:
        self.env = env
        self.hosts: List[Host] = list(hosts)
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError("duplicate host names")
        if not self.hosts:
            raise ValueError("cluster needs at least one host")
        self._vms: Dict[str, VM] = {}

    @classmethod
    def homogeneous(
        cls,
        env: "Environment",
        profile: ServerPowerProfile,
        n_hosts: int,
        cores: float = 16.0,
        mem_gb: float = 128.0,
        initial_state: PowerState = PowerState.ACTIVE,
        dvfs: Optional[DvfsModel] = None,
        dvfs_target: float = 0.8,
        faults: Optional[FaultModel] = None,
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> "Cluster":
        """Build ``n_hosts`` identical hosts named ``host-000`` …"""
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        hosts = [
            Host(
                env,
                "host-{:03d}".format(i),
                profile,
                cores=cores,
                mem_gb=mem_gb,
                initial_state=initial_state,
                dvfs=dvfs,
                dvfs_target=dvfs_target,
                faults=faults,
                fault_seed=fault_seed,
                trace=trace,
            )
            for i in range(n_hosts)
        ]
        return cls(env, hosts)

    @classmethod
    def heterogeneous(
        cls,
        env: "Environment",
        generations: List[Dict[str, Any]],
        fault_seed: int = 0,
        trace: Optional["TraceBuffer"] = None,
    ) -> "Cluster":
        """Build a mixed-generation cluster.

        ``generations`` is a list of dicts, each with keys ``count`` and
        ``profile`` plus any :class:`~repro.datacenter.Host` keyword
        arguments (``cores``, ``mem_gb``, ``dvfs``, ``faults`` …).  Hosts
        are named ``gen<i>-<j>``.
        """
        hosts: List[Host] = []
        for gen_index, spec in enumerate(generations):
            spec = dict(spec)
            count = spec.pop("count")
            profile = spec.pop("profile")
            if count < 1:
                raise ValueError("generation count must be >= 1")
            for j in range(count):
                hosts.append(
                    Host(
                        env,
                        "gen{}-{:03d}".format(gen_index, j),
                        profile,
                        fault_seed=fault_seed,
                        trace=trace,
                        **spec,
                    )
                )
        return cls(env, hosts)

    # ------------------------------------------------------------------
    # VM registry
    # ------------------------------------------------------------------

    @property
    def vms(self) -> List[VM]:
        return list(self._vms.values())

    @property
    def vm_count(self) -> int:
        return len(self._vms)

    def iter_vms(self) -> Iterable[VM]:
        """Iterate resident VMs without copying the registry (hot path)."""
        return self._vms.values()

    def add_vm(self, vm: VM, host: Host) -> None:
        """Admit ``vm`` into the cluster on ``host``."""
        if vm.name in self._vms:
            raise ValueError("duplicate VM name {}".format(vm.name))
        if host not in self.hosts:
            raise ValueError("host {} is not in this cluster".format(host.name))
        host.place(vm)
        self._vms[vm.name] = vm

    def remove_vm(self, vm: VM) -> None:
        """Retire ``vm`` (departure); it is unbound from its host."""
        if self._vms.pop(vm.name, None) is None:
            raise KeyError("VM {} not in cluster".format(vm.name))
        if vm.host is not None:
            vm.host.remove(vm)

    def get_vm(self, name: str) -> VM:
        return self._vms[name]

    def has_vm(self, name: str) -> bool:
        """True if a VM called ``name`` is currently resident."""
        return name in self._vms

    # ------------------------------------------------------------------
    # Host views
    # ------------------------------------------------------------------

    def active_hosts(self) -> List[Host]:
        return [h for h in self.hosts if h.is_active]

    def placeable_hosts(self) -> List[Host]:
        return [h for h in self.hosts if h.available_for_placement]

    def parked_hosts(self) -> List[Host]:
        """Parked hosts the manager may wake.

        Excludes failed hardware and hosts held for maintenance.
        """
        return [
            h
            for h in self.hosts
            if not h.machine.in_transition
            and h.state.is_parked
            and not h.out_of_service
            and not h.in_maintenance
        ]

    def out_of_service_hosts(self) -> List[Host]:
        return [h for h in self.hosts if h.out_of_service]

    def transitioning_hosts(self) -> List[Host]:
        return [h for h in self.hosts if h.machine.in_transition]

    def waking_hosts(self) -> List[Host]:
        return [
            h
            for h in self.hosts
            if h.machine.in_transition
            and h.machine.target_state is PowerState.ACTIVE
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def active_capacity_cores(self) -> float:
        return sum(h.cores for h in self.active_hosts())

    def committed_capacity_cores(self) -> float:
        """Active capacity plus capacity already on its way up (waking)."""
        return self.active_capacity_cores() + sum(
            h.cores for h in self.waking_hosts()
        )

    def total_capacity_cores(self) -> float:
        return sum(h.cores for h in self.hosts)

    def demand_cores(self, t: Optional[float] = None) -> float:
        when = self.env.now if t is None else t
        return sum(vm.demand_cores(when) for vm in self._vms.values())

    def power_w(self) -> float:
        return sum(h.power_w() for h in self.hosts)

    def energy_j(self) -> float:
        return sum(h.energy_j() for h in self.hosts)

    def refresh_utilization(self, t: Optional[float] = None) -> float:
        """Push fresh demand into every host; return total shortfall cores."""
        when = self.env.now if t is None else t
        return sum(h.refresh_utilization(when) for h in self.hosts)

    def __repr__(self) -> str:
        return "<Cluster {} hosts ({} active), {} VMs>".format(
            len(self.hosts), len(self.active_hosts()), len(self._vms)
        )
