"""Fault injection for power-state transitions.

A practical objection to aggressive parking is reliability: servers do
occasionally fail to resume from sleep.  This model injects wake failures
so the experiments can show the management layer rides through them (the
watchdog simply retries or wakes a different host).

Two failure modes:

* *transient* — the resume attempt burns its full latency and energy but
  the host falls back to the parked state; a later attempt may succeed;
* *permanent* — additionally, with probability ``permanent_fraction`` per
  failure, the host is marked out of service and excluded from management
  until an operator intervenes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.telemetry.trace import TraceBuffer


@dataclass(frozen=True)
class FaultModel:
    """Failure probabilities for wake (resume/boot) attempts."""

    wake_failure_rate: float = 0.0
    permanent_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.wake_failure_rate < 1.0:
            raise ValueError("wake_failure_rate must be in [0, 1)")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in [0, 1]")


class FaultInjector:
    """Seeded per-host draw source; deterministic per (seed, host name).

    When a decision-trace buffer is attached, every positive draw emits a
    ``fault-injected`` event, so the trace invariant checker can reconcile
    injected faults against failed wake transitions.
    """

    def __init__(
        self,
        model: FaultModel,
        seed: int,
        host_name: str,
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        self.model = model
        self.host_name = host_name
        self._trace = trace
        # Stable across processes (unlike built-in hash, which is salted).
        digest = zlib.crc32("{}:{}".format(seed, host_name).encode())
        self._rng = np.random.default_rng(digest)

    def draw_wake_failure(self, t: float = 0.0) -> bool:
        if self.model.wake_failure_rate <= 0:
            return False
        failed = bool(self._rng.random() < self.model.wake_failure_rate)
        if failed and self._trace is not None:
            self._trace.fault_injected(t, self.host_name, permanent=False)
        return failed

    def draw_permanent(self, t: float = 0.0) -> bool:
        if self.model.permanent_fraction <= 0:
            return False
        permanent = bool(self._rng.random() < self.model.permanent_fraction)
        if permanent and self._trace is not None:
            self._trace.fault_injected(t, self.host_name, permanent=True)
        return permanent
