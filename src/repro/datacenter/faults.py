"""Fault injection for power-state transitions.

A practical objection to aggressive parking is reliability: servers do
occasionally fail to resume from sleep.  This model injects wake failures
so the experiments can show the management layer rides through them (the
watchdog retries with backoff, prefers a different parked host after
repeated failures, and — when a :class:`RepairModel` is attached — returns
permanently failed hosts to the pool after an operator repair delay).

Two failure modes:

* *transient* — the resume attempt burns its full latency and energy but
  the host falls back to the parked state; a later attempt may succeed;
* *permanent* — additionally, with probability ``permanent_fraction`` per
  failure, the host is marked out of service and excluded from management
  until the repair model (an operator) intervenes.

On top of the steady-state rates, a :class:`ChaosSchedule` overlays
time-windowed disturbances: correlated failure bursts (every host's wake
attempts fail at an elevated rate inside the window — a firmware bug, a
rack power event) and wake-latency brownouts (resumes inside the window
take a multiple of their nominal latency — a congested management
network).  Both are deterministic given the schedule and the seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.seeding import stream_rng

if TYPE_CHECKING:
    from repro.telemetry.trace import TraceBuffer


@dataclass(frozen=True)
class RepairModel:
    """Operator repair (MTTR) for permanently failed hosts.

    When attached to a :class:`FaultModel`, a host taken out of service by
    a permanent wake failure is returned to the parked pool after an
    exponentially distributed delay with mean ``mttr_s`` (drawn from a
    dedicated per-host RNG stream, so enabling repair does not perturb the
    failure draws).
    """

    mttr_s: float = 4 * 3600.0

    def __post_init__(self) -> None:
        if self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive")


@dataclass(frozen=True)
class FailureBurst:
    """A time window during which wake attempts fail at ``rate``."""

    start_s: float
    end_s: float
    rate: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("burst window must satisfy 0 <= start < end")
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("burst rate must be in [0, 1)")

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class Brownout:
    """A time window during which wake latency is multiplied by ``scale``."""

    start_s: float
    end_s: float
    scale: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("brownout window must satisfy 0 <= start < end")
        if self.scale < 1.0:
            raise ValueError("brownout scale must be >= 1.0")

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class ChaosSchedule:
    """Deterministic time-windowed disturbances layered over the base rates."""

    bursts: Tuple[FailureBurst, ...] = ()
    brownouts: Tuple[Brownout, ...] = ()

    def __post_init__(self) -> None:
        # Accept any sequence for convenience; store tuples so the model
        # stays hashable and cache-canonical.
        object.__setattr__(self, "bursts", tuple(self.bursts))
        object.__setattr__(self, "brownouts", tuple(self.brownouts))

    def failure_rate_at(self, t: float, base: float) -> float:
        """Effective wake-failure probability at ``t`` (burst beats base)."""
        rate = base
        for burst in self.bursts:
            if burst.active(t):
                rate = max(rate, burst.rate)
        return rate

    def latency_scale_at(self, t: float) -> float:
        """Wake-latency multiplier at ``t`` (worst active brownout wins)."""
        scale = 1.0
        for brownout in self.brownouts:
            if brownout.active(t):
                scale = max(scale, brownout.scale)
        return scale


def burst_window(
    start_s: float, end_s: float, rate: float
) -> ChaosSchedule:
    """Convenience: a schedule with one correlated failure burst."""
    return ChaosSchedule(bursts=(FailureBurst(start_s, end_s, rate),))


def brownout_window(
    start_s: float, end_s: float, scale: float
) -> ChaosSchedule:
    """Convenience: a schedule with one wake-latency brownout."""
    return ChaosSchedule(brownouts=(Brownout(start_s, end_s, scale),))


@dataclass(frozen=True)
class MigrationFaultModel:
    """Per-migration mid-copy failure model.

    Each admitted migration independently fails with probability
    ``failure_rate``; a failing migration runs for a sampled fraction of
    its nominal transfer time (uniform in ``[min_fail_fraction,
    max_fail_fraction)``) before aborting.  The engine rolls the flight
    back cleanly — the VM stays on its source, the destination memory
    reservation and the CPU tax are released — and the manager's retry
    policy decides what happens next.

    Draws come from a dedicated per-migration RNG stream keyed
    ``migration:{seed}:{id}``, so the outcome of one migration never
    depends on how many others ran before it, and enabling the model
    does not perturb the wake-failure streams.
    """

    failure_rate: float = 0.0
    min_fail_fraction: float = 0.1
    max_fail_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if not 0.0 < self.min_fail_fraction <= self.max_fail_fraction:
            raise ValueError(
                "fail fractions must satisfy 0 < min <= max"
            )
        if self.max_fail_fraction >= 1.0:
            raise ValueError("max_fail_fraction must be < 1 (mid-copy)")


@dataclass(frozen=True)
class FaultModel:
    """Failure probabilities for wake (resume/boot) attempts."""

    wake_failure_rate: float = 0.0
    permanent_fraction: float = 0.0
    #: Operator repair for permanently failed hosts (None = dead forever).
    repair: Optional[RepairModel] = None
    #: Time-windowed correlated bursts / brownouts (None = steady state).
    chaos: Optional[ChaosSchedule] = None
    #: Mid-copy live-migration failures (None = migrations never fail).
    migration: Optional[MigrationFaultModel] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.wake_failure_rate < 1.0:
            raise ValueError("wake_failure_rate must be in [0, 1)")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in [0, 1]")

    def failure_rate_at(self, t: float) -> float:
        """Effective wake-failure probability at simulated time ``t``."""
        if self.chaos is None:
            return self.wake_failure_rate
        return self.chaos.failure_rate_at(t, self.wake_failure_rate)

    def wake_latency_scale_at(self, t: float) -> float:
        """Wake-latency multiplier at simulated time ``t``."""
        if self.chaos is None:
            return 1.0
        return self.chaos.latency_scale_at(t)


class FaultInjector:
    """Seeded per-host draw source; deterministic per (seed, host name).

    When a decision-trace buffer is attached, every positive draw emits a
    ``fault-injected`` event, so the trace invariant checker can reconcile
    injected faults against failed wake transitions.

    Repair delays come from a *separate* RNG stream (same seed, distinct
    salt), so attaching a :class:`RepairModel` leaves the failure draw
    sequence — and therefore any comparison against a no-repair run —
    untouched.
    """

    def __init__(
        self,
        model: FaultModel,
        seed: int,
        host_name: str,
        trace: Optional["TraceBuffer"] = None,
    ) -> None:
        self.model = model
        self.host_name = host_name
        self._trace = trace
        # Stable across processes (unlike built-in hash, which is salted).
        # The failure stream predates the labelled-stream discipline; its
        # digest input is "{seed}:{host}" with no subsystem prefix, and
        # relabelling would reseed every certified fault benchmark
        # (A10/A11 golden thresholds), so it stays grandfathered.
        digest = zlib.crc32("{}:{}".format(seed, host_name).encode())
        self._rng = np.random.default_rng(digest)  # reprolint: disable=RL012
        self._repair_rng = stream_rng("repair", seed, host_name)

    def draw_wake_failure(self, t: float = 0.0) -> bool:
        rate = self.model.failure_rate_at(t)
        if rate <= 0:
            return False
        failed = bool(self._rng.random() < rate)
        if failed and self._trace is not None:
            self._trace.fault_injected(t, self.host_name, permanent=False)
        return failed

    def draw_permanent(self, t: float = 0.0) -> bool:
        if self.model.permanent_fraction <= 0:
            return False
        permanent = bool(self._rng.random() < self.model.permanent_fraction)
        if permanent and self._trace is not None:
            self._trace.fault_injected(t, self.host_name, permanent=True)
        return permanent

    def repair_delay_s(self) -> Optional[float]:
        """Operator repair delay draw, or None when repair is disabled."""
        if self.model.repair is None:
            return None
        return float(self._repair_rng.exponential(self.model.repair.mttr_s))

    def wake_latency_scale(self, t: float) -> float:
        """Brownout latency multiplier for a wake starting at ``t``."""
        return self.model.wake_latency_scale_at(t)


class MigrationFaultInjector:
    """Seeded per-migration draw source for mid-copy failures.

    Every migration id gets its own RNG stream (``migration:{seed}:{id}``),
    so a migration's fate is a pure function of the seed and its admission
    order — re-planning, retries, and concurrency never shift the draws of
    unrelated migrations.
    """

    def __init__(self, model: MigrationFaultModel, seed: int) -> None:
        self.model = model
        self._seed = seed

    def draw_failure(self, migration_id: str) -> Optional[float]:
        """Fail fraction in (0, 1) if this migration fails, else None.

        The returned fraction is the share of the nominal transfer time
        the flight runs before aborting.
        """
        if self.model.failure_rate <= 0:
            return None
        rng = stream_rng("migration", self._seed, migration_id)
        if rng.random() >= self.model.failure_rate:
            return None
        return float(
            rng.uniform(self.model.min_fail_fraction, self.model.max_fail_fraction)
        )
