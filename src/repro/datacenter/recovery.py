"""Fault-recovery runtime: the per-host wake scoreboard.

The fault *models* (:mod:`repro.datacenter.faults`) decide when a wake
attempt fails; this module holds the management layer's memory of those
failures so the manager can respond intelligently instead of hammering
the same broken host every watchdog tick:

* **exponential backoff** — after the *k*-th consecutive failure a host
  is ineligible for ``min(base * 2**(k-1), max)`` seconds, so retry
  pressure decays while a transient condition (thermal event, congested
  management network) clears;
* **blacklisting** — after ``blacklist_after_failures`` consecutive
  failures the host enters a hold-down window and the manager prefers a
  *different* parked host entirely;
* **retry preference** — among eligible parked hosts, hosts with fewer
  consecutive failures sort first (ties keep the manager's usual
  fastest-exit/most-efficient ordering), so a failing host naturally
  loses its place in the wake queue.

A successful wake or a completed repair resets the host's record.  The
scoreboard is pure bookkeeping — it never touches hosts or the clock —
which keeps it trivially unit-testable and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

_NEVER = float("-inf")


@dataclass
class HostWakeRecord:
    """Per-host retry state tracked by the scoreboard."""

    consecutive_failures: int = 0
    last_failure_t: float = _NEVER
    backoff_until: float = _NEVER
    blacklisted_until: float = _NEVER
    #: Wake attempts *dispatched* since the last success/repair.  Distinct
    #: from ``consecutive_failures``: an attempt is booked when the wake
    #: is requested, a failure only when it resolves.  Attempt numbering
    #: reads ``max(failures, attempts_started) + 1`` so it stays strictly
    #: monotone even when several requests collapse into (or race with)
    #: one in-flight transition.
    attempts_started: int = 0


class WakeScoreboard:
    """Consecutive-failure accounting driving backoff and blacklisting."""

    def __init__(
        self,
        backoff_base_s: float = 60.0,
        backoff_max_s: float = 900.0,
        blacklist_after_failures: int = 3,
        blacklist_hold_s: float = 1800.0,
    ) -> None:
        if backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if backoff_max_s < backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if blacklist_after_failures < 1:
            raise ValueError("blacklist_after_failures must be >= 1")
        if blacklist_hold_s <= 0:
            raise ValueError("blacklist_hold_s must be positive")
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.blacklist_after_failures = blacklist_after_failures
        self.blacklist_hold_s = blacklist_hold_s
        self._records: Dict[str, HostWakeRecord] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def record_for(self, host: str) -> HostWakeRecord:
        """The (possibly fresh) record for ``host``; never mutates state."""
        return self._records.get(host, HostWakeRecord())

    def failures(self, host: str) -> int:
        """Consecutive failed wake attempts since the last success/repair."""
        return self.record_for(host).consecutive_failures

    def attempt(self, host: str) -> int:
        """1-based number of the *next* wake attempt for ``host``.

        Monotone per host: counts dispatched attempts as well as resolved
        failures, so a request that races with an in-flight wake still
        sees a strictly larger number than the attempt it collapsed into.
        """
        record = self.record_for(host)
        return max(record.consecutive_failures, record.attempts_started) + 1

    def backoff_s(self, host: str) -> float:
        """Enforced minimum delay before the next attempt (0 when clean)."""
        failures = self.failures(host)
        if failures == 0:
            return 0.0
        return min(
            self.backoff_base_s * (2.0 ** (failures - 1)), self.backoff_max_s
        )

    def blacklisted(self, host: str, now: float) -> bool:
        """True while ``host`` is inside a blacklist hold-down window."""
        return now < self.record_for(host).blacklisted_until

    def eligible(self, host: str, now: float) -> bool:
        """True when neither backoff nor blacklist forbids waking ``host``."""
        record = self.record_for(host)
        return now >= record.backoff_until and now >= record.blacklisted_until

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def begin_attempt(self, host: str) -> int:
        """Book the dispatch of a wake attempt; returns its 1-based number.

        Called exactly once per *dispatched* wake (the WakeArbiter rejects
        overlapping requests before they get here), so the returned
        numbers are strictly monotone until a success or repair resets
        the record.
        """
        record = self._records.setdefault(host, HostWakeRecord())
        number = max(record.consecutive_failures, record.attempts_started) + 1
        record.attempts_started = number
        return number

    def record_failure(self, host: str, now: float) -> Optional[float]:
        """Book one failed wake attempt finishing at ``now``.

        Returns the hold-down end time if this failure pushed the host
        over the blacklist threshold, else None.
        """
        record = self._records.setdefault(host, HostWakeRecord())
        record.consecutive_failures += 1
        record.last_failure_t = now
        record.backoff_until = now + self.backoff_s(host)
        if record.consecutive_failures >= self.blacklist_after_failures:
            record.blacklisted_until = now + self.blacklist_hold_s
            return record.blacklisted_until
        return None

    def record_success(self, host: str) -> None:
        """A wake landed: forget the host's failure history."""
        self._records.pop(host, None)

    def record_repair(self, host: str) -> None:
        """A repair completed: the host returns with a clean slate."""
        self._records.pop(host, None)
