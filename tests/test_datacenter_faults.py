"""Unit + behavioural tests for wake-failure injection and resilience."""

import pytest

from repro.core import ManagerConfig, PowerAwareManager
from repro.datacenter import Cluster, FaultInjector, FaultModel, Host, HostNotActive, VM
from repro.migration import MigrationEngine
from repro.power import PowerState
from repro.prototype import PROTOTYPE_BLADE
from repro.sim import Environment
from repro.workload import FlatTrace, StepTrace


class TestFaultModel:
    def test_defaults_inert(self):
        m = FaultModel()
        assert m.wake_failure_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(wake_failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultModel(wake_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(permanent_fraction=1.5)

    def test_injector_deterministic_per_host(self):
        model = FaultModel(wake_failure_rate=0.5)
        a = FaultInjector(model, seed=1, host_name="host-000")
        b = FaultInjector(model, seed=1, host_name="host-000")
        draws_a = [a.draw_wake_failure() for _ in range(20)]
        draws_b = [b.draw_wake_failure() for _ in range(20)]
        assert draws_a == draws_b

    def test_injector_differs_across_hosts(self):
        model = FaultModel(wake_failure_rate=0.5)
        a = FaultInjector(model, seed=1, host_name="host-000")
        b = FaultInjector(model, seed=1, host_name="host-001")
        draws_a = [a.draw_wake_failure() for _ in range(50)]
        draws_b = [b.draw_wake_failure() for _ in range(50)]
        assert draws_a != draws_b

    def test_zero_rate_never_fails(self):
        injector = FaultInjector(FaultModel(), seed=0, host_name="h")
        assert not any(injector.draw_wake_failure() for _ in range(100))


class TestHostWakeFailures:
    def make_parked_host(self, rate, permanent=0.0, seed=0):
        env = Environment()
        host = Host(
            env,
            "host-000",
            PROTOTYPE_BLADE,
            initial_state=PowerState.SLEEP,
            faults=FaultModel(wake_failure_rate=rate, permanent_fraction=permanent),
            fault_seed=seed,
        )
        return env, host

    def test_certainish_failure_leaves_host_parked(self):
        env, host = self.make_parked_host(rate=0.99)
        proc = env.process(host.wake())
        result = env.run(until=proc)
        assert result is PowerState.SLEEP
        assert host.state is PowerState.SLEEP
        assert host.wake_failures == 1

    def test_failed_wake_still_costs_time_and_energy(self):
        env, host = self.make_parked_host(rate=0.99)
        spec = PROTOTYPE_BLADE.transition(PowerState.SLEEP, PowerState.ACTIVE)
        proc = env.process(host.wake())
        env.run(until=proc)
        assert env.now == pytest.approx(spec.latency_s)
        assert host.energy_j() >= spec.energy_j * 0.99

    def test_retry_can_succeed(self):
        # With a 50% rate some retry eventually lands (seeded, so stable).
        env, host = self.make_parked_host(rate=0.5, seed=3)

        def retry_loop(env):
            for _ in range(20):
                result = yield env.process(host.wake())
                if result is PowerState.ACTIVE:
                    return True
            return False

        proc = env.process(retry_loop(env))
        assert env.run(until=proc)
        assert host.is_active

    def test_permanent_failure_marks_out_of_service(self):
        env, host = self.make_parked_host(rate=0.99, permanent=1.0)
        proc = env.process(host.wake())
        env.run(until=proc)
        assert host.out_of_service
        with pytest.raises(HostNotActive):
            host.wake()

    def test_failed_transitions_counted_separately(self):
        env, host = self.make_parked_host(rate=0.99)
        proc = env.process(host.wake())
        env.run(until=proc)
        key = (PowerState.SLEEP, PowerState.ACTIVE)
        assert host.machine.failed_transitions[key] == 1
        assert host.machine.transition_counts[key] == 0


class TestManagerResilience:
    def test_manager_rides_through_wake_failures(self):
        env = Environment()
        faults = FaultModel(wake_failure_rate=0.5)
        cluster = Cluster.homogeneous(
            env, PROTOTYPE_BLADE, 4, cores=16.0, mem_gb=128.0,
            faults=faults, fault_seed=11,
        )
        engine = MigrationEngine(env)
        cfg = ManagerConfig(period_s=300, park_delay_rounds=0, watchdog_period_s=60)
        manager = PowerAwareManager(env, cluster, engine, cfg)
        trace = StepTrace([(0.0, 0.1), (2 * 3600.0, 1.0)])
        for i in range(4):
            cluster.add_vm(
                VM("vm-{}".format(i), vcpus=10, mem_gb=16, trace=trace),
                cluster.hosts[i],
            )
        manager.start()
        env.run(until=6 * 3600)
        # Demand surge eventually gets served despite failed wake attempts:
        # capacity recovered and shortfall cleared by simulation end.
        assert cluster.active_capacity_cores() >= 40.0
        assert cluster.refresh_utilization() == 0.0

    def test_out_of_service_hosts_not_retried(self):
        env = Environment()
        faults = FaultModel(wake_failure_rate=0.99, permanent_fraction=1.0)
        cluster = Cluster.homogeneous(
            env, PROTOTYPE_BLADE, 3, cores=16.0, mem_gb=128.0,
            faults=faults, fault_seed=5,
        )
        engine = MigrationEngine(env)
        cfg = ManagerConfig(period_s=300, park_delay_rounds=0, watchdog_period_s=60)
        manager = PowerAwareManager(env, cluster, engine, cfg)
        trace = StepTrace([(0.0, 0.05), (2 * 3600.0, 0.9)])
        for i in range(3):
            cluster.add_vm(
                VM("vm-{}".format(i), vcpus=10, mem_gb=16, trace=trace),
                cluster.hosts[i],
            )
        manager.start()
        env.run(until=8 * 3600)
        # Bricked hosts are excluded from the wake pool, so the manager
        # does not spin on them (and never crashes on HostNotActive).
        for host in cluster.out_of_service_hosts():
            assert host not in cluster.parked_hosts()


class TestRunnerFaultIntegration:
    def test_report_carries_fault_metrics(self):
        from repro import run_scenario, s3_policy

        result = run_scenario(
            s3_policy(),
            n_hosts=6,
            n_vms=18,
            horizon_s=12 * 3600,
            seed=4,
            fault_model=FaultModel(wake_failure_rate=0.3),
        )
        assert "wake_failures" in result.report.extra
        assert "hosts_out_of_service" in result.report.extra
