"""Fixture: RL008 — unpicklable fields on result-carrying dataclasses."""

import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Optional


@dataclass
class ScenarioArtifacts:
    name: str
    on_done: Callable[[], None]  # finding: callables may not pickle
    samples: Iterator  # finding: iterators never pickle
    lock: Optional[threading.Lock] = None  # finding: locks never pickle


@dataclass
class SweepResult:
    label: str = "x"
    key: object = lambda: 0  # noqa: E731  # finding: lambda default is stored
