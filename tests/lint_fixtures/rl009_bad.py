"""Fixture: RL009 — power-state mutation bypassing the traced API."""

from repro.power.states import PowerState


def force_park(host):
    host.machine._state = PowerState.SLEEP  # finding: bypasses transition_to
    host.machine._transition = None  # finding: transition bookkeeping is private


def sneak_transition(machine, spec):
    gen = machine._run_transition(PowerState.OFF, spec)  # finding: skips checks
    return gen
