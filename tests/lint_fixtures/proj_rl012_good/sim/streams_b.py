"""Fixture: RL012 — the second subsystem draws from its own stream."""

import zlib

import numpy as np


def repair_rng(seed, host):
    digest = zlib.crc32("repair:{}:{}".format(seed, host).encode())
    return np.random.default_rng(digest)
