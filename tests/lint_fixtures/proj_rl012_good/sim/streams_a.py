"""Fixture: RL012 — labelled, seed-derived, per-subsystem streams."""

import zlib

import numpy as np


def jitter_rng(seed, host):
    digest = zlib.crc32("jitter:{}:{}".format(seed, host).encode())
    return np.random.default_rng(digest)


def rng_for(seed, host):
    return np.random.default_rng(seed)


def caller(scenario_seed):
    # Literal seeds and seed-derived names are both acceptable taints.
    return rng_for(scenario_seed, "h-0"), rng_for(1234, "h-1")
