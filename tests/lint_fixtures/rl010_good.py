"""Fixture: RL010 — migrations flow through the manager (or are suppressed)."""


def evacuate(manager, host):
    # The manager plans destinations, wraps each flight in the retry
    # watcher, and traces every attempt — the sanctioned door.
    return manager.request_maintenance(host)


def bird_migrate(flock, season):
    # ``.migrate`` on a non-engine receiver is out of scope.
    return flock.migrate(season)


def replay_tool(engine, vm, dst):
    # Offline replay deliberately skips the retry wrapper: suppressed.
    return engine.migrate(vm, dst)  # reprolint: disable=RL010
