"""Fixture: RL012 — unlabelled, untraceable, and tainted RNG seeds."""

import zlib

import numpy as np


def failure_rng(seed, host):
    # No subsystem prefix before the first ':' in the digest input.
    digest = zlib.crc32("{}:{}".format(seed, host).encode())
    return np.random.default_rng(digest)  # finding: unlabelled stream


def jitter_rng(seed, host):
    digest = zlib.crc32("jitter:{}:{}".format(seed, host).encode())
    return np.random.default_rng(digest)


def rng_for(seed, host):
    # Seed flows in through a parameter: every caller is tainted.
    return np.random.default_rng(seed)


def untraceable_rng(host):
    return np.random.default_rng(len(host))  # finding: not seed-derived


def good_caller(scenario_seed):
    return rng_for(scenario_seed, "h-0")


def bad_caller(tick_count):
    return rng_for(tick_count, "h-1")  # finding: tainted seed argument
