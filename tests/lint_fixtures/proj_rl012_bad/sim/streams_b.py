"""Fixture: RL012 — a second subsystem reusing another module's stream."""

import zlib

import numpy as np


def repair_rng(seed, host):
    digest = zlib.crc32("jitter:{}:{}".format(seed, host).encode())
    return np.random.default_rng(digest)  # finding: shares 'jitter' stream
