"""Fixture: RL001 — seeded, locally owned RNGs pass."""

import random

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def make_stdlib_rng(seed):
    return random.Random(seed)


class Sampler:
    def __init__(self, seed):
        self.rng = np.random.default_rng(seed)

    def draw(self):
        # Attribute chains on non-module objects are never flagged.
        return self.rng.random()
