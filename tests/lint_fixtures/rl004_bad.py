"""Fixture: RL004 — float equality on unit-suffixed quantities."""


def is_idle(power_w):
    return power_w == 0.0  # finding: exact float equality on watts


def changed(old_energy_j, new_energy_j):
    return old_energy_j != new_energy_j  # finding: exact inequality on joules
