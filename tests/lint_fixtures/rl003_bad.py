"""Fixture: RL003 — mixing conflicting unit suffixes without conversion."""


def total_draw(power_w, energy_j):
    return power_w + energy_j  # finding: watts + joules


def headroom(capacity_gb, horizon_s):
    return capacity_gb - horizon_s  # finding: GB - seconds


def over_budget(power_w, budget_j):
    return power_w > budget_j  # finding: ordering watts against joules
