"""Fixture: RL007 — explicit exceptions survive ``python -O``."""


def place(vm, host):
    if host is None:
        raise ValueError("host required")
    if vm.mem_gb <= 0:
        raise ValueError("mem_gb must be positive")
    host.place(vm)
