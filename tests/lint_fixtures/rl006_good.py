"""Fixture: RL006 — narrow handlers, and broad handlers that re-raise."""


def parse(text):
    try:
        return int(text)
    except ValueError:
        return 0


def guarded(work):
    try:
        return work()
    except Exception:
        # Broad catch is allowed when the handler re-raises.
        raise RuntimeError("work failed") from None
