"""Fixture: RL006 — bare / overbroad exception handlers."""


def load(path):
    try:
        return open(path).read()
    except:  # finding: bare except  # noqa: E722
        return None


def parse(text):
    try:
        return int(text)
    except Exception:  # finding: swallows everything without re-raising
        return 0
