"""Fixture: RL015 — allocation churn inside kernel-hot functions."""


def sample_once(rows):  # reprolint: hot
    worst = sorted(rows, key=lambda r: r.load)  # finding: sorted() per call
    names = [r.name for r in rows]  # finding: list built per call
    total = 0.0
    for r in rows:
        bucket = {"row": r.name}  # finding: dict literal per iteration
        seen = set()  # finding: set() constructed per iteration
        seen.add(bucket["row"])
        total += r.load
    return worst, names, total


class Sampler:
    def hot_tick(self, rows):  # reprolint: hot
        by_name = {r.name: r.load for r in rows}  # finding: dict built per call
        return by_name


def audit(rows):
    # Not registered hot: the same allocations are fine on cold paths.
    return sorted(rows, key=lambda r: r.load), [r.name for r in rows]
