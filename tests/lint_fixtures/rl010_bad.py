"""Fixture: RL010 — raw migrations bypassing the manager's retry wrapper."""


def hot_move(engine, vm, dst):
    return engine.migrate(vm, dst)  # finding: unretried, untraced flight


class Rebalancer:
    def __init__(self, engine):
        self.engine = engine

    def shuffle(self, vm, dst):
        flight = self.engine.migrate(vm, dst)  # finding: bypasses the manager
        return flight


def drain(sim, vm, dst):
    return sim.engine.migrate(vm, dst)  # finding: nested engine attribute
