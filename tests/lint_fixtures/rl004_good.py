"""Fixture: RL004 — tolerance comparison and unitless equality pass."""


def is_idle(power_w):
    return abs(power_w) < 1e-9


def same_count(n_hosts, n_active):
    # No unit suffix: exact equality on counts is fine.
    return n_hosts == n_active


def maybe(power_w):
    # ``is None`` checks are not flagged.
    return power_w is None
