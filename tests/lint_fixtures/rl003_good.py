"""Fixture: RL003 — same-unit arithmetic and explicit conversion pass."""


def total_power(idle_w, dynamic_w):
    return idle_w + dynamic_w


def energy(power_w, horizon_s):
    # Multiplication is a conversion: W * s -> J.
    energy_j = power_w * horizon_s
    return energy_j


def compare(power_w, cap_w):
    return power_w > cap_w
