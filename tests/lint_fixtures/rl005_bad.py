"""Fixture: RL005 — mutable default arguments."""


def schedule(events=[]):  # finding: list literal default
    return events


def configure(options=None, overrides={}):  # finding: dict literal default
    return options, overrides


def tag(names=set()):  # finding: set() call default
    return names
