"""Fixture: RL001 — unseeded / global RNG use."""

import random

import numpy as np
from numpy import random as npr


def shuffle_hosts(hosts):
    np.random.shuffle(hosts)  # finding: global numpy RNG
    return hosts


def draw():
    return random.random()  # finding: global stdlib RNG


def make_rng():
    return random.Random()  # finding: Random() without a seed


def sample(n):
    return npr.randint(0, 10, size=n)  # finding: aliased numpy.random
