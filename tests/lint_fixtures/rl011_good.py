"""Fixture: RL011 — hot paths read the incremental index views."""


class Manager:
    def __init__(self, cluster):
        self.cluster = cluster

    def evaluate(self):
        # Sizing reads the maintained aggregates, not a fleet walk — and
        # hot paths hand back generators, not freshly built lists (RL015).
        committed = self.cluster.committed_capacity_cores()
        needed = self.cluster.demand_cores()
        if committed < needed:
            return list(h.name for h in self.cluster.parked_hosts())
        return []

    def react_to_shortfall(self):
        # The index views return only the hosts in the relevant state.
        overload = sum(
            max(0.0, h.demand_cores(0.0) - h.cores)
            for h in self.cluster.active_hosts()
        )
        if overload <= 0.25:
            return 0.0
        # A deliberate reconciliation pass must see every host — the
        # per-line suppression documents that choice.
        stuck = list(
            h
            for h in self.cluster.hosts  # reprolint: disable=RL011
            if h.out_of_service
        )
        return overload, stuck

    def report(self):
        # Cold paths may walk the inventory freely.
        return [h.name for h in self.cluster.hosts]
