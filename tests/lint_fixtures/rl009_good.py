"""Fixture: RL009 — transitions flow through the traced API."""

from repro.power.states import PowerState


def park(env, host):
    return env.process(host.park(PowerState.SLEEP))


def wake(env, host):
    return env.process(host.wake())


def direct(env, machine):
    # transition_to checks legality, samples latency once, and emits the
    # decision-trace events — the only sanctioned door.
    return env.process(machine.transition_to(PowerState.HIBERNATE))
