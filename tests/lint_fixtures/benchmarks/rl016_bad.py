"""RL016 bad fixture: raw file writes on the durable-artifact path.

Lives under ``benchmarks/`` in the fixture tree because RL016 is scoped
to artifact-writing modules (cache/checkpoint/trace/stream/cli/corpus
and everything in benchmarks/).
"""

import json
import os
from pathlib import Path


def write_summary(payload):
    with open("BENCH_demo.json", "w") as fh:  # finding
        json.dump(payload, fh)


def append_log(line):
    handle = open("campaign.log", mode="a")  # finding
    handle.write(line)
    handle.close()


def exclusive_create(path):
    return open(path, "x")  # finding


def fdopen_write(fd, payload):
    with os.fdopen(fd, "w") as fh:  # finding
        fh.write(payload)


def dynamic_mode(path, mode):
    return open(path, mode)  # finding


def path_write(payload):
    out = Path("BENCH_demo.json")
    out.write_text(payload)  # finding
    out.write_bytes(payload.encode("utf-8"))  # finding


def read_is_fine(path):
    with open(path) as fh:
        return fh.read()


def binary_read_is_fine(path):
    with open(path, "rb") as fh:
        return fh.read()
