"""RL016 good fixture: artifact writes routed through atomicio."""

from pathlib import Path

from repro.core.atomicio import atomic_write, atomic_write_json, atomic_write_text


def write_summary(payload):
    atomic_write_json(Path("BENCH_demo.json"), payload)


def write_trace(data):
    atomic_write(Path("trace.jsonl"), data)


def write_spec(text):
    atomic_write_text(Path("spec.json"), text)


def read_is_fine(path):
    with open(path, "rb") as fh:
        return fh.read()


def suppressed_append(path, line):
    # Append-structured streams heal torn tails via the checkpoint
    # resume protocol instead of whole-file replacement.
    handle = open(path, "ab")  # reprolint: disable=RL016
    handle.write(line)
    handle.close()
