"""Fixture: RL015 — hot functions reuse buffers and stream generators."""


def sample_once(rows, scratch):  # reprolint: hot
    # Preallocated scratch buffer, generator expressions, tuple keys:
    # nothing here allocates a fresh container per call or per row.
    total = 0.0
    for i, r in enumerate(rows):
        scratch[i] = r.load
        total += r.load
    worst = max(r.load for r in rows)
    key = (total, worst)
    return key


class Sampler:
    def __init__(self):
        # The reusable container is built once, off the hot path.
        self._by_name = {}

    def hot_tick(self, rows):  # reprolint: hot
        by_name = self._by_name
        by_name.clear()
        for r in rows:
            by_name[r.name] = r.load
        return sum(by_name.values())


def audit(rows):
    # Cold paths allocate freely.
    return sorted(rows, key=lambda r: r.load), [r.name for r in rows]
