"""Fixture: RL011 — full-cluster host scans inside the DRM hot paths."""


class Manager:
    def __init__(self, cluster):
        self.cluster = cluster

    def evaluate(self):
        total = 0.0
        for host in self.cluster.hosts:  # finding: O(fleet) scan per round
            total += host.demand_cores(0.0)
        return total

    def react_to_shortfall(self):
        overloaded = [
            h
            for h in self.cluster.hosts  # finding: watchdog runs every tick
            if h.demand_cores(0.0) > h.cores
        ]
        spare = sum(h.cores for h in self.cluster.hosts)  # finding: genexpr scan
        return overloaded, spare

    def audit(self):
        # Not a hot path: the rule only polices evaluate/react_to_shortfall.
        return [h.name for h in self.cluster.hosts]


def evaluate(cluster):
    # Module-level hot-path function: same discipline applies.
    return {h.name for h in cluster.hosts}  # finding: setcomp scan
