"""Fixture: RL007 — assert used for runtime validation in library code."""


def place(vm, host):
    assert host is not None, "host required"  # finding: stripped under -O
    assert vm.mem_gb > 0  # finding
    host.place(vm)
