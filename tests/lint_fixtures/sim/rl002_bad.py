"""Fixture: RL002 — wall clock / environment nondeterminism.

Lives under a ``sim/`` directory because RL002 is package-scoped: it
only polices modules whose path crosses a simulation package
(``sim``/``core``/``datacenter``/``power``/``placement``).
"""

import time
import uuid
from datetime import datetime


def stamp():
    return time.time()  # finding: wall clock


def token():
    return uuid.uuid4()  # finding: entropy source


def now():
    return datetime.now()  # finding: wall clock


def order_hosts(hosts):
    for host in {h.name for h in hosts}:  # finding: unordered set iteration
        print(host)
