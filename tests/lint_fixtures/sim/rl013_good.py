"""Fixture: RL013 — every event covered, every counter registered."""


class PingEvent:
    event = "ping"


class PongEvent:
    event = "pong"


EVENT_COVERAGE = {
    "ping": ("sequence",),
    "pong": ("sequence", "pairing"),
}

EXTRA_FIELDS = (
    "pings",
    "pongs",
)


def validate(events, flag):
    open_pings = 0
    for ev in events:
        if ev.seq < 0:
            flag("sequence", ev.seq, ev.t, "negative sequence number")
        if ev.tag == "ping":
            open_pings += 1
        elif ev.tag == "pong":
            open_pings -= 1
            if open_pings < 0:
                flag("pairing", ev.seq, ev.t, "pong without a ping")


def publish(report, pings, pongs):
    report.extra.update({"pings": float(pings)})
    report.extra["pongs"] = float(pongs)
