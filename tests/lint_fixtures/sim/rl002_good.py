"""Fixture: RL002 — simulated time and ordered iteration pass."""


def stamp(env):
    return env.now


def order_hosts(hosts):
    for host in sorted({h.name for h in hosts}):
        print(host)
