"""Fixture: RL013 — events/counters escaping the validation registries.

One producer module carrying its own registries, with every mismatch
direction represented: an uncovered event, a registry entry for a ghost
event, a family no validator flags, a rogue ``report.extra`` counter,
and a declared counter nobody writes.
"""


class PingEvent:
    event = "ping"


class OrphanEvent:  # finding: 'orphan' missing from EVENT_COVERAGE
    event = "orphan"


EVENT_COVERAGE = {
    "ping": ("sequence", "never-checked"),  # finding: family never flagged
    "ghost": ("sequence",),  # finding: no producer defines 'ghost'
}

EXTRA_FIELDS = (  # finding: 'phantom' declared but never written
    "covered",
    "phantom",
)


def validate(events, flag):
    for ev in events:
        if ev.seq < 0:
            flag("sequence", ev.seq, ev.t, "negative sequence number")


def publish(report):
    report.extra.update(
        {
            "covered": 1.0,
            "rogue": 2.0,  # finding: not in EXTRA_FIELDS
        }
    )
