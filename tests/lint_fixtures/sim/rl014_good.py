"""Fixture: RL014 — every mutation path bumps the epoch it feeds."""


class Host:
    def __init__(self):
        self.vms = {}
        self._tax = 0.0
        self._demand_epoch = 0
        self._demand_key = None
        self._demand_value = 0.0

    def place(self, vm):
        self.vms[vm.name] = vm
        self._tax += vm.tax
        self._demand_epoch += 1

    def remove(self, vm):
        if vm.name not in self.vms:
            raise KeyError(vm.name)  # error path commits nothing
        del self.vms[vm.name]
        self._demand_epoch += 1

    def set_tax(self, tax):
        self._tax = tax
        self._demand_epoch += 1

    def _bump(self):
        self._demand_epoch += 1

    def clear(self):
        # Bumping through a same-class helper call also counts.
        self.vms.clear()
        self._bump()

    def demand_cores(self, t):
        key = (t, self._demand_epoch)
        if self._demand_key == key:
            return self._demand_value
        self._demand_key = key
        self._demand_value = sum(vm.demand(t) for vm in self.vms.values())
        return self._demand_value + self._tax
