"""Fixture: RL014 — writes to memo-feeding fields must bump the epoch.

``place`` establishes that ``vms`` and ``_tax`` feed the
``_demand_epoch``-keyed memo (it writes them *and* bumps); ``remove``
then mutates ``vms`` with the bump deleted (the mutation-test shape),
and ``set_tax`` only bumps on one branch.
"""


class Host:
    def __init__(self):
        self.vms = {}
        self._tax = 0.0
        self._demand_epoch = 0
        self._demand_key = None
        self._demand_value = 0.0

    def place(self, vm):
        self.vms[vm.name] = vm
        self._tax += vm.tax
        self._demand_epoch += 1

    def remove(self, vm):
        del self.vms[vm.name]  # finding: bump statement was removed

    def set_tax(self, tax, urgent):
        self._tax = tax  # finding: bump only on the urgent branch
        if urgent:
            self._demand_epoch += 1

    def demand_cores(self, t):
        key = (t, self._demand_epoch)
        if self._demand_key == key:
            return self._demand_value
        self._demand_key = key
        self._demand_value = sum(vm.demand(t) for vm in self.vms.values())
        return self._demand_value + self._tax
