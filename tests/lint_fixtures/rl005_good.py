"""Fixture: RL005 — None-sentinel defaults pass."""


def schedule(events=None):
    return list(events) if events else []


def configure(limit=10, name="host", factor=1.5):
    return limit, name, factor
