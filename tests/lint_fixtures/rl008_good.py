"""Fixture: RL008 — plain-data fields and default factories pass."""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class ScenarioArtifacts:
    name: str
    energy_kwh: float
    samples: List[Tuple[float, float]]
    # default_factory is never stored on instances, so a lambda is fine.
    tags: Dict[str, str] = field(default_factory=lambda: {"policy": "s3"})
    note: Optional[str] = None


@dataclass
class PlannerConfig:
    # Not a result-suffixed class name: fields are not checked.
    scorer: Callable[[float], float] = min
