"""Unit tests for the atomic-write helper and cache torn-entry quarantine."""

import os
import pickle

import pytest

from repro.core.atomicio import atomic_write, atomic_write_json, atomic_write_text
from repro.core.cache import _ENTRY_MAGIC, ResultCache


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write(target, b"payload")
        assert target.read_bytes() == b"payload"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write(target, b"new")
        assert target.read_bytes() == b"new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.bin"
        atomic_write(target, b"x")
        assert target.read_bytes() == b"x"

    def test_no_tmp_residue_on_success(self, tmp_path):
        atomic_write(tmp_path / "out.bin", b"x")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_failed_write_leaves_target_and_no_tmp(self, tmp_path, monkeypatch):
        target = tmp_path / "out.bin"
        atomic_write(target, b"original")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write(target, b"would tear")
        monkeypatch.undo()
        assert target.read_bytes() == b"original"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_text_and_json_helpers(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "héllo\n")
        assert (tmp_path / "t.txt").read_text() == "héllo\n"
        atomic_write_json(tmp_path / "d.json", {"b": 1, "a": [2]})
        assert (
            (tmp_path / "d.json").read_text()
            == '{\n  "a": [\n    2\n  ],\n  "b": 1\n}\n'
        )


class TestCacheQuarantine:
    def test_entry_frame_verifies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("deadbeef", {"x": 1})
        raw = (tmp_path / "deadbeef.pkl").read_bytes()
        assert raw.startswith(_ENTRY_MAGIC)
        assert ResultCache(tmp_path).get("deadbeef") == {"x": 1}

    def test_torn_entry_quarantined_not_raised(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("torn", {"x": 1})
        path = tmp_path / "torn.pkl"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])  # crash mid-write

        fresh = ResultCache(tmp_path)
        assert fresh.get("torn") is None
        assert fresh.quarantined == 1
        assert not path.exists()
        assert (tmp_path / "torn.quarantine").exists()
        # Quarantined entries never satisfy later reads either.
        assert ResultCache(tmp_path).get("torn") is None

    def test_bitrot_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("rot", [1, 2, 3])
        path = tmp_path / "rot.pkl"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        fresh = ResultCache(tmp_path)
        assert fresh.get("rot") is None
        assert fresh.quarantined == 1

    def test_preframe_entry_quarantined(self, tmp_path):
        # An entry written by the pre-digest format: raw pickle bytes.
        (tmp_path / "legacy.pkl").write_bytes(
            pickle.dumps({"old": True}, protocol=pickle.HIGHEST_PROTOCOL)
        )
        fresh = ResultCache(tmp_path)
        assert fresh.get("legacy") is None
        assert fresh.quarantined == 1

    def test_quarantined_entries_leave_the_entry_glob(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("good", 1)
        (tmp_path / "bad.pkl").write_bytes(b"garbage")
        fresh = ResultCache(tmp_path)
        assert fresh.get("bad") is None
        assert [p.name for p in fresh.entries()] == ["good.pkl"]

    def test_memory_layer_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("hot", {"v": 9})
        # Corrupt on disk; the in-process layer still serves the value.
        (tmp_path / "hot.pkl").write_bytes(b"junk")
        assert cache.get("hot") == {"v": 9}
        assert cache.quarantined == 0
