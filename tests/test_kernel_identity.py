"""Bitwise identity of the batched kernel against the scalar paths.

The fleet-scale kernel (vectorized demand grids, per-host aggregate
grids, vectorized power curves) is an *optimization*, not a behavior
change: every value it serves must equal — bit for bit, not within a
tolerance — what the scalar code path computes.  These tests pin that
contract directly, below the level the golden trace and differential
suites already cover.
"""

import random

import pytest

from repro.core import run_scenario, s3_policy
from repro.power.models import LinearPowerModel, PiecewisePowerModel
from repro.workload import FleetSpec
from repro.workload.fleet import build_fleet
from repro.workload.traces import trace_grid


class TestPowerGridIdentity:
    """``power_at_grid`` returns exactly ``power_at`` per element."""

    def _points(self):
        rng = random.Random(20130624)
        pts = [rng.random() for _ in range(500)]
        # Edges and exact knot hits matter most for piecewise curves.
        pts += [0.0, 1.0, 0.1, 0.2, 0.25, 0.5, 0.75, 0.9]
        return pts

    def test_linear_model(self):
        model = LinearPowerModel(idle_w=155.0, peak_w=269.0)
        pts = self._points()
        grid = model.power_at_grid(pts)
        assert [float(v) for v in grid] == [model.power_at(u) for u in pts]

    def test_piecewise_model(self):
        model = PiecewisePowerModel(
            [(0.0, 150.0), (0.25, 190.0), (0.5, 220.0), (1.0, 270.0)]
        )
        pts = self._points()
        grid = model.power_at_grid(pts)
        assert [float(v) for v in grid] == [model.power_at(u) for u in pts]


class TestTraceGridIdentity:
    """``trace_grid`` equals scalar ``trace.at`` over the whole fleet."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_fleet_traces_bit_identical(self, seed):
        fleet = build_fleet(
            FleetSpec(n_vms=24, horizon_s=86_400.0, shared_fraction=0.3),
            seed=seed,
        )
        ticks = [i * 60.0 for i in range(0, 256)]
        cache = {}
        for vm in fleet:
            grid = trace_grid(vm.trace, ticks, cache)
            scalar = [vm.trace.at(t) for t in ticks]
            assert [float(v) for v in grid] == scalar, vm.name

    def test_shared_index_cache_is_per_shape(self):
        # Two sample grids of different shapes through one cache must not
        # serve each other's gather indices.
        fleet = build_fleet(
            FleetSpec(n_vms=8, horizon_s=86_400.0), seed=1
        )
        ticks = [i * 300.0 for i in range(64)]
        cache = {}
        for vm in fleet:
            grid = trace_grid(vm.trace, ticks, cache)
            assert [float(v) for v in grid] == [vm.trace.at(t) for t in ticks]


class TestScenarioGridIdentity:
    """A live scenario's grids match fresh scalar recomputation."""

    def test_host_and_vm_grids_match_scalar_walk(self):
        result = run_scenario(
            s3_policy(),
            n_hosts=8,
            horizon_s=4 * 3600.0,
            seed=3,
            fleet_spec=FleetSpec(n_vms=32, horizon_s=4 * 3600.0),
        )
        sampler = result.sampler
        cluster = result.cluster
        epoch = sampler.epoch_s
        assert sampler._grid_n > 0
        checked_vms = checked_hosts = 0
        for gi in range(0, min(sampler._grid_n, 32), 3):
            t = (sampler._grid_i0 + gi) * epoch
            for vm in cluster.iter_vms():
                if vm._demand_grid_chunk != sampler._grid_chunk_id:
                    continue
                fraction = vm.trace.at(t)
                assert vm._demand_grid[gi] == min(fraction, 1.0) * vm.vcpus
                checked_vms += 1
            for host in cluster.hosts:
                if (
                    host._grid_chunk != sampler._grid_chunk_id
                    or host._grid_tag != host._demand_epoch
                ):
                    continue
                # Scalar reference: VM-dict-order accumulation from zero,
                # exactly the order the fused walk uses.
                expected = 0.0
                for vm in host.vms.values():
                    expected += min(vm.trace.at(t), 1.0) * vm.vcpus
                assert host._grid_resident[gi] == expected
                u = min(expected / host.cores, 1.0)
                assert host._grid_util[gi] == u
                assert (
                    host._grid_power[gi]
                    == host.machine.profile.active_model.power_at(u)
                )
                checked_hosts += 1
        # The test must actually exercise the fast path, not vacuously pass.
        assert checked_vms > 50
        assert checked_hosts > 5
