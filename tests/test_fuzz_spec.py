"""Tests for the fuzz spec grammar and its canonical JSON codec."""

import json

import pytest

from repro.fuzz.generate import generate_spec
from repro.fuzz.spec import (
    SPEC_VERSION,
    BrownoutWindow,
    BurstWindow,
    ChurnShape,
    FaultShape,
    FuzzSpec,
    PolicyShape,
    SpecError,
    TelemetryShape,
    WorkloadShape,
)


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = FuzzSpec()
        assert FuzzSpec.loads(spec.dumps()) == spec

    def test_generated_specs_round_trip(self):
        # Property over a spread of generated specs: loads(dumps(s)) == s.
        for index in range(25):
            spec = generate_spec(424242, index)
            assert FuzzSpec.loads(spec.dumps()) == spec, "index {}".format(index)

    def test_dumps_is_canonical(self):
        spec = generate_spec(424242, 3)
        text = spec.dumps()
        assert text == FuzzSpec.loads(text).dumps()
        assert text.endswith("\n")
        # Keys sorted at every level.
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert list(data["workload"]) == sorted(data["workload"])

    def test_full_grammar_round_trips(self):
        spec = FuzzSpec(
            seed=99,
            horizon_s=7200.0,
            epoch_s=30.0,
            policy=PolicyShape(preset="S5-PM", headroom=0.25),
            workload=WorkloadShape(n_vms=5, shared_fraction=0.4),
            churn=ChurnShape(rate_per_h=2.0, lifetime_s=1800.0),
            faults=FaultShape(
                wake_failure_rate=0.1,
                permanent_fraction=0.3,
                mttr_h=2.0,
                bursts=(BurstWindow(100.0, 700.0, 0.5),),
                brownouts=(BrownoutWindow(0.0, 600.0, 4.0),),
                migration_failure_rate=0.2,
            ),
            telemetry=TelemetryShape(delay_s=120.0, dropout_rate=0.1),
        )
        restored = FuzzSpec.loads(spec.dumps())
        assert restored == spec
        assert restored.faults.bursts == spec.faults.bursts


class TestStrictDecoding:
    def test_unknown_key_rejected(self):
        data = FuzzSpec().to_json_dict()
        data["surprise"] = 1
        with pytest.raises(SpecError, match="unknown key"):
            FuzzSpec.from_json_dict(data)

    def test_missing_key_rejected(self):
        data = FuzzSpec().to_json_dict()
        del data["workload"]
        with pytest.raises(SpecError, match="missing key"):
            FuzzSpec.from_json_dict(data)

    def test_nested_unknown_key_rejected(self):
        data = FuzzSpec().to_json_dict()
        data["faults"]["blast_radius"] = 3
        with pytest.raises(SpecError, match="blast_radius"):
            FuzzSpec.from_json_dict(data)

    def test_wrong_version_rejected(self):
        data = FuzzSpec().to_json_dict()
        data["spec_version"] = SPEC_VERSION + 1
        with pytest.raises(SpecError, match="spec_version"):
            FuzzSpec.from_json_dict(data)

    def test_wrong_type_rejected(self):
        data = FuzzSpec().to_json_dict()
        data["seed"] = "seven"
        with pytest.raises(SpecError, match="expected an integer"):
            FuzzSpec.from_json_dict(data)

    def test_bool_is_not_an_integer(self):
        data = FuzzSpec().to_json_dict()
        data["seed"] = True
        with pytest.raises(SpecError, match="expected an integer"):
            FuzzSpec.from_json_dict(data)

    def test_invalid_value_reported_with_location(self):
        data = FuzzSpec().to_json_dict()
        data["cluster"]["n_hosts"] = 0
        with pytest.raises(SpecError, match="spec.cluster"):
            FuzzSpec.from_json_dict(data)

    def test_unparsable_json_rejected(self):
        with pytest.raises(SpecError, match="unparsable"):
            FuzzSpec.loads("{nope")


class TestValidation:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown policy preset"):
            PolicyShape(preset="NotAPolicy")

    def test_burst_window_ordering(self):
        with pytest.raises(ValueError, match="start < end"):
            BurstWindow(start_s=100.0, end_s=100.0, rate=0.5)

    def test_brownout_scale_floor(self):
        with pytest.raises(ValueError, match="scale"):
            BrownoutWindow(start_s=0.0, end_s=60.0, scale=0.5)

    def test_fail_fraction_ordering(self):
        with pytest.raises(ValueError, match="fractions"):
            FaultShape(min_fail_fraction=0.8, max_fail_fraction=0.2)

    def test_workload_weight_lengths(self):
        with pytest.raises(ValueError, match="length mismatch"):
            WorkloadShape(vcpu_choices=(1, 2), vcpu_weights=(1.0,))


class TestScenarioBridge:
    def test_scenario_spec_is_traced_and_cacheable(self):
        spec = FuzzSpec(seed=5)
        scenario = spec.scenario_spec()
        assert scenario.trace is True
        assert scenario.label == spec.label
        assert scenario.digest_extra == {"fuzz_spec_version": SPEC_VERSION}
        assert scenario.digest()  # cacheable: no Uncacheable raised

    def test_digest_keyed_on_grammar_version(self):
        # The same scenario without the fuzz digest_extra must hash
        # differently, so a grammar bump invalidates only fuzz artifacts.
        spec = FuzzSpec(seed=5)
        scenario = spec.scenario_spec()
        import dataclasses

        plain = dataclasses.replace(scenario, digest_extra=None)
        assert plain.digest() != scenario.digest()

    def test_equal_specs_share_a_digest(self):
        a = FuzzSpec(seed=5).scenario_spec()
        b = FuzzSpec(seed=5).scenario_spec()
        assert a.digest() == b.digest()

    def test_replaced_produces_new_value(self):
        spec = FuzzSpec(seed=5)
        other = spec.replaced(horizon_s=3600.0)
        assert other.horizon_s == 3600.0
        assert spec.horizon_s != 3600.0
