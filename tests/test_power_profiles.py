"""Unit tests for server power profiles."""

import pytest

from repro.power import (
    IllegalTransition,
    LinearPowerModel,
    PowerState,
    ServerPowerProfile,
    TransitionSpec,
)


@pytest.fixture
def profile():
    return ServerPowerProfile(
        name="test",
        active_model=LinearPowerModel(100.0, 200.0),
        parked_power_w={PowerState.SLEEP: 10.0, PowerState.OFF: 5.0},
        transitions={
            (PowerState.ACTIVE, PowerState.SLEEP): TransitionSpec(5.0, 120.0),
            (PowerState.SLEEP, PowerState.ACTIVE): TransitionSpec(10.0, 150.0),
            (PowerState.ACTIVE, PowerState.OFF): TransitionSpec(30.0, 100.0),
            (PowerState.OFF, PowerState.ACTIVE): TransitionSpec(120.0, 180.0),
        },
    )


class TestConstruction:
    def test_active_in_parked_table_rejected(self):
        with pytest.raises(ValueError):
            ServerPowerProfile(
                name="bad",
                active_model=LinearPowerModel(100.0, 200.0),
                parked_power_w={PowerState.ACTIVE: 100.0},
            )

    def test_negative_parked_power_rejected(self):
        with pytest.raises(ValueError):
            ServerPowerProfile(
                name="bad",
                active_model=LinearPowerModel(100.0, 200.0),
                parked_power_w={PowerState.SLEEP: -1.0},
            )

    def test_transition_to_undefined_state_rejected(self):
        with pytest.raises(ValueError, match="no parked power"):
            ServerPowerProfile(
                name="bad",
                active_model=LinearPowerModel(100.0, 200.0),
                parked_power_w={},
                transitions={
                    (PowerState.ACTIVE, PowerState.SLEEP): TransitionSpec(1, 1),
                    (PowerState.SLEEP, PowerState.ACTIVE): TransitionSpec(1, 1),
                },
            )


class TestStablePower:
    def test_active_uses_model(self, profile):
        assert profile.stable_power(PowerState.ACTIVE, 0.5) == pytest.approx(150.0)

    def test_parked_states(self, profile):
        assert profile.stable_power(PowerState.SLEEP) == 10.0
        assert profile.stable_power(PowerState.OFF) == 5.0

    def test_undefined_state_raises(self, profile):
        with pytest.raises(ValueError):
            profile.stable_power(PowerState.HIBERNATE)

    def test_idle_peak_shortcuts(self, profile):
        assert profile.idle_w == 100.0
        assert profile.peak_w == 200.0


class TestTransitions:
    def test_lookup(self, profile):
        spec = profile.transition(PowerState.ACTIVE, PowerState.SLEEP)
        assert spec.latency_s == 5.0

    def test_illegal_raises_with_states(self, profile):
        with pytest.raises(IllegalTransition) as exc_info:
            profile.transition(PowerState.SLEEP, PowerState.OFF)
        assert exc_info.value.src is PowerState.SLEEP
        assert exc_info.value.dst is PowerState.OFF

    def test_can_transition(self, profile):
        assert profile.can_transition(PowerState.ACTIVE, PowerState.SLEEP)
        assert not profile.can_transition(PowerState.SLEEP, PowerState.OFF)

    def test_park_states_sorted_by_exit_latency(self, profile):
        assert profile.park_states() == [PowerState.SLEEP, PowerState.OFF]

    def test_round_trip(self, profile):
        latency, energy = profile.round_trip(PowerState.SLEEP)
        assert latency == pytest.approx(15.0)
        assert energy == pytest.approx(5 * 120 + 10 * 150)


class TestBreakeven:
    def test_closed_form(self, profile):
        # idle*T = E_rt + parked*(T - L_rt)
        # 100 T = 2100 + 10 (T - 15)  =>  90 T = 1950  =>  T ~ 21.67
        assert profile.breakeven_idle_s(PowerState.SLEEP) == pytest.approx(
            1950.0 / 90.0
        )

    def test_never_below_round_trip_latency(self, profile):
        assert profile.breakeven_idle_s(PowerState.SLEEP) >= 15.0

    def test_deeper_state_has_longer_breakeven(self, profile):
        assert profile.breakeven_idle_s(PowerState.OFF) > profile.breakeven_idle_s(
            PowerState.SLEEP
        )

    def test_infinite_when_parked_draw_exceeds_idle(self):
        profile = ServerPowerProfile(
            name="weird",
            active_model=LinearPowerModel(10.0, 200.0),
            parked_power_w={PowerState.SLEEP: 50.0},
            transitions={
                (PowerState.ACTIVE, PowerState.SLEEP): TransitionSpec(1, 1),
                (PowerState.SLEEP, PowerState.ACTIVE): TransitionSpec(1, 1),
            },
        )
        assert profile.breakeven_idle_s(PowerState.SLEEP) == float("inf")
