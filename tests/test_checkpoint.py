"""Checkpoint/resume: differential determinism, rejection, streaming, branch.

The hard bar: a run resumed from any checkpoint must produce a decision
trace **byte-identical** to the uninterrupted run's, on both management
planes, with churn, faults and stale telemetry in play.  The trace hash
is the certification key (same as the differential suite), and the trace
validator certifies the resumed runs too.
"""

import json

import pytest

from repro.core import run_scenario
from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    read_manifest,
)
from repro.core.policies import hybrid_policy, s3_policy, s5_policy
from repro.core.runner import branch_scenario, resume_scenario
from repro.datacenter import FaultModel, RepairModel
from repro.telemetry.validate import validate_trace

KW = dict(
    n_hosts=6,
    n_vms=18,
    horizon_s=3 * 3600.0,
    seed=11,
    churn_rate_per_h=6.0,
    trace=True,
)
EVERY_S = 1800.0


def _checkpointed(tmp_path, config, name, **overrides):
    kwargs = dict(KW)
    kwargs.update(overrides)
    ckdir = tmp_path / name
    result = run_scenario(
        config, checkpoint_every_s=EVERY_S, checkpoint_dir=ckdir, **kwargs
    )
    assert result.checkpoints is not None
    assert result.checkpoints.saved, "no checkpoint was ever written"
    return result


class TestDifferentialDeterminism:
    def test_checkpointing_does_not_perturb_the_run(self, tmp_path):
        baseline = run_scenario(s3_policy(), **KW)
        ckpt = _checkpointed(tmp_path, s3_policy(), "ck")
        assert ckpt.trace.trace_hash() == baseline.trace.trace_hash()

    @pytest.mark.parametrize("preset", [s3_policy, hybrid_policy])
    def test_resume_is_byte_identical_centralized(self, tmp_path, preset):
        baseline = run_scenario(preset(), **KW)
        ckpt = _checkpointed(tmp_path, preset(), "ck")
        path, manifest = ckpt.checkpoints.saved[len(ckpt.checkpoints.saved) // 2]
        assert manifest["sim_time_s"] < KW["horizon_s"]
        resumed = resume_scenario(path)
        assert resumed.trace.trace_hash() == baseline.trace.trace_hash()
        assert resumed.report.to_dict() == baseline.report.to_dict()
        outcome = validate_trace(resumed.trace, report=resumed.report)
        assert outcome.ok, outcome.render_text()

    def test_resume_is_byte_identical_neat_plane(self, tmp_path):
        config = s3_policy().with_overrides(
            plane="neat", neat_request_delay_s=30.0, neat_request_dropout=0.1
        )
        baseline = run_scenario(config, **KW)
        ckpt = _checkpointed(tmp_path, config, "neat")
        path, _ = ckpt.checkpoints.saved[2]
        resumed = resume_scenario(path)
        assert resumed.trace.trace_hash() == baseline.trace.trace_hash()
        outcome = validate_trace(resumed.trace, report=resumed.report)
        assert outcome.ok, outcome.render_text()

    def test_resume_with_faults_and_pending_repairs(self, tmp_path):
        fault_model = FaultModel(
            wake_failure_rate=0.3,
            permanent_fraction=0.5,
            repair=RepairModel(mttr_s=1800.0),
        )
        baseline = run_scenario(s3_policy(), fault_model=fault_model, **KW)
        ckpt = _checkpointed(
            tmp_path, s3_policy(), "faults", fault_model=fault_model
        )
        for path, _ in ckpt.checkpoints.saved[1::2]:
            resumed = resume_scenario(path)
            assert resumed.trace.trace_hash() == baseline.trace.trace_hash()

    def test_every_checkpoint_of_one_run_resumes_identically(self, tmp_path):
        baseline = run_scenario(s3_policy(), **KW)
        ckpt = _checkpointed(tmp_path, s3_policy(), "all")
        for path, _ in ckpt.checkpoints.saved:
            resumed = resume_scenario(path)
            assert resumed.trace.trace_hash() == baseline.trace.trace_hash()


class TestRejection:
    def _one_checkpoint(self, tmp_path):
        ckpt = _checkpointed(tmp_path, s3_policy(), "rej")
        return ckpt.checkpoints.saved[0][0]

    def test_truncated_payload_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(CheckpointError, match="truncated"):
            resume_scenario(path)

    def test_truncated_manifest_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError, match="truncated"):
            resume_scenario(path)

    def test_corrupted_payload_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            resume_scenario(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        path.write_bytes(b"NOTACKPT\n" + path.read_bytes())
        with pytest.raises(CheckpointError, match="bad magic"):
            resume_scenario(path)

    def test_stale_writer_version_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        raw = path.read_bytes()
        magic, rest = raw.split(b"\n", 1)
        header, payload = rest.split(b"\n", 1)
        manifest = json.loads(header)
        manifest["repro_version"] = "0.0.0-other"
        path.write_bytes(
            magic + b"\n"
            + json.dumps(manifest, sort_keys=True).encode() + b"\n"
            + payload
        )
        with pytest.raises(CheckpointError, match="stale"):
            resume_scenario(path)

    def test_incompatible_schema_rejected(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        raw = path.read_bytes()
        magic, rest = raw.split(b"\n", 1)
        header, payload = rest.split(b"\n", 1)
        manifest = json.loads(header)
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        manifest["schema"] = CHECKPOINT_SCHEMA + 1
        path.write_bytes(
            magic + b"\n"
            + json.dumps(manifest, sort_keys=True).encode() + b"\n"
            + payload
        )
        with pytest.raises(CheckpointError, match="schema"):
            resume_scenario(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            resume_scenario(tmp_path / "absent.repro")

    def test_manifest_carries_runner_metadata(self, tmp_path):
        path = self._one_checkpoint(tmp_path)
        manifest = read_manifest(path)
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        assert manifest["policy"] == s3_policy().name
        assert manifest["seed"] == KW["seed"]
        assert manifest["horizon_s"] == KW["horizon_s"]
        assert len(manifest["sha256"]) == 64


class TestStreaming:
    def test_stream_resume_heals_torn_tail_byte_identically(self, tmp_path):
        ref = tmp_path / "ref.jsonl"
        run_scenario(s3_policy(), stream=ref, **KW)
        golden = ref.read_bytes()

        live = tmp_path / "live.jsonl"
        ckpt = _checkpointed(tmp_path, s3_policy(), "stream", stream=live)
        assert live.read_bytes() == golden
        path, manifest = ckpt.checkpoints.saved[2]
        assert manifest["stream_offset"] > 0
        # Simulate a crash after the checkpoint: a torn half-record.
        with open(live, "ab") as fh:
            fh.write(b'{"window": 999, "t": 1e9, "ju')
        resume_scenario(path, stream=live)
        assert live.read_bytes() == golden

    def test_stream_resume_requires_recorded_offset(self, tmp_path):
        ckpt = _checkpointed(tmp_path, s3_policy(), "nostream")
        path, _ = ckpt.checkpoints.saved[0]
        with pytest.raises(ValueError, match="stream"):
            resume_scenario(path, stream=tmp_path / "late.jsonl")

    def test_stream_windows_are_sorted_json_lines(self, tmp_path):
        out = tmp_path / "s.jsonl"
        run_scenario(s3_policy(), stream=out, **KW)
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "repro-stream"
        windows = [json.loads(line) for line in lines[1:]]
        assert [w["window"] for w in windows] == list(range(len(windows)))
        assert all("power_w" in w and "shortfall_cores" in w for w in windows)


class TestBoundedSeries:
    def test_bounded_report_matches_full_series(self):
        full = run_scenario(s3_policy(), **KW)
        bounded = run_scenario(s3_policy(), bounded_series=True, **KW)
        ref = full.report.to_dict()
        got = bounded.report.to_dict()
        assert set(ref) == set(got)
        for key, want in ref.items():
            have = got[key]
            if isinstance(want, float):
                assert have == pytest.approx(want, rel=1e-9), key
            else:
                assert have == want, key

    def test_bounded_series_keeps_no_samples(self):
        bounded = run_scenario(s3_policy(), bounded_series=True, **KW)
        series = bounded.sampler.series["power_w"]
        assert len(series._times) == 0
        assert len(series) > 0
        with pytest.raises(RuntimeError, match="no samples"):
            series.values
        # The trace is unaffected by the series representation.
        full = run_scenario(s3_policy(), **KW)
        assert bounded.trace.trace_hash() == full.trace.trace_hash()


class TestBranch:
    def test_branch_fans_warm_state_across_policies(self, tmp_path):
        ckpt = _checkpointed(tmp_path, s3_policy(), "branch")
        path, manifest = ckpt.checkpoints.saved[2]
        for preset in (s5_policy, hybrid_policy):
            result = branch_scenario(path, preset())
            assert result.report.policy == preset().name
            # The branch continues the parent horizon from the snapshot.
            assert result.env.now == KW["horizon_s"]

    def test_branch_same_policy_reproduces_parent(self, tmp_path):
        baseline = run_scenario(s3_policy(), **KW)
        ckpt = _checkpointed(tmp_path, s3_policy(), "same")
        path, _ = ckpt.checkpoints.saved[1]
        result = branch_scenario(path, s3_policy())
        assert result.trace.trace_hash() == baseline.trace.trace_hash()

    def test_branch_rejects_plane_mismatch(self, tmp_path):
        ckpt = _checkpointed(tmp_path, s3_policy(), "plane")
        path, _ = ckpt.checkpoints.saved[0]
        neat = s3_policy().with_overrides(plane="neat")
        with pytest.raises(CheckpointError, match="plane"):
            branch_scenario(path, neat)

    def test_branch_extends_horizon(self, tmp_path):
        ckpt = _checkpointed(tmp_path, s3_policy(), "long")
        path, _ = ckpt.checkpoints.saved[0]
        result = branch_scenario(path, s5_policy(), horizon_s=4 * 3600.0)
        assert result.env.now == 4 * 3600.0
