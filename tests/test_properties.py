"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import VM
from repro.migration import PreCopyModel
from repro.placement import PackingError, first_fit_decreasing
from repro.power import EnergyMeter, LinearPowerModel, PiecewisePowerModel
from repro.power.models import specpower_like_model
from repro.prototype import PROTOTYPE_BLADE, energy_during_gap
from repro.power.states import PowerState
from repro.sim import Environment
from repro.telemetry import TimeSeries
from repro.workload import (
    BurstyTrace,
    CompositeTrace,
    DiurnalTrace,
    FlatTrace,
    NoisyTrace,
)


# ---------------------------------------------------------------------------
# Energy meter
# ---------------------------------------------------------------------------

power_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=1000.0),  # duration
        st.floats(min_value=0.0, max_value=500.0),  # watts
    ),
    min_size=1,
    max_size=30,
)


@given(steps=power_steps, initial_w=st.floats(min_value=0.0, max_value=500.0))
def test_energy_meter_matches_manual_integral(steps, initial_w):
    meter = EnergyMeter(now=0.0, power_w=initial_w)
    t = 0.0
    expected = 0.0
    current_w = initial_w
    for duration, watts in steps:
        expected += current_w * duration
        t += duration
        meter.set_power(t, watts)
        current_w = watts
    assert meter.energy_j(t) == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(steps=power_steps)
def test_energy_meter_is_monotone_in_time(steps):
    meter = EnergyMeter(now=0.0, power_w=100.0)
    t = 0.0
    last_energy = 0.0
    for duration, watts in steps:
        t += duration
        meter.set_power(t, watts)
        energy = meter.energy_j(t)
        assert energy >= last_energy - 1e-9
        last_energy = energy


# ---------------------------------------------------------------------------
# Power models
# ---------------------------------------------------------------------------

@given(
    idle=st.floats(min_value=0.0, max_value=300.0),
    extra=st.floats(min_value=0.0, max_value=300.0),
    u=st.floats(min_value=0.0, max_value=1.0),
)
def test_linear_model_bounded_by_endpoints(idle, extra, u):
    m = LinearPowerModel(idle, idle + extra)
    p = m.power_at(u)
    assert idle - 1e-9 <= p <= idle + extra + 1e-9


@given(
    watts=st.lists(
        st.floats(min_value=0.0, max_value=500.0), min_size=2, max_size=12
    ),
    u=st.floats(min_value=0.0, max_value=1.0),
)
def test_piecewise_model_within_calibration_range(watts, u):
    n = len(watts)
    points = [(i / (n - 1), w) for i, w in enumerate(watts)]
    m = PiecewisePowerModel(points)
    p = m.power_at(u)
    assert min(watts) - 1e-9 <= p <= max(watts) + 1e-9


@given(
    u1=st.floats(min_value=0.0, max_value=1.0),
    u2=st.floats(min_value=0.0, max_value=1.0),
)
def test_specpower_model_monotone(u1, u2):
    m = specpower_like_model()
    lo, hi = sorted((u1, u2))
    assert m.power_at(lo) <= m.power_at(hi) + 1e-9


# ---------------------------------------------------------------------------
# Pre-copy migration model
# ---------------------------------------------------------------------------

@given(
    mem=st.floats(min_value=0.5, max_value=512.0),
    dirty=st.floats(min_value=0.0, max_value=2.0),
    bw=st.floats(min_value=0.1, max_value=10.0),
)
def test_precopy_invariants(mem, dirty, bw):
    model = PreCopyModel(bandwidth_gbps=bw)
    outcome = model.solve(mem, dirty)
    assert outcome.total_time_s > 0
    assert 0 <= outcome.downtime_s <= outcome.total_time_s
    assert outcome.transferred_gb >= mem - 1e-9
    assert outcome.rounds >= 1
    # Everything transferred must fit in the elapsed time at bandwidth bw.
    assert outcome.transferred_gb / bw == pytest.approx(outcome.total_time_s)


@given(
    mem1=st.floats(min_value=0.5, max_value=64.0),
    mem2=st.floats(min_value=0.5, max_value=64.0),
    dirty=st.floats(min_value=0.0, max_value=0.9),
)
def test_precopy_monotone_in_memory(mem1, mem2, dirty):
    model = PreCopyModel(bandwidth_gbps=1.0)
    lo, hi = sorted((mem1, mem2))
    assert (
        model.migration_time_s(lo, dirty)
        <= model.migration_time_s(hi, dirty) + 1e-9
    )


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    t=st.floats(min_value=0.0, max_value=10 * 86_400.0),
)
def test_bursty_trace_always_in_bounds(seed, t):
    trace = BurstyTrace(seed, base=0.1, burst=0.9)
    assert 0.0 <= trace.at(t) <= 1.0


@given(
    low=st.floats(min_value=0.0, max_value=0.5),
    span=st.floats(min_value=0.0, max_value=0.5),
    t=st.floats(min_value=0.0, max_value=86_400.0),
)
def test_diurnal_trace_in_configured_band(low, span, t):
    trace = DiurnalTrace(low=low, high=low + span)
    v = trace.at(t)
    assert low - 1e-9 <= v <= low + span + 1e-9


@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=5
    ),
    levels=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=5
    ),
    t=st.floats(min_value=0.0, max_value=1e6),
)
def test_composite_trace_clamped(weights, levels, t):
    n = min(len(weights), len(levels))
    parts = [(weights[i], FlatTrace(levels[i])) for i in range(n)]
    assert 0.0 <= CompositeTrace(parts).at(t) <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=1000),
    sigma=st.floats(min_value=0.0, max_value=1.0),
    t=st.floats(min_value=0.0, max_value=86_400.0),
)
@settings(max_examples=30)
def test_noisy_trace_clamped(seed, sigma, t):
    trace = NoisyTrace(FlatTrace(0.5), seed=seed, sigma=sigma, horizon_s=86_400.0)
    assert 0.0 <= trace.at(t) <= 1.0


# ---------------------------------------------------------------------------
# Time series
# ---------------------------------------------------------------------------

@given(
    values=st.lists(
        st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=40
    ),
    gaps=st.lists(
        st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40
    ),
)
def test_timeseries_integral_matches_manual(values, gaps):
    n = min(len(values), len(gaps) + 1)
    values = values[:n]
    gaps = gaps[: n - 1]
    ts = TimeSeries("prop")
    t = 0.0
    ts.append(t, values[0])
    for v, g in zip(values[1:], gaps):
        t += g
        ts.append(t, v)
    expected = sum(v * g for v, g in zip(values[:-1], gaps))
    assert ts.integral() == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=40
    ),
    threshold=st.floats(min_value=0.0, max_value=10.0),
)
def test_timeseries_fraction_above_in_unit_interval(values, threshold):
    ts = TimeSeries("prop")
    for i, v in enumerate(values):
        ts.append(float(i), v)
    frac = ts.fraction_above(threshold)
    assert 0.0 <= frac <= 1.0


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------

vm_specs = st.lists(
    st.tuples(
        st.sampled_from([1, 2, 4, 8]),  # vcpus
        st.floats(min_value=1.0, max_value=32.0),  # mem_gb
    ),
    min_size=1,
    max_size=25,
)


@given(specs=vm_specs, target=st.floats(min_value=0.3, max_value=1.0))
@settings(max_examples=50)
def test_ffd_never_overcommits(specs, target):
    from repro.datacenter import Cluster

    env = Environment()
    cluster = Cluster.homogeneous(env, PROTOTYPE_BLADE, 6, cores=16.0, mem_gb=64.0)
    vms = [
        VM("vm-{}".format(i), vcpus=v, mem_gb=m, trace=FlatTrace(0.5))
        for i, (v, m) in enumerate(specs)
    ]
    try:
        plan = first_fit_decreasing(vms, cluster.hosts, cpu_target=target)
    except PackingError:
        return  # refusing is always allowed; overcommitting is not
    cpu_per_host, mem_per_host = {}, {}
    for vm, host in plan.items():
        cpu_per_host[host.name] = cpu_per_host.get(host.name, 0) + vm.vcpus
        mem_per_host[host.name] = mem_per_host.get(host.name, 0) + vm.mem_gb
    for name, total in cpu_per_host.items():
        assert total <= 16.0 * target + 1e-6
    for name, total in mem_per_host.items():
        assert total <= 64.0 + 1e-6
    assert len(plan) == len(vms)


# ---------------------------------------------------------------------------
# Prototype energy model
# ---------------------------------------------------------------------------

@given(
    gap=st.floats(min_value=1.0, max_value=86_400.0),
    state=st.sampled_from([PowerState.SLEEP, PowerState.HIBERNATE, PowerState.OFF]),
)
def test_energy_during_gap_at_least_transition_energy(gap, state):
    enter = PROTOTYPE_BLADE.transition(PowerState.ACTIVE, state)
    leave = PROTOTYPE_BLADE.transition(state, PowerState.ACTIVE)
    energy = energy_during_gap(PROTOTYPE_BLADE, state, gap)
    assert energy >= enter.energy_j + leave.energy_j - 1e-9


@given(gap=st.floats(min_value=1.0, max_value=86_400.0))
def test_breakeven_consistency(gap):
    # Beyond break-even, parking must beat idling; the model and the
    # closed form must agree on which side of the line we are.
    state = PowerState.SLEEP
    breakeven = PROTOTYPE_BLADE.breakeven_idle_s(state)
    idle_energy = PROTOTYPE_BLADE.idle_w * gap
    park_energy = energy_during_gap(PROTOTYPE_BLADE, state, gap)
    if gap > breakeven * 1.01:
        assert park_energy < idle_energy
    elif gap < breakeven * 0.99:
        assert park_energy > idle_energy


# ---------------------------------------------------------------------------
# Simulation kernel ordering
# ---------------------------------------------------------------------------

@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30
    )
)
def test_kernel_processes_events_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
