"""Public-API surface tests: every documented entry point imports and works."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.power",
            "repro.prototype",
            "repro.datacenter",
            "repro.workload",
            "repro.migration",
            "repro.placement",
            "repro.core",
            "repro.telemetry",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), "{}.{}".format(module, name)

    def test_readme_quickstart_snippet(self):
        # The exact flow from README.md must keep working.
        from repro import always_on, run_scenario, s3_policy

        base = run_scenario(
            always_on(), n_hosts=4, n_vms=8, horizon_s=3600, seed=1
        )
        pm = run_scenario(s3_policy(), n_hosts=4, n_vms=8, horizon_s=3600, seed=1)
        assert base.report.energy_kwh > 0
        assert pm.report.energy_kwh > 0

    def test_module_docstrings_present(self):
        for module in (
            "repro",
            "repro.sim",
            "repro.power",
            "repro.core",
            "repro.core.manager",
            "repro.prototype.calibration",
        ):
            assert importlib.import_module(module).__doc__

    def test_cli_module_entry(self):
        from repro.cli import main

        assert main(["policies"]) == 0
