"""Tests for the delta-debugging shrinker (planted oracles — no simulation)."""

import numpy as np
import pytest

from repro.fuzz.generate import generate_spec
from repro.fuzz.shrink import (
    ddmin_evaluation_bound,
    shrink_spec,
)
from repro.fuzz.spec import (
    BrownoutWindow,
    BurstWindow,
    ChurnShape,
    FaultShape,
    FuzzSpec,
    TelemetryShape,
    WorkloadShape,
)

TARGET = "planted"


def planted_oracle(predicate):
    """Wrap a boolean predicate as an outcome-id oracle."""

    def oracle(spec):
        return frozenset([TARGET]) if predicate(spec) else frozenset()

    return oracle


def fat_spec():
    """A deliberately over-specified starting point."""
    return FuzzSpec(
        seed=11,
        horizon_s=6 * 3600.0,
        policy=FuzzSpec().policy,
        workload=WorkloadShape(n_vms=20, shared_fraction=0.5, noise_sigma=0.06),
        churn=ChurnShape(rate_per_h=4.0, lifetime_s=3600.0),
        faults=FaultShape(
            wake_failure_rate=0.2,
            permanent_fraction=0.4,
            mttr_h=2.0,
            bursts=(
                BurstWindow(0.0, 900.0, 0.5),
                BurstWindow(1000.0, 1900.0, 0.6),
                BurstWindow(2000.0, 2900.0, 0.7),
                BurstWindow(3000.0, 3900.0, 0.8),
            ),
            brownouts=(
                BrownoutWindow(0.0, 600.0, 3.0),
                BrownoutWindow(700.0, 1300.0, 5.0),
            ),
            migration_failure_rate=0.3,
        ),
        telemetry=TelemetryShape(delay_s=120.0, dropout_rate=0.2),
    )


class TestConvergence:
    def test_reaches_planted_minimum_within_ddmin_bound(self):
        # Target: at least one burst window AND n_vms >= 2.  Everything
        # else is noise the shrinker must strip.
        spec = fat_spec()
        oracle = planted_oracle(
            lambda s: len(s.faults.bursts) >= 1 and s.workload.n_vms >= 2
        )
        budget = 4 * ddmin_evaluation_bound(spec)
        result = shrink_spec(spec, TARGET, oracle=oracle, max_evaluations=budget)
        assert result.converged
        assert result.evaluations <= budget
        # The planted core survives, minimized.
        assert len(result.spec.faults.bursts) == 1
        assert result.spec.workload.n_vms == 2
        # The noise is gone.
        assert result.spec.faults.brownouts == ()
        assert result.spec.churn == ChurnShape()
        assert result.spec.telemetry == TelemetryShape()
        assert result.spec.horizon_s == 1800.0

    def test_result_is_one_minimal(self):
        # Re-shrinking the result must be a no-op: no single remaining
        # move still reproduces.
        oracle = planted_oracle(
            lambda s: len(s.faults.bursts) >= 1 and s.workload.n_vms >= 2
        )
        first = shrink_spec(fat_spec(), TARGET, oracle=oracle)
        second = shrink_spec(first.spec, TARGET, oracle=oracle)
        assert second.reductions == 0
        assert second.spec == first.spec

    def test_ddmin_removes_exactly_the_planted_window(self):
        # Only the *second* burst matters; ddmin must isolate it.
        spec = fat_spec()
        needle = spec.faults.bursts[1]
        oracle = planted_oracle(lambda s: needle in s.faults.bursts)
        result = shrink_spec(spec, TARGET, oracle=oracle)
        assert result.converged
        assert result.spec.faults.bursts == (needle,)

    def test_deterministic_reduction_sequence(self):
        oracle = planted_oracle(lambda s: s.faults.wake_failure_rate > 0)
        a = shrink_spec(fat_spec(), TARGET, oracle=oracle)
        b = shrink_spec(fat_spec(), TARGET, oracle=oracle)
        assert a.steps == b.steps
        assert a.spec == b.spec
        assert a.evaluations == b.evaluations


class TestSeededMutations:
    def test_converges_from_seeded_mutants(self):
        # Fuzz the shrinker itself: mutate generated specs with a seeded
        # RNG and check every session converges within the ddmin bound
        # and preserves the planted core.
        rng = np.random.default_rng(5150)
        for trial in range(6):
            base = generate_spec(5150, trial)
            bursts = tuple(
                BurstWindow(
                    start_s=round(float(rng.uniform(0, 3000)), 1),
                    end_s=round(float(rng.uniform(3100, 7000)), 1),
                    rate=round(float(rng.uniform(0.1, 0.9)), 4),
                )
                for _ in range(int(rng.integers(1, 4)))
            )
            mutated = base.replaced(
                faults=FaultShape(
                    wake_failure_rate=round(float(rng.uniform(0.01, 0.4)), 4),
                    bursts=bursts,
                ),
                churn=ChurnShape(
                    rate_per_h=round(float(rng.uniform(0.1, 8.0)), 4),
                    lifetime_s=3600.0,
                ),
            )
            oracle = planted_oracle(
                lambda s: s.faults.wake_failure_rate > 0 and s.churn.rate_per_h > 0
            )
            budget = 4 * ddmin_evaluation_bound(mutated)
            result = shrink_spec(
                mutated, TARGET, oracle=oracle, max_evaluations=budget
            )
            assert result.converged, "trial {}".format(trial)
            assert result.spec.faults.wake_failure_rate > 0
            assert result.spec.churn.rate_per_h > 0
            assert result.spec.faults.bursts == ()


class TestGuards:
    def test_non_reproducing_spec_rejected(self):
        oracle = planted_oracle(lambda s: False)
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_spec(fat_spec(), TARGET, oracle=oracle)

    def test_budget_exhaustion_reported_not_raised(self):
        oracle = planted_oracle(lambda s: True)
        result = shrink_spec(fat_spec(), TARGET, oracle=oracle, max_evaluations=5)
        assert not result.converged
        assert result.evaluations <= 5

    def test_memoization_never_reevaluates(self):
        calls = []

        def oracle(spec):
            calls.append(spec.dumps())
            return frozenset([TARGET])

        shrink_spec(fat_spec(), TARGET, oracle=oracle, max_evaluations=10_000)
        assert len(calls) == len(set(calls))

    def test_result_serializes(self):
        oracle = planted_oracle(lambda s: s.workload.n_vms >= 2)
        result = shrink_spec(fat_spec(), TARGET, oracle=oracle)
        data = result.to_json_dict()
        assert data["target"] == TARGET
        assert data["converged"] is True
        assert FuzzSpec.from_json_dict(data["spec"]) == result.spec
