"""Crash injection: SIGKILL a checkpointing child run, resume, compare bytes.

The child process is killed with SIGKILL — no atexit, no cleanup, no
unwinding — immediately after its third checkpoint lands.  The parent
then resumes from the surviving files and must reproduce the
uninterrupted run's decision trace and metrics stream **byte for byte**.
This is the end-to-end proof that the atomic checkpoint writes, the
quiescent-point capture and the stream-offset truncation protocol
compose into actual crash safety, not just clean-shutdown safety.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.core import run_scenario
from repro.core.runner import resume_scenario
from repro.core.policies import s3_policy
from repro.telemetry.validate import validate_trace

REPO_ROOT = Path(__file__).resolve().parents[1]

KW = dict(
    n_hosts=6,
    n_vms=18,
    horizon_s=3 * 3600.0,
    seed=11,
    churn_rate_per_h=6.0,
    trace=True,
)

#: The child run: identical scenario, checkpointing + streaming enabled,
#: SIGKILLed from inside the save hook right after checkpoint #3 lands.
CHILD_SCRIPT = """
import os, signal, sys
import repro.core.runner as runner

real_save = runner.save_checkpoint
seen = {"n": 0}


def killing_save(path, state, records, meta):
    manifest = real_save(path, state, records, meta)
    seen["n"] += 1
    if seen["n"] == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return manifest


runner.save_checkpoint = killing_save

from repro.core import run_scenario
from repro.core.policies import s3_policy

run_scenario(
    s3_policy(),
    n_hosts=6, n_vms=18, horizon_s=3 * 3600.0, seed=11,
    churn_rate_per_h=6.0, trace=True,
    checkpoint_every_s=1800.0, checkpoint_dir=sys.argv[1],
    stream=sys.argv[2],
)
raise SystemExit("unreachable: the run should have been SIGKILLed")
"""


def test_sigkilled_run_resumes_byte_identical(tmp_path):
    golden_stream = tmp_path / "golden.jsonl"
    golden = run_scenario(s3_policy(), stream=golden_stream, **KW)

    ckdir = tmp_path / "ck"
    crash_stream = tmp_path / "crash.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(ckdir), str(crash_stream)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    checkpoints = sorted(ckdir.glob("ckpt-*.repro"))
    assert len(checkpoints) == 3
    # The stream's tail past the last fsynced offset is whatever the
    # kill left behind; resume must truncate and heal it.
    resumed = resume_scenario(checkpoints[-1], stream=crash_stream)

    assert resumed.trace.to_jsonl() == golden.trace.to_jsonl()
    assert resumed.trace.trace_hash() == golden.trace.trace_hash()
    assert crash_stream.read_bytes() == golden_stream.read_bytes()
    assert resumed.report.to_dict() == golden.report.to_dict()
    outcome = validate_trace(resumed.trace, report=resumed.report)
    assert outcome.ok, outcome.render_text()


def test_sigkilled_neat_run_resumes_byte_identical(tmp_path):
    config = s3_policy().with_overrides(
        plane="neat", neat_request_delay_s=30.0, neat_request_dropout=0.1
    )
    golden = run_scenario(config, **KW)

    ckdir = tmp_path / "ck"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    script = CHILD_SCRIPT.replace(
        "s3_policy(),",
        's3_policy().with_overrides(plane="neat", neat_request_delay_s=30.0,'
        " neat_request_dropout=0.1),",
        1,
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(ckdir), str(tmp_path / "s.jsonl")],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    checkpoints = sorted(ckdir.glob("ckpt-*.repro"))
    resumed = resume_scenario(checkpoints[-1])
    assert resumed.trace.trace_hash() == golden.trace.trace_hash()
    outcome = validate_trace(resumed.trace, report=resumed.report)
    assert outcome.ok, outcome.render_text()
