"""Unit tests for oracle bounds, proportionality metrics, and formatting."""

import pytest

from repro.analysis import (
    ideal_proportional_kwh,
    perfect_consolidation_kwh,
    proportionality_curve,
    proportionality_gap,
    render_series,
    render_table,
)
from repro.datacenter import Cluster, VM
from repro.prototype import PROTOTYPE_BLADE
from repro.sim import Environment
from repro.telemetry import ClusterSampler, TimeSeries
from repro.workload import FlatTrace


def constant_demand_series(demand, horizon=3600.0, step=60.0):
    ts = TimeSeries("demand_cores")
    t = 0.0
    while t <= horizon:
        ts.append(t, demand)
        t += step
    return ts


class TestIdealProportional:
    def test_linear_in_demand(self):
        a = ideal_proportional_kwh(constant_demand_series(8.0), PROTOTYPE_BLADE, 16.0)
        b = ideal_proportional_kwh(constant_demand_series(16.0), PROTOTYPE_BLADE, 16.0)
        assert b == pytest.approx(2 * a)

    def test_one_host_fully_loaded(self):
        kwh = ideal_proportional_kwh(
            constant_demand_series(16.0), PROTOTYPE_BLADE, 16.0
        )
        expected = PROTOTYPE_BLADE.peak_w * 1.0 / 1000.0  # 1 h at peak
        assert kwh == pytest.approx(expected, rel=0.01)

    def test_zero_demand_zero_energy(self):
        kwh = ideal_proportional_kwh(constant_demand_series(0.0), PROTOTYPE_BLADE, 16.0)
        assert kwh == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_proportional_kwh(constant_demand_series(1.0), PROTOTYPE_BLADE, 0.0)
        short = TimeSeries("demand_cores")
        short.append(0.0, 1.0)
        with pytest.raises(ValueError):
            ideal_proportional_kwh(short, PROTOTYPE_BLADE, 16.0)


class TestPerfectConsolidation:
    def test_exceeds_proportional_bound(self):
        demand = constant_demand_series(10.0)
        ideal = ideal_proportional_kwh(demand, PROTOTYPE_BLADE, 16.0)
        consolidated = perfect_consolidation_kwh(demand, PROTOTYPE_BLADE, 16.0)
        assert consolidated >= ideal

    def test_parked_floor_adds_energy(self):
        demand = constant_demand_series(10.0)
        without = perfect_consolidation_kwh(demand, PROTOTYPE_BLADE, 16.0)
        with_floor = perfect_consolidation_kwh(
            demand, PROTOTYPE_BLADE, 16.0, parked_power_w=11.5, n_hosts=10
        )
        assert with_floor > without

    def test_host_count_steps(self):
        low = perfect_consolidation_kwh(
            constant_demand_series(10.0), PROTOTYPE_BLADE, 16.0, cpu_target=0.85
        )
        high = perfect_consolidation_kwh(
            constant_demand_series(20.0), PROTOTYPE_BLADE, 16.0, cpu_target=0.85
        )
        assert high > low

    def test_validation(self):
        demand = constant_demand_series(10.0)
        with pytest.raises(ValueError):
            perfect_consolidation_kwh(demand, PROTOTYPE_BLADE, 16.0, cpu_target=0.0)
        with pytest.raises(ValueError):
            perfect_consolidation_kwh(
                demand, PROTOTYPE_BLADE, 16.0, parked_power_w=5.0, n_hosts=0
            )


class TestProportionalityMetrics:
    @pytest.fixture
    def sampled_cluster(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, PROTOTYPE_BLADE, 2, cores=16.0, mem_gb=64.0)
        cluster.add_vm(
            VM("vm", vcpus=16, mem_gb=16, trace=FlatTrace(0.5)), cluster.hosts[0]
        )
        sampler = ClusterSampler(env, cluster, epoch_s=60.0)
        sampler.start()
        env.run(until=3600)
        return cluster, sampler

    def test_curve_points_in_unit_square(self, sampled_cluster):
        cluster, sampler = sampled_cluster
        peak = 2 * PROTOTYPE_BLADE.peak_w
        curve = proportionality_curve(sampler, 32.0, peak)
        for load, power in curve:
            assert 0.0 <= load <= 1.0
            assert 0.0 <= power <= 1.0 + 1e-9

    def test_always_on_cluster_has_large_gap(self, sampled_cluster):
        cluster, sampler = sampled_cluster
        peak = 2 * PROTOTYPE_BLADE.peak_w
        # Load 8/32 = 0.25, power way above 0.25 of peak: big gap.
        gap = proportionality_gap(sampler, 32.0, peak)
        assert gap > 0.2

    def test_validation(self, sampled_cluster):
        _, sampler = sampled_cluster
        with pytest.raises(ValueError):
            proportionality_curve(sampler, 0.0, 100.0)
        with pytest.raises(ValueError):
            proportionality_gap(sampler, 32.0, 0.0)


class TestRenderers:
    def test_table_contains_cells(self):
        text = render_table(["name", "value"], [["row1", 1.5], ["row2", 2.5]])
        assert "row1" in text and "2.5" in text

    def test_table_title(self):
        text = render_table(["a"], [["x"]], title="T99")
        assert text.startswith("T99")

    def test_table_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_table_no_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_series_sparkline(self):
        text = render_series([(0, 1.0), (1, 5.0), (2, 3.0)], name="demo")
        assert "demo" in text
        assert "[1 .. 5]" in text

    def test_series_flat_line(self):
        text = render_series([(0, 2.0), (1, 2.0)])
        assert text  # renders without dividing by zero

    def test_series_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series([])

    def test_series_downsamples_to_width(self):
        points = [(i, float(i % 7)) for i in range(1000)]
        text = render_series(points, width=50)
        assert len(text) <= 80
